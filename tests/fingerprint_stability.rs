//! Property test: depot-interned fingerprints equal materialized-stack
//! fingerprints.
//!
//! The deploy layer's `race_fingerprint` hashes the report's materialized
//! [`Stack`]s; `race_fingerprint_interned` resolves the report's `StackId`s
//! through the run's depot instead. The two must be bit-identical — the
//! fingerprint is a stable bug identity (§3.3.1), so the interned-stack
//! refactor may not move a single bit of it. This test drives a seeded
//! random walk over (unit, seed, detector) triples through a reusable
//! [`DetectorArena`] — the exact campaign hot path — and checks every
//! report both ways while the producing run's depot is still live.

use grs::deploy::{race_fingerprint, race_fingerprint_interned};
use grs::detector::{DetectorArena, DetectorChoice};
use grs::fleet::pattern_suite;
use grs::runtime::{RunConfig, Strategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn interned_fingerprints_match_materialized_fingerprints() {
    let units = pattern_suite(true);
    let detectors = [
        DetectorChoice::FastTrack,
        DetectorChoice::Eraser,
        DetectorChoice::Hybrid,
    ];
    let mut rng = StdRng::seed_from_u64(0x5eed_f00d);
    let mut arena = DetectorArena::new();
    let (mut runs, mut reports_checked) = (0usize, 0usize);
    // ≥32 campaign-style runs (ISSUE floor); 96 keeps it cheap but broad.
    while runs < 96 {
        let unit = &units[rng.gen_range(0..units.len())];
        let detector = detectors[rng.gen_range(0..detectors.len())];
        let cfg = RunConfig {
            seed: rng.gen_range(0..1u64 << 32),
            strategy: if rng.gen_range(0..2) == 0 {
                Strategy::Random
            } else {
                Strategy::Pct { depth: 2 }
            },
            ..RunConfig::default()
        };
        let (_, reports) = arena.run(detector, &unit.program, cfg);
        // The arena's depot still holds this run's stacks: the next
        // arena.run resets it, so fingerprint now, exactly as the campaign
        // dedup stage does.
        for r in &reports {
            assert_eq!(
                race_fingerprint(r),
                race_fingerprint_interned(r, arena.depot()),
                "unit {} detector {detector}: interned fingerprint diverged",
                unit.name,
            );
        }
        reports_checked += reports.len();
        runs += 1;
    }
    assert!(runs >= 32);
    // The property must not hold vacuously — the racy half of the pattern
    // suite guarantees plenty of reports across 96 runs.
    assert!(
        reports_checked >= 16,
        "only {reports_checked} reports produced; property undertested"
    );
}
