//! Campaign-level shadow accounting on the event-dense hot-path unit.
//!
//! The flat shadow tables index by variable id, so an implementation bug
//! could silently pay O(id-space) or O(events) memory while still
//! producing correct reports. This pins the dense FastTrack campaign —
//! thousands of access events per run — to an O(vars + readers) peak,
//! identical between the live path and the batched replay path.

use grs::dense_unit;
use grs::detector::DetectorChoice;
use grs::fleet::{Campaign, CampaignConfig};
use grs::runtime::Strategy;

fn config() -> CampaignConfig {
    CampaignConfig::smoke()
        .seeds_per_unit(8)
        .workers(1)
        .detectors(vec![DetectorChoice::FastTrack])
        .strategies(vec![Strategy::Random])
}

/// The dense unit touches 9 cells (8 compute cells + the barrier cell)
/// and 2 reader goroutines: peak shadow is bounded by ~3 words per cell
/// plus the shared-read history — tens of words against thousands of
/// events. A flat table that counted index holes, forgot the write-prune,
/// or kept per-event state would blow through this bound immediately.
const BOUND: usize = 64;

#[test]
fn dense_campaign_peak_shadow_is_o_vars_not_o_events() {
    let live = Campaign::over_units(config(), vec![dense_unit()]).run();
    assert_eq!(live.racy_runs(), 0, "the dense unit is race-free");
    let events_per_run = live.total_events() as usize / live.total_runs();
    assert!(
        events_per_run > 50 * BOUND,
        "unit must be event-dense for the bound to mean anything ({events_per_run} events/run)"
    );
    assert!(
        live.peak_shadow_words() <= BOUND,
        "live campaign peak {} exceeds the O(vars) bound {BOUND}",
        live.peak_shadow_words()
    );

    let replay = Campaign::over_units(config(), vec![dense_unit()]).run_replay();
    assert_eq!(
        live.peak_shadow_words(),
        replay.peak_shadow_words(),
        "batched replay must reproduce the live campaign's peak exactly"
    );
    for (l, r) in live.records.iter().zip(replay.records.iter()) {
        assert_eq!(
            l.peak_shadow_words, r.peak_shadow_words,
            "seed {}: per-run peak shadow words",
            l.spec.seed
        );
    }
}
