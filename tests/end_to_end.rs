//! End-to-end integration: detector output flows through the deployment
//! intake service exactly as in the paper's Figure 2 architecture —
//! detect, deduplicate, assign, file, fix, re-detect.

use grs::deploy::{FileOutcome, IntakeService, OwnerDb};
use grs::detector::{ExploreConfig, Explorer};
use grs::patterns::{self, registry};

#[test]
fn daily_run_files_unique_tasks_for_the_whole_corpus() {
    // "Day 1": run the whole simulated test suite (every racy pattern),
    // submit all detected races.
    let explorer = Explorer::new(ExploreConfig::quick().runs(50));
    let mut owners = OwnerDb::new();
    owners.add_author("ProcessJobs", "alice", 20, true);
    owners.add_author("processOrders", "bob", 15, true);
    let service = IntakeService::builder().owners(owners).workers(1).start().unwrap();

    let mut all_races = Vec::new();
    for pattern in registry() {
        let result = explorer.explore(&pattern.racy_program());
        all_races.extend(result.unique_races);
    }
    assert!(all_races.len() >= 20, "corpus produces many races");

    let outcomes = service.submit_batch(&all_races, 0).unwrap();
    let filed_day1 = outcomes
        .iter()
        .filter(|o| matches!(o, FileOutcome::Filed { .. }))
        .count();
    assert!(filed_day1 >= 20);

    // "Day 2": the same races detected again (the daily rerun) must all be
    // suppressed as duplicates while their tasks are open.
    let outcomes2 = service.submit_batch(&all_races, 1).unwrap();
    assert!(
        outcomes2.iter().all(|o| *o == FileOutcome::Duplicate),
        "open tasks must suppress re-detections"
    );
    assert_eq!(service.with_tracker(|t| t.total_filed()), filed_day1);

    // Fix one task; day 3's rerun re-files exactly that race.
    let first_task = service.with_tracker(|t| t.tasks()[0].id);
    service.fix(first_task, 2, "alice", 1).unwrap();
    let outcomes3 = service.submit_batch(&all_races, 3).unwrap();
    let refiled = outcomes3
        .iter()
        .filter(|o| matches!(o, FileOutcome::Filed { .. }))
        .count();
    assert_eq!(refiled, 1, "only the fixed race re-files");
}

#[test]
fn fixed_corpus_files_nothing() {
    let explorer = Explorer::new(ExploreConfig::quick().runs(30));
    let service = IntakeService::builder().workers(1).start().unwrap();
    for pattern in registry() {
        let result = explorer.explore(&pattern.fixed_program());
        service.submit_batch(&result.unique_races, 0).unwrap();
    }
    assert_eq!(service.with_tracker(|t| t.total_filed()), 0);
}

#[test]
fn report_orientation_does_not_duplicate_tasks() {
    // Run the same pattern under many different seeds; different schedules
    // observe the two accesses in different orders and at different line
    // numbers of the harness, but §3.3.1's fingerprint collapses them.
    let pattern = patterns::find("missing_lock").expect("in corpus");
    let service = IntakeService::builder().workers(1).start().unwrap();
    let mut filed = 0;
    for base in [1_u64, 1000, 2000, 3000] {
        let explorer = Explorer::new(ExploreConfig::quick().runs(40).base_seed(base));
        let result = explorer.explore(&pattern.racy_program());
        for o in service.submit_batch(&result.unique_races, 0).unwrap() {
            if matches!(o, FileOutcome::Filed { .. }) {
                filed += 1;
            }
        }
    }
    assert_eq!(
        filed, 1,
        "one logical race across all seeds must file exactly one task"
    );
}

#[test]
fn assignee_rationale_reaches_the_task() {
    let pattern = patterns::find("loop_index_capture").expect("in corpus");
    let result = Explorer::new(ExploreConfig::quick().runs(60)).explore(&pattern.racy_program());
    let race = result.unique_races.first().expect("detected");

    let mut owners = OwnerDb::new();
    // The racy accesses' stacks are rooted at the main goroutine and the
    // spawned worker; credit an author on the main root.
    owners.add_author("main", "carol", 9, true);
    let decision = grs::deploy::determine_assignee(race, &owners);
    assert_eq!(decision.assignee.as_deref(), Some("carol"));
    assert!(decision
        .rationale
        .iter()
        .any(|r| r.contains("root function")));
}

#[test]
fn filed_tasks_carry_working_repro_instructions() {
    // §3.4: the filed task contains "the necessary instructions to help the
    // developer reproduce the underlying race". Our analog is the scheduler
    // seed — and it must actually work: rerunning under the recorded seed
    // must deterministically re-expose the race.
    use grs::detector::Tsan;
    use grs::runtime::{RunConfig, Runtime};

    let pattern = patterns::find("waitgroup_add_inside").expect("in corpus");
    let program = pattern.racy_program();
    let result = Explorer::new(ExploreConfig::quick().runs(120)).explore(&program);
    let race = result.unique_races.first().expect("detected");
    let seed = race.repro_seed.expect("explorer records the seed");

    // File it; the task records the repro instructions.
    let service = IntakeService::builder().workers(1).start().unwrap();
    let FileOutcome::Filed { task, .. } = service.submit(race, 0).unwrap() else {
        panic!("must file");
    };
    let recorded = service
        .with_tracker(|t| t.task(task).expect("filed").repro_seed)
        .expect("on task");
    assert_eq!(recorded, seed);

    // And the instructions WORK: the recorded seed replays the race.
    let (_, tsan) = Runtime::new(RunConfig::with_seed(recorded)).run(&program, Tsan::new());
    assert!(
        !tsan.reports().is_empty(),
        "repro seed {recorded} failed to replay the race"
    );
}
