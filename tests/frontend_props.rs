//! Seeded property tests for the Go-lite static-analysis frontend.
//!
//! The generator in `grs::corpus::gogen` emits arbitrary-but-valid Go-lite
//! monorepos; every stage of the frontend pipeline — parse, resolve, CFG
//! construction, call-graph + SCCs, interprocedural lint — must accept that
//! output without panicking, and the corpus-level lint report must be
//! byte-deterministic so the CI benchmark artifact is stable.
//!
//! These use the vendored `rand` stub (`crates/randlite`), so they run in
//! tier-1 without registry access — unlike the `props`-gated proptest
//! suites.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grs::corpus::{lint_corpus, GoCorpus, GoCorpusSpec};
use grs::golite::callgraph::CallGraph;
use grs::golite::{cfg, lint_file, mhp::Mhp, parse_file, resolve_file, summary::Summaries};

/// Draws a handful of (spec, seed) corpus configurations from a meta-seed.
fn drawn_corpora(meta_seed: u64, n: usize) -> Vec<(GoCorpusSpec, u64)> {
    let mut rng = StdRng::seed_from_u64(meta_seed);
    (0..n)
        .map(|_| {
            // Small scales keep each case to a few files; the point is
            // structural variety, not volume.
            let scale = rng.gen_range(1..9) as f64 * 0.00005;
            let seed = rng.gen_range(0..u64::MAX / 2);
            (GoCorpusSpec::paper_scaled(scale), seed)
        })
        .collect()
}

/// Every frontend stage accepts every generated file without panicking:
/// parse → resolve → CFG → call graph (+ SCCs, summaries, MHP) → lint.
#[test]
fn frontend_pipeline_never_panics_on_generated_sources() {
    for (spec, seed) in drawn_corpora(0xC0FFEE, 6) {
        let corpus = GoCorpus::generate(&spec, seed);
        assert!(!corpus.files.is_empty(), "seed {seed}: empty corpus");
        for (path, src) in &corpus.files {
            let file = parse_file(src)
                .unwrap_or_else(|e| panic!("seed {seed} {path}: parse error {e}"));
            let res = resolve_file(&file);
            let cfgs = cfg::build_file(&file, &res);
            let cg = CallGraph::build(&cfgs);
            let sccs = cg.sccs();
            let reachable: usize = sccs.iter().map(Vec::len).sum();
            assert_eq!(
                reachable,
                cfgs.len(),
                "seed {seed} {path}: SCCs must partition the functions"
            );
            let _sums = Summaries::compute(&file, &res, &cfgs, &cg);
            let _mhp = Mhp::build(&file);
            let _findings = lint_file(&file);
        }
    }
}

/// Lint findings are a pure function of the source: linting the same
/// generated corpus twice — from two independent generation runs — yields
/// byte-identical JSON reports.
#[test]
fn lint_corpus_report_is_byte_deterministic() {
    for (spec, seed) in drawn_corpora(0xDECAF, 3) {
        let first = lint_corpus(&GoCorpus::generate(&spec, seed)).to_json();
        let second = lint_corpus(&GoCorpus::generate(&spec, seed)).to_json();
        assert_eq!(
            first, second,
            "seed {seed}: lint report differs across identical generations"
        );
        assert!(first.ends_with('\n') || !first.is_empty());
    }
}

/// Distinct seeds genuinely vary the corpus (the generator is not
/// degenerate), while each individual seed stays reproducible.
#[test]
fn generation_is_seed_sensitive_and_reproducible() {
    let spec = GoCorpusSpec::paper_scaled(0.0001);
    let a1 = GoCorpus::generate(&spec, 7);
    let a2 = GoCorpus::generate(&spec, 7);
    let b = GoCorpus::generate(&spec, 8);
    assert_eq!(a1.files, a2.files, "same seed must reproduce byte-for-byte");
    assert_ne!(a1.files, b.files, "different seeds should differ");
}
