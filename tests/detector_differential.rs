//! The differential detector harness.
//!
//! Three algorithms watch the same executions: FastTrack (happens-before),
//! Eraser (locksets), and the TSan-style hybrid. Their theoretical
//! relationship is checkable on every pattern of the corpus:
//!
//! * the **hybrid's verdict is FastTrack's verdict** on every single run —
//!   it adds lockset context to reports, never changes raciness;
//! * **Eraser over-approximates FastTrack**: a FastTrack race means the two
//!   accesses were unordered, so no common lock can have protected both —
//!   Eraser must also consider the variable unprotected (checked as an
//!   aggregate over the seed budget, since Eraser's state machine defers
//!   reporting until sharing is observed);
//! * on **racy patterns** all three agree: racy, within the seed budget;
//! * on **fixed patterns** the happens-before detectors never report
//!   (no-false-positive guarantee; Eraser is exempt — flagging
//!   channel-synchronized fixes is its documented imprecision).
//!
//! The harness also proves the parallel explorer is a pure optimization:
//! serial and parallel exploration produce identical deduped fingerprint
//! sets, with identical per-seed repro attribution.

use grs::deploy::race_fingerprint;
use grs::detector::{DetectorChoice, ExploreConfig, Explorer};
use grs::patterns;
use grs::runtime::RunConfig;

const SEEDS: u64 = 32;

/// Per-seed verdicts of one detector over one program.
fn verdicts(program: &grs::runtime::Program, detector: DetectorChoice) -> Vec<bool> {
    (0..SEEDS)
        .map(|seed| {
            let (_, reports) = detector.run(program, RunConfig::with_seed(seed));
            !reports.is_empty()
        })
        .collect()
}

#[test]
fn hybrid_equals_fasttrack_on_every_run_of_every_pattern() {
    for p in patterns::registry() {
        for program in [p.racy_program(), p.fixed_program()] {
            let ft = verdicts(&program, DetectorChoice::FastTrack);
            let hy = verdicts(&program, DetectorChoice::Hybrid);
            assert_eq!(
                ft, hy,
                "{}/{}: hybrid must carry FastTrack's verdict per seed",
                p.id,
                program.name()
            );
        }
    }
}

#[test]
fn all_three_detectors_agree_racy_patterns_are_racy() {
    for p in patterns::registry() {
        let program = p.racy_program();
        for detector in DetectorChoice::all() {
            let caught = verdicts(&program, detector).iter().any(|&r| r);
            assert!(
                caught,
                "{}: {detector} missed the race in {SEEDS} seeds",
                p.id
            );
        }
    }
}

#[test]
fn epoch_fast_path_equals_pure_vector_clocks_report_for_report() {
    // FastTrack's epoch representation is an *optimization* of full vector
    // clocks (Flanagan & Freund's central claim): on every run of every
    // pattern — racy and fixed — the epoch fast path must produce the same
    // reports, verbatim, as the pure-vector-clock ablation. The ablation
    // variant is excluded from `DetectorChoice::all()` (it exists for
    // benchmarking), so this differential is its correctness anchor.
    for p in patterns::registry() {
        for program in [p.racy_program(), p.fixed_program()] {
            for seed in 0..SEEDS {
                let cfg = RunConfig::with_seed(seed);
                let (o_ft, r_ft) = DetectorChoice::FastTrack.run(&program, cfg.clone());
                let (o_vc, r_vc) = DetectorChoice::PureVectorClock.run(&program, cfg);
                assert_eq!(
                    o_ft.steps,
                    o_vc.steps,
                    "{}/{} seed {seed}: detectors must not perturb the schedule",
                    p.id,
                    program.name()
                );
                // The two variants tag reports with their own kind; modulo
                // that label, the reports must be verbatim-identical —
                // same accesses, stacks, locations, and fingerprints.
                let strip = |s: String, kind: &str| s.replace(kind, "<hb>");
                let ft_text: Vec<String> = r_ft
                    .iter()
                    .map(|r| strip(format!("{r}"), "fasttrack"))
                    .collect();
                let vc_text: Vec<String> = r_vc
                    .iter()
                    .map(|r| strip(format!("{r}"), "pure-vc"))
                    .collect();
                assert_eq!(
                    ft_text,
                    vc_text,
                    "{}/{} seed {seed}: epoch fast path diverged from pure vector clocks",
                    p.id,
                    program.name()
                );
                for (a, b) in r_ft.iter().zip(r_vc.iter()) {
                    assert_eq!(
                        race_fingerprint(a),
                        race_fingerprint(b),
                        "{}/{} seed {seed}: fingerprints must agree across variants",
                        p.id,
                        program.name()
                    );
                }
            }
        }
    }
}

#[test]
fn happens_before_detectors_never_flag_fixed_patterns() {
    for p in patterns::registry() {
        let program = p.fixed_program();
        for detector in [DetectorChoice::FastTrack, DetectorChoice::Hybrid] {
            assert!(
                !verdicts(&program, detector).iter().any(|&r| r),
                "{}: {detector} false positive on the fixed variant",
                p.id
            );
        }
    }
}

#[test]
fn eraser_over_approximates_fasttrack() {
    // Aggregate direction: wherever FastTrack finds a race within the seed
    // budget, Eraser must too — the unordered accesses cannot have shared a
    // lock, so the lockset refinement must have emptied.
    for p in patterns::registry() {
        for program in [p.racy_program(), p.fixed_program()] {
            let ft_any = verdicts(&program, DetectorChoice::FastTrack)
                .iter()
                .any(|&r| r);
            let er_any = verdicts(&program, DetectorChoice::Eraser)
                .iter()
                .any(|&r| r);
            if ft_any {
                assert!(
                    er_any,
                    "{}/{}: FastTrack raced but Eraser stayed silent",
                    p.id,
                    program.name()
                );
            }
        }
    }
}

#[test]
fn serial_and_parallel_exploration_have_identical_fingerprints() {
    // The acceptance check: per-seed deduped fingerprint sets from
    // `explore_parallel` are byte-identical to the serial path, for every
    // executable pattern and both worker counts we can exercise.
    for p in patterns::registry() {
        let program = p.racy_program();
        let cfg = ExploreConfig::quick().runs(SEEDS as usize).base_seed(0);
        let serial = Explorer::new(cfg.clone()).explore(&program);
        let serial_fps: Vec<_> = serial
            .unique_races
            .iter()
            .map(|r| (race_fingerprint(r), r.repro_seed))
            .collect();
        for workers in [2, 4, 8] {
            let par = Explorer::new(cfg.clone().workers(workers)).explore_parallel(&program);
            let par_fps: Vec<_> = par
                .unique_races
                .iter()
                .map(|r| (race_fingerprint(r), r.repro_seed))
                .collect();
            assert_eq!(
                par_fps, serial_fps,
                "{}: {workers}-worker exploration diverged from serial",
                p.id
            );
            assert_eq!(par.racy_runs, serial.racy_runs, "{}", p.id);
            assert_eq!(par.deadlock_runs, serial.deadlock_runs, "{}", p.id);
            assert_eq!(par.error_runs, serial.error_runs, "{}", p.id);
        }
    }
}

#[test]
fn campaign_differential_serial_vs_parallel() {
    use grs::fleet::{Campaign, CampaignConfig};
    // A cross-detector campaign over a slice of the corpus: the parallel
    // engine's deterministic output (records + deduped batch) must equal
    // the serial engine's, per seed, per strategy, per detector.
    let units: Vec<_> = grs::fleet::pattern_suite(true)
        .into_iter()
        .take(8)
        .collect();
    let config = CampaignConfig::smoke()
        .seeds_per_unit(4)
        .detectors(vec![DetectorChoice::FastTrack, DetectorChoice::Hybrid])
        .shards(4);
    let campaign = Campaign::over_units(config.clone(), units.clone());
    let serial = campaign.run_serial();
    for workers in [2, 4] {
        let par = Campaign::over_units(config.clone().workers(workers), units.clone()).run();
        assert_eq!(
            par.deterministic_digest(),
            serial.deterministic_digest(),
            "{workers}-worker campaign diverged"
        );
        assert_eq!(par.batch.fingerprints(), serial.batch.fingerprints());
    }
}
