//! Observability determinism: the exported `BENCH_obs.json` is a campaign
//! *measurement*, so it must not perturb — or be perturbed by — how the
//! campaign executes. These tests pin the contract from three directions:
//!
//! * the stable metrics section and its digest are byte-identical across
//!   worker counts {1, 4, 8} (placement-dependent counters are segregated
//!   into the volatile `timing` section);
//! * the timeline section is byte-identical between live execution and the
//!   execute-once replay engine on the same matrix;
//! * the schema carries its version field and a non-empty timeline, which
//!   is what CI greps for in the uploaded artifact.

use grs::prelude::*;
use grs::runtime::Strategy;

fn units() -> Vec<CampaignUnit> {
    pattern_suite(true)
        .into_iter()
        .filter(|u| {
            u.name.starts_with("loop_index_capture") || u.name.starts_with("missing_lock")
        })
        .collect()
}

fn config() -> CampaignConfig {
    CampaignConfig::new()
        .seeds_per_unit(3)
        .shards(4)
        .detectors(DetectorChoice::all().to_vec())
        .strategies(vec![Strategy::Random, Strategy::Pct { depth: 2 }])
        .timeline_days(10)
}

#[test]
fn obs_export_is_identical_across_worker_counts() {
    let baseline = Campaign::over_units(config().workers(1), units()).run();
    for workers in [4, 8] {
        let par = Campaign::over_units(config().workers(workers), units()).run();
        assert_eq!(
            par.obs.timeline_json(),
            baseline.obs.timeline_json(),
            "timeline section diverged at {workers} workers"
        );
        assert_eq!(
            par.obs.metrics_json(),
            baseline.obs.metrics_json(),
            "stable metrics diverged at {workers} workers"
        );
        assert_eq!(
            par.obs.deterministic_digest(),
            baseline.obs.deterministic_digest(),
            "obs digest diverged at {workers} workers"
        );
    }
}

#[test]
fn obs_timeline_is_identical_live_vs_replay() {
    let campaign = Campaign::over_units(config().workers(2), units());
    let live = campaign.run();
    let replayed = campaign.run_replay();
    assert_eq!(
        replayed.obs.timeline_json(),
        live.obs.timeline_json(),
        "timeline must not depend on execute-per-detector vs execute-once"
    );
    // The stable *campaign* counters agree too: replay fidelity makes the
    // offline analyses report the same events/runs/reports sums.
    for name in [
        "campaign.runs",
        "campaign.racy_runs",
        "campaign.reports",
        "runtime.events",
        "detector.runs",
    ] {
        assert_eq!(
            replayed.obs.snapshot.counter(name),
            live.obs.snapshot.counter(name),
            "stable counter {name} diverged between live and replay"
        );
    }
}

#[test]
fn obs_json_schema_has_version_and_nonempty_timeline() {
    let result = Campaign::over_units(config().workers(2), units()).run();
    let json = result.obs.to_json();
    assert!(
        json.starts_with(&format!("{{\"schema_version\":{}", grs::obs::SCHEMA_VERSION)),
        "schema_version must lead the document: {}",
        &json[..80.min(json.len())]
    );
    assert_eq!(result.obs.timeline.days.len(), 10, "one row per virtual day");
    assert!(result.obs.timeline.observations > 0, "racy patterns must observe races");
    assert!(result.obs.timeline.total_filed > 0);

    // Placement-dependent counters live in timing, not in the digest-bearing
    // metrics section.
    let metrics = result.obs.metrics_json();
    assert!(!metrics.contains("sched.steals"));
    assert!(!metrics.contains("sched.home_pops"));
    let timing = result.obs.timing_json();
    assert!(timing.contains("sched.home_pops") || timing.contains("sched.steals"));

    // The per-run wall-clock histogram is populated but also segregated.
    assert!(timing.contains("campaign.run_wall"));
    assert!(!metrics.contains("campaign.run_wall"));
}
