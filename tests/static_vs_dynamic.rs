//! Cross-validation of the two analysis routes the project provides: the
//! *static* Go-lite lints (Remark on future static race detection, §5) and
//! the *dynamic* detector over the runtime model. For each pattern that has
//! both a Go-source rendition and an executable `grs` rendition, the two
//! must agree: lint fires ⟺ dynamic race detected.

use grs::detector::{ExploreConfig, Explorer};
use grs::golite::{lint_file, parse_file, Rule};
use grs::patterns;

struct Case {
    pattern_id: &'static str,
    rule: Rule,
    go_racy: &'static str,
    go_fixed: &'static str,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            pattern_id: "loop_index_capture",
            rule: Rule::LoopVarCapture,
            go_racy: r#"
package p
func ProcessJobs(jobs []int) {
    for _, job := range jobs {
        go func() { process(job) }()
    }
}
"#,
            go_fixed: r#"
package p
func ProcessJobs(jobs []int) {
    for _, job := range jobs {
        go func(job int) { process(job) }(job)
    }
}
"#,
        },
        Case {
            pattern_id: "err_capture",
            rule: Rule::ErrCapture,
            go_racy: r#"
package p
func Handle() {
    x, err := Foo()
    go func() {
        _, err = Bar(x)
        use(err)
    }()
    y, err := Baz()
    use2(y, err)
}
"#,
            go_fixed: r#"
package p
func Handle() {
    x, err := Foo()
    go func() {
        _, err2 := Bar(x)
        use(err2)
    }()
    y, err := Baz()
    use2(y, err)
}
"#,
        },
        Case {
            pattern_id: "waitgroup_add_inside",
            rule: Rule::WaitGroupAddInGoroutine,
            go_racy: r#"
package p
func Run(items []int) {
    var wg sync.WaitGroup
    for _, it := range items {
        go func(it int) {
            wg.Add(1)
            defer wg.Done()
            process(it)
        }(it)
    }
    wg.Wait()
}
"#,
            go_fixed: r#"
package p
func Run(items []int) {
    var wg sync.WaitGroup
    for _, it := range items {
        wg.Add(1)
        go func(it int) {
            defer wg.Done()
            process(it)
        }(it)
    }
    wg.Wait()
}
"#,
        },
        Case {
            pattern_id: "mutex_by_value",
            rule: Rule::MutexByValue,
            go_racy: r#"
package p
func CriticalSection(m sync.Mutex) {
    m.Lock()
    a = a + 1
    m.Unlock()
}
"#,
            go_fixed: r#"
package p
func CriticalSection(m *sync.Mutex) {
    m.Lock()
    a = a + 1
    m.Unlock()
}
"#,
        },
        Case {
            pattern_id: "map_concurrent_write",
            rule: Rule::MapWriteInGoroutine,
            go_racy: r#"
package p
func processOrders(uuids []string) {
    errMap := make(map[string]error)
    for _, id := range uuids {
        go func(id string) {
            errMap[id] = GetOrder(id)
        }(id)
    }
}
"#,
            go_fixed: r#"
package p
func processOrders(uuids []string) {
    for _, id := range uuids {
        go func(id string) {
            local := make(map[string]error)
            local[id] = GetOrder(id)
        }(id)
    }
}
"#,
        },
        Case {
            pattern_id: "rlock_write",
            rule: Rule::WriteUnderRLock,
            go_racy: r#"
package p
func (g *Gate) update() {
    g.mu.RLock()
    defer g.mu.RUnlock()
    if ok() {
        g.ready = true
    }
}
"#,
            go_fixed: r#"
package p
func (g *Gate) update() {
    g.mu.Lock()
    defer g.mu.Unlock()
    if ok() {
        g.ready = true
    }
}
"#,
        },
    ]
}

#[test]
fn lints_and_dynamic_detection_agree() {
    let explorer = Explorer::new(ExploreConfig::quick().runs(60));
    for case in cases() {
        // Static: lint fires on the Go source.
        let racy_file = parse_file(case.go_racy)
            .unwrap_or_else(|e| panic!("{}: parse error {e}", case.pattern_id));
        let racy_rules: Vec<Rule> = lint_file(&racy_file).into_iter().map(|f| f.rule).collect();
        assert!(
            racy_rules.contains(&case.rule),
            "{}: lint {:?} missing on the racy Go source (got {racy_rules:?})",
            case.pattern_id,
            case.rule
        );
        let fixed_file = parse_file(case.go_fixed)
            .unwrap_or_else(|e| panic!("{}: parse error {e}", case.pattern_id));
        let fixed_rules: Vec<Rule> =
            lint_file(&fixed_file).into_iter().map(|f| f.rule).collect();
        assert!(
            !fixed_rules.contains(&case.rule),
            "{}: lint {:?} fired on the FIXED Go source",
            case.pattern_id,
            case.rule
        );

        // Dynamic: the corresponding executable pattern races / is clean.
        let pattern = patterns::find(case.pattern_id)
            .unwrap_or_else(|| panic!("pattern {} missing", case.pattern_id));
        assert!(
            explorer.explore(&pattern.racy_program()).found_race(),
            "{}: dynamic detection missed the racy program",
            case.pattern_id
        );
        assert!(
            !explorer.explore(&pattern.fixed_program()).found_race(),
            "{}: dynamic detector flagged the fixed program",
            case.pattern_id
        );
    }
}
