//! Cross-validation of the two analysis routes the project provides: the
//! *static* Go-lite lints (the paper's §5 remark on future static race
//! detection) and the *dynamic* detector over the runtime model. Every
//! lint rule has a Go-source rendition paired with an executable `grs`
//! pattern (`grs::patterns::gosrc`), and the two must agree on each:
//! lint fires ⟺ dynamic race detected.

use std::collections::BTreeSet;

use grs::detector::{ExploreConfig, Explorer};
use grs::golite::{lint_file, parse_file, Rule};
use grs::patterns::{self, gosrc};

fn rules_of(src: &str, id: &str) -> Vec<Rule> {
    let file = parse_file(src).unwrap_or_else(|e| panic!("{id}: parse error {e}"));
    lint_file(&file).into_iter().map(|f| f.rule).collect()
}

/// The rendition corpus covers every lint rule exactly once.
#[test]
fn renditions_cover_every_rule() {
    let covered: BTreeSet<&str> = gosrc::renditions().iter().map(|r| r.rule).collect();
    let all: BTreeSet<&str> = Rule::ALL.iter().map(|r| r.id()).collect();
    assert_eq!(covered, all);
    for r in gosrc::renditions() {
        assert!(
            Rule::from_id(r.rule).is_some(),
            "{}: unknown rule id {}",
            r.pattern_id,
            r.rule
        );
    }
}

/// For all 18 rules: the lint fires on the racy Go source and stays silent
/// on the fixed one, and the dynamic explorer detects a race in the
/// executable racy twin and none in the fixed twin.
#[test]
fn lints_and_dynamic_detection_agree_on_all_rules() {
    let explorer = Explorer::new(ExploreConfig::quick().runs(60));
    for case in gosrc::renditions() {
        let rule = Rule::from_id(case.rule).expect("known rule");

        // Static route.
        let racy_rules = rules_of(case.racy, case.pattern_id);
        assert!(
            racy_rules.contains(&rule),
            "{}: lint {rule:?} missing on the racy Go source (got {racy_rules:?})",
            case.pattern_id,
        );
        let fixed_rules = rules_of(case.fixed, case.pattern_id);
        assert!(
            !fixed_rules.contains(&rule),
            "{}: lint {rule:?} fired on the FIXED Go source",
            case.pattern_id,
        );

        // Dynamic route.
        let pattern = patterns::find(case.pattern_id)
            .unwrap_or_else(|| panic!("pattern {} missing", case.pattern_id));
        assert!(
            explorer.explore(&pattern.racy_program()).found_race(),
            "{}: dynamic detection missed the racy program",
            case.pattern_id
        );
        assert!(
            !explorer.explore(&pattern.fixed_program()).found_race(),
            "{}: dynamic detector flagged the fixed program",
            case.pattern_id
        );
    }
}

/// The canonical renditions use one fix per bug; real developers applied
/// others. Each alternate idiom below must also satisfy the lint: the racy
/// shape still fires, the differently-fixed shape stays silent.
struct AltCase {
    name: &'static str,
    rule: Rule,
    racy: &'static str,
    fixed: &'static str,
}

fn alternate_fixes() -> Vec<AltCase> {
    vec![
        // Fix by privatizing through a closure parameter, not `job := job`.
        AltCase {
            name: "loop_capture_param_fix",
            rule: Rule::LoopVarCapture,
            racy: r#"
package p
func ProcessJobs(jobs []int) {
    for _, job := range jobs {
        go func() { process(job) }()
    }
}
"#,
            fixed: r#"
package p
func ProcessJobs(jobs []int) {
    for _, job := range jobs {
        go func(job int) { process(job) }(job)
    }
}
"#,
        },
        // Fix by renaming, not by shadowing with `:=`.
        AltCase {
            name: "err_capture_rename_fix",
            rule: Rule::ErrCapture,
            racy: r#"
package p
func Handle() {
    x, err := Foo()
    go func() {
        _, err = Bar(x)
        use(err)
    }()
    y, err := Baz()
    use2(y, err)
}
"#,
            fixed: r#"
package p
func Handle() {
    x, err := Foo()
    go func() {
        _, err2 := Bar(x)
        use(err2)
    }()
    y, err := Baz()
    use2(y, err)
}
"#,
        },
        // `defer wg.Done()` form of the WaitGroup bug.
        AltCase {
            name: "waitgroup_defer_done",
            rule: Rule::WaitGroupAddInGoroutine,
            racy: r#"
package p
func Run(items []int) {
    var wg sync.WaitGroup
    for _, it := range items {
        go func(it int) {
            wg.Add(1)
            defer wg.Done()
            process(it)
        }(it)
    }
    wg.Wait()
}
"#,
            fixed: r#"
package p
func Run(items []int) {
    var wg sync.WaitGroup
    for _, it := range items {
        wg.Add(1)
        go func(it int) {
            defer wg.Done()
            process(it)
        }(it)
    }
    wg.Wait()
}
"#,
        },
        // Fix by keeping the map goroutine-local rather than serializing.
        AltCase {
            name: "map_local_fix",
            rule: Rule::MapWriteInGoroutine,
            racy: r#"
package p
func processOrders(uuids []string) {
    errMap := make(map[string]error)
    for _, id := range uuids {
        go func(id string) {
            errMap[id] = GetOrder(id)
        }(id)
    }
}
"#,
            fixed: r#"
package p
func processOrders(uuids []string) {
    for _, id := range uuids {
        go func(id string) {
            local := make(map[string]error)
            local[id] = GetOrder(id)
        }(id)
    }
}
"#,
        },
        // GR013 fixed by moving the lock INTO the helper instead of
        // teaching the reader about it.
        AltCase {
            name: "helper_lock_moved_inside",
            rule: Rule::InterprocMissingLock,
            racy: r#"
package p
var mu sync.Mutex
var count int
func Incr() {
    mu.Lock()
    bump()
    mu.Unlock()
}
func bump() {
    count = count + 1
}
func Read() int {
    return count
}
"#,
            fixed: r#"
package p
var mu sync.Mutex
var count int
func Incr() {
    bump()
}
func bump() {
    mu.Lock()
    count = count + 1
    mu.Unlock()
}
func Read() int {
    mu.Lock()
    v := count
    mu.Unlock()
    return v
}
"#,
        },
        // GR015 fixed by passing the loop variable by value to the
        // closure, not by a per-iteration copy.
        AltCase {
            name: "escaping_capture_value_param",
            rule: Rule::EscapingCaptureToSpawner,
            racy: r#"
package p
func spawnWorker(fn func()) {
    go fn()
}
func ProcessAll(jobs []int) {
    for _, job := range jobs {
        spawnWorker(func() {
            process(job)
        })
    }
}
"#,
            fixed: r#"
package p
func spawnWorker(fn func()) {
    go fn()
}
func ProcessAll(jobs []int) {
    for _, job := range jobs {
        spawnWorker(newTask(job))
    }
}
func newTask(job int) func() {
    return func() {
        process(job)
    }
}
"#,
        },
        // GR018 fixed with a channel join instead of a WaitGroup.
        AltCase {
            name: "spawned_chain_channel_join",
            rule: Rule::UnsyncedSpawnedCall,
            racy: r#"
package p
var total int
func sum(n int) {
    if n > 0 {
        total = total + n
        sum(n - 1)
    }
}
func Run() {
    go sum(8)
    report(total)
}
"#,
            fixed: r#"
package p
var total int
func sum(n int) {
    if n > 0 {
        total = total + n
        sum(n - 1)
    }
}
func Run() {
    done := make(chan int)
    go func() {
        sum(8)
        done <- 1
    }()
    <-done
    report(total)
}
"#,
        },
        // Listing 11 with `defer`red unlocks (held to function exit).
        AltCase {
            name: "rlock_write_defer",
            rule: Rule::WriteUnderRLock,
            racy: r#"
package p
func (g *Gate) update() {
    g.mu.RLock()
    defer g.mu.RUnlock()
    if ok() {
        g.ready = true
    }
}
"#,
            fixed: r#"
package p
func (g *Gate) update() {
    g.mu.Lock()
    defer g.mu.Unlock()
    if ok() {
        g.ready = true
    }
}
"#,
        },
    ]
}

#[test]
fn alternate_fix_idioms_satisfy_the_lints() {
    for case in alternate_fixes() {
        let racy_rules = rules_of(case.racy, case.name);
        assert!(
            racy_rules.contains(&case.rule),
            "{}: lint {:?} missing on racy source (got {racy_rules:?})",
            case.name,
            case.rule
        );
        let fixed_rules = rules_of(case.fixed, case.name);
        assert!(
            !fixed_rules.contains(&case.rule),
            "{}: lint {:?} fired on the FIXED source",
            case.name,
            case.rule
        );
    }
}
