//! Golden-trace regression: a committed `.grtrace` artifact must stay
//! decodable, byte-for-byte re-encodable, and replayable forever.
//!
//! The fixture (`tests/data/listing1_seed3.grtrace`) was produced by
//! `cargo run --example record_replay -- --seed 3 --out
//! tests/data/listing1_seed3.grtrace` — Listing 1's loop-index-capture
//! race recorded under seed 3. Because traces are a deployment artifact
//! (tasks reference `.grtrace` files as reproduction instructions), the
//! wire format is versioned and append-only: any codec change that breaks
//! this test breaks every trace a past campaign filed, and must instead
//! bump `TRACE_FORMAT_VERSION` and keep a decoder for version 1.

use grs::detector::DetectorArena;
use grs::runtime::{Trace, TraceDecodeError, TRACE_FORMAT_VERSION, TRACE_MAGIC};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/listing1_seed3.grtrace");

/// The fixture's recorded digest — `Trace::digest()` at commit time. The
/// digest is a pure FNV-1a fold over the event stream, so this constant
/// also pins event content (not just event count) against drift.
const FIXTURE_DIGEST: u64 = 0xb781_816a_7b78_a083;

#[test]
fn golden_trace_decodes_with_pinned_contents() {
    let trace = Trace::read_from(FIXTURE).expect("committed fixture must decode");
    assert_eq!(trace.meta.program, "listing1_loop_index_capture");
    assert_eq!(trace.meta.seed, 3);
    assert_eq!(trace.meta.steps, 22);
    assert_eq!(trace.meta.goroutines_spawned, 4);
    assert_eq!(trace.events.len(), 13);
    assert_eq!(trace.stacks.len(), 4);
    assert_eq!(trace.digest(), FIXTURE_DIGEST);
}

#[test]
fn golden_trace_re_encodes_byte_identically() {
    // Codec stability, not just decodability: encoding the decoded trace
    // must reproduce the committed bytes exactly.
    let bytes = std::fs::read(FIXTURE).expect("read fixture");
    let trace = Trace::decode(&bytes).expect("decode fixture");
    assert_eq!(trace.encode(), bytes, "re-encoding drifted from the committed artifact");
}

#[test]
fn golden_trace_replays_to_the_recorded_race() {
    let trace = Trace::read_from(FIXTURE).expect("decode fixture");
    let mut arena = DetectorArena::new();
    for (choice, replayed) in arena.replay_all(&trace) {
        assert_eq!(replayed.events, 13, "{choice}");
        assert_eq!(
            replayed.reports.len(),
            1,
            "{choice}: the recorded interleaving exhibits exactly one race"
        );
        assert_eq!(&*replayed.reports[0].object, "job", "{choice}");
    }
}

#[test]
fn future_format_versions_are_rejected_with_a_clear_error() {
    let mut bytes = std::fs::read(FIXTURE).expect("read fixture");
    // The version field is the little-endian u32 right after the magic.
    let at = TRACE_MAGIC.len();
    bytes[at..at + 4].copy_from_slice(&99u32.to_le_bytes());
    let err = Trace::decode(&bytes).expect_err("version 99 must be rejected");
    assert_eq!(
        err,
        TraceDecodeError::UnsupportedVersion {
            found: 99,
            supported: TRACE_FORMAT_VERSION
        }
    );
    let msg = err.to_string();
    assert!(
        msg.contains("99") && msg.contains(&TRACE_FORMAT_VERSION.to_string()),
        "error must name both versions: {msg}"
    );
}

#[test]
fn corrupted_fixtures_are_rejected_not_misread() {
    let bytes = std::fs::read(FIXTURE).expect("read fixture");

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xff;
    assert_eq!(
        Trace::decode(&bad_magic).expect_err("bad magic"),
        TraceDecodeError::BadMagic
    );

    // Every proper prefix fails loudly — no silent partial decode.
    for cut in [4, TRACE_MAGIC.len() + 2, bytes.len() / 2, bytes.len() - 1] {
        let err = Trace::decode(&bytes[..cut]).expect_err("truncation");
        assert!(
            matches!(
                err,
                TraceDecodeError::Truncated
                    | TraceDecodeError::BadMagic
                    | TraceDecodeError::MalformedVarint
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
    }

    let mut trailing = bytes;
    trailing.push(0);
    assert_eq!(
        Trace::decode(&trailing).expect_err("trailing bytes"),
        TraceDecodeError::TrailingBytes { extra: 1 }
    );
}
