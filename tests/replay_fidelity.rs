//! Replay fidelity: the acceptance gate for the record/replay subsystem.
//!
//! The refactor's contract is that analysis is a *pure function of the
//! trace*: one scheduled execution, recorded once, must replay through
//! every detection algorithm to **bit-identical** output — same reports
//! (verbatim text), same fingerprints, same event and shadow-memory
//! accounting — as running that detector live on the same `(seed,
//! strategy)`. This holds because monitors never influence the schedule
//! (the runtime's schedule is a pure function of seed and strategy), so
//! the recorded event stream *is* the execution as any detector would
//! have seen it.
//!
//! These tests pin the contract over the whole executable pattern corpus
//! (racy and fixed variants), 16 seeds each, for all four algorithms —
//! including the pure-vector-clock ablation that the campaign default
//! excludes — and additionally through a full encode→decode round trip of
//! the `.grtrace` wire format, so on-disk traces carry the same guarantee
//! as in-memory ones.

use grs::deploy::race_fingerprint;
use grs::detector::DetectorArena;
use grs::fleet::pattern_suite;
use grs::runtime::{record, RunConfig, Trace};

const SEEDS: u64 = 16;

#[test]
fn replay_is_bit_identical_to_live_for_every_pattern_seed_and_detector() {
    for unit in pattern_suite(true) {
        let mut arena = DetectorArena::new();
        for seed in 0..SEEDS {
            let cfg = RunConfig::with_seed(seed);
            let (outcome, trace) = record(&unit.program, &cfg);
            assert_eq!(
                trace.events.len() as u64,
                outcome.stats.events_dispatched,
                "{}/{seed}: trace must capture every dispatched event",
                unit.name
            );
            for (choice, replayed) in arena.replay_all(&trace) {
                let (live_o, live_r) = choice.run(&unit.program, cfg.clone());
                assert_eq!(
                    live_o.steps, outcome.steps,
                    "{}/{seed}/{choice}: recording must not perturb the schedule",
                    unit.name
                );
                assert_eq!(
                    replayed.events, live_o.stats.events_dispatched,
                    "{}/{seed}/{choice}: replay must dispatch the live event count",
                    unit.name
                );
                assert_eq!(
                    replayed.peak_shadow_words, live_o.stats.peak_shadow_words,
                    "{}/{seed}/{choice}: shadow accounting must survive replay",
                    unit.name
                );
                assert_eq!(
                    replayed.reports.len(),
                    live_r.len(),
                    "{}/{seed}/{choice}: report count diverged",
                    unit.name
                );
                for (a, b) in replayed.reports.iter().zip(live_r.iter()) {
                    assert_eq!(
                        race_fingerprint(a),
                        race_fingerprint(b),
                        "{}/{seed}/{choice}: fingerprint diverged",
                        unit.name
                    );
                    assert_eq!(
                        format!("{a}"),
                        format!("{b}"),
                        "{}/{seed}/{choice}: report text diverged",
                        unit.name
                    );
                }
            }
        }
    }
}

#[test]
fn decoded_traces_replay_identically_to_recorded_traces() {
    // The wire format carries the whole fidelity guarantee: a trace that
    // went through encode→decode replays to the same reports as the
    // original in-memory trace (and therefore as the live run).
    let units: Vec<_> = pattern_suite(true).into_iter().take(8).collect();
    let mut arena_mem = DetectorArena::new();
    let mut arena_disk = DetectorArena::new();
    for unit in &units {
        for seed in 0..8u64 {
            let cfg = RunConfig::with_seed(seed);
            let (_, trace) = record(&unit.program, &cfg);
            let decoded =
                Trace::decode(&trace.encode()).expect("round trip of a recorded trace");
            assert_eq!(decoded, trace, "{}/{seed}", unit.name);
            assert_eq!(decoded.digest(), trace.digest(), "{}/{seed}", unit.name);
            let from_mem = arena_mem.replay_all(&trace);
            let from_disk = arena_disk.replay_all(&decoded);
            for ((c1, r1), (c2, r2)) in from_mem.iter().zip(from_disk.iter()) {
                assert_eq!(c1, c2);
                assert_eq!(r1.events, r2.events, "{}/{seed}/{c1}", unit.name);
                let t1: Vec<String> = r1.reports.iter().map(|r| format!("{r}")).collect();
                let t2: Vec<String> = r2.reports.iter().map(|r| format!("{r}")).collect();
                assert_eq!(t1, t2, "{}/{seed}/{c1}: decoded replay diverged", unit.name);
            }
        }
    }
}

#[test]
fn replay_reports_carry_the_repro_metadata_detectors_emit() {
    // Detector-emitted reports carry no repro yet (the campaign attaches
    // it); replay must not invent one, so live and replayed reports stay
    // comparable field-for-field.
    let unit = &pattern_suite(false)[0];
    for seed in 0..SEEDS {
        let (_, trace) = record(&unit.program, &RunConfig::with_seed(seed));
        let mut arena = DetectorArena::new();
        for (_, replayed) in arena.replay_all(&trace) {
            for r in &replayed.reports {
                assert_eq!(r.repro_seed, None);
                assert_eq!(r.repro, None);
            }
        }
    }
}
