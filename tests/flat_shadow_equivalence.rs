//! Flat shadow memory: the campaign-level equivalence gate.
//!
//! PR 7 replaces the detectors' HashMap-backed shadow state with flat,
//! index-addressed arrays and routes replay campaigns through the batched
//! `.grtrace` decoder. This suite is the acceptance gate for that rewrite
//! at the outermost observable layer: full campaigns over the §4 pattern
//! corpus, 16 seeds, all four detection algorithms, executed once with the
//! flat detectors and once with the legacy oracle (`oracle_shadow`), must
//! produce **bit-identical** deterministic output — run digests (unit,
//! seed, racy flag, fingerprints, steps), deduplicated fingerprint
//! batches, peak shadow accounting, and the stable observability counters
//! — in both live (`run`) and execute-once replay (`run_replay`) modes.
//!
//! The legacy detectors only exist under the test-only `oracle` feature;
//! the root crate's self-dev-dependency turns it on for every tier-1 test
//! build while release builds stay flat-only.

use grs::detector::DetectorChoice;
use grs::fleet::{pattern_suite, Campaign, CampaignConfig, CampaignResult};
use grs::runtime::Strategy;

/// The full matrix the ISSUE pins: pattern corpus × 16 seeds × all four
/// algorithms. Workers fixed at 2 so the suite also crosses the threaded
/// path; determinism across worker counts is pinned elsewhere.
fn config() -> CampaignConfig {
    CampaignConfig::new()
        .seeds_per_unit(16)
        .strategies(vec![Strategy::Random])
        .detectors(DetectorChoice::all_with_ablation().to_vec())
        .workers(2)
        .shards(4)
}

/// The stable counters both shadow implementations must agree on (the
/// volatile scheduler counters legitimately differ with placement).
const STABLE_COUNTERS: &[&str] = &[
    "campaign.runs",
    "campaign.racy_runs",
    "campaign.reports",
    "runtime.events",
    "detector.runs",
];

fn assert_equivalent(mode: &str, flat: &CampaignResult, oracle: &CampaignResult) {
    assert_eq!(
        flat.deterministic_digest(),
        oracle.deterministic_digest(),
        "{mode}: deterministic run digest must be bit-identical"
    );
    assert_eq!(
        flat.batch.fingerprints(),
        oracle.batch.fingerprints(),
        "{mode}: deduplicated fingerprint batch"
    );
    assert_eq!(
        flat.peak_shadow_words(),
        oracle.peak_shadow_words(),
        "{mode}: campaign peak shadow words"
    );
    assert_eq!(
        flat.max_depot_stacks(),
        oracle.max_depot_stacks(),
        "{mode}: depot footprint"
    );
    for name in STABLE_COUNTERS {
        assert_eq!(
            flat.obs.snapshot.counter(name),
            oracle.obs.snapshot.counter(name),
            "{mode}: stable counter {name}"
        );
    }
    // Per-record shadow accounting, not just the campaign max: the flat
    // arrays must reproduce the oracle's peak for every single run.
    for (f, o) in flat.records.iter().zip(oracle.records.iter()) {
        assert_eq!(
            f.peak_shadow_words, o.peak_shadow_words,
            "{mode}: {}/{}/{} peak shadow words",
            f.unit_name, f.spec.seed, f.spec.detector
        );
        assert_eq!(f.events, o.events, "{mode}: per-run event count");
    }
}

#[test]
fn live_campaign_is_bit_identical_to_oracle() {
    let units = pattern_suite(true);
    let flat = Campaign::over_units(config(), units.clone()).run();
    let oracle = Campaign::over_units(config().oracle_shadow(true), units).run();
    assert!(
        flat.racy_runs() > 0,
        "corpus must produce races or the equivalence is vacuous"
    );
    assert_equivalent("live", &flat, &oracle);
}

#[test]
fn replay_campaign_is_bit_identical_to_oracle() {
    let units = pattern_suite(true);
    let flat = Campaign::over_units(config(), units.clone()).run_replay();
    let oracle = Campaign::over_units(config().oracle_shadow(true), units).run_replay();
    assert!(flat.racy_runs() > 0);
    assert_equivalent("replay", &flat, &oracle);
    // Both modes fed every trace event through the batch decoder.
    let (fs, os) = (flat.replay.unwrap(), oracle.replay.unwrap());
    assert_eq!(fs.trace_events, fs.batch_events, "flat: decode covers the stream");
    assert_eq!(os.trace_events, os.batch_events, "oracle: decode covers the stream");
    assert_eq!(fs.decode_batches, os.decode_batches, "same chunking both modes");
}

/// Replay-vs-live on the flat path alone: the batched replay campaign
/// must still match the live campaign cell for cell (the PR 5 guarantee,
/// re-pinned on top of the new hot path).
#[test]
fn flat_replay_campaign_matches_flat_live_campaign() {
    let units = pattern_suite(true);
    let live = Campaign::over_units(config(), units.clone()).run();
    let replay = Campaign::over_units(config(), units).run_replay();
    assert_eq!(live.deterministic_digest(), replay.deterministic_digest());
    assert_eq!(live.batch.fingerprints(), replay.batch.fingerprints());
}
