//! Generator↔frontend contract: every test the per-test Go corpus emitter
//! produces must parse under golite, lower under `grs-interp`, and run to
//! completion on the runtime under a `NullMonitor` — across many generator
//! seeds, not just the one the campaign happens to use. This is the
//! property that makes `units_skipped == 0` at 100K scale a *guarantee*
//! instead of an observation.

use grs::corpus::{GoTestGen, GoTestSpec};
use grs::interp::Interp;
use grs::runtime::{NullMonitor, RunConfig, Runtime};

/// Seeds × tests-per-seed the sweep covers. 64 seeds is the floor the
/// campaign relies on; each seed draws its tests from the full template
/// family thanks to the per-index rng split.
const GENERATOR_SEEDS: u64 = 64;
const TESTS_PER_SEED: u64 = 24;

#[test]
fn every_emitted_test_parses_lowers_and_runs() {
    for seed in 0..GENERATOR_SEEDS {
        let gen = GoTestGen::new(GoTestSpec::default_mix().fillers_max(3), seed);
        for t in gen.iter(TESTS_PER_SEED) {
            grs::golite::scan_source(&t.source).unwrap_or_else(|e| {
                panic!("seed {seed} {}: golite rejects generated source: {e}", t.name)
            });
            let interp = Interp::compile(&t.source).unwrap_or_else(|e| {
                panic!("seed {seed} {}: interp rejects generated source: {e}", t.name)
            });
            let program = interp.program_checked(&t.name, "main").unwrap_or_else(|e| {
                panic!("seed {seed} {}: lowering fails: {e}", t.name)
            });
            // Two schedule seeds per test: a panic or deadlock in either
            // is a generator bug, racy or not.
            for run_seed in [1, 2] {
                let (outcome, _) =
                    Runtime::new(RunConfig::with_seed(run_seed)).run(&program, NullMonitor);
                assert!(
                    outcome.is_clean(),
                    "seed {seed} {} run_seed {run_seed}: errors {:?} deadlock {:?} leaked {:?}",
                    t.name,
                    outcome.errors,
                    outcome.deadlock,
                    outcome.leaked
                );
            }
        }
    }
}

#[test]
fn compile_errors_are_structured_not_panics() {
    let err = match Interp::compile("package main\n\nfunc main() {") {
        Ok(_) => panic!("truncated source must not compile"),
        Err(e) => e,
    };
    assert_eq!(err.phase, grs::interp::CompilePhase::Parse);
    assert!(err.pos.is_some(), "parse errors carry a position");

    let interp = Interp::compile("package main\n\nfunc helper(x int) int {\n\treturn x\n}\n")
        .expect("valid source");
    let err = interp.program_checked("unit", "main").unwrap_err();
    assert_eq!(err.phase, grs::interp::CompilePhase::Lower);
    assert!(err.message.contains("main"), "error names the entry: {err}");
    let err = interp.program_checked("unit", "helper").unwrap_err();
    assert_eq!(err.phase, grs::interp::CompilePhase::Lower);
    assert!(err.message.contains("parameter"), "{err}");
}
