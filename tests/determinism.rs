//! Determinism regression tests.
//!
//! The whole reproduction rests on one invariant: a `(program, seed,
//! strategy)` triple names *one* interleaving. These tests pin it from
//! three directions — repeated runs in one process, event-trace digests
//! (which would expose any `HashMap`-iteration-order leak in the runtime's
//! scheduling path), and parallel campaigns at worker counts {1, 4, 8}
//! (which would expose any cross-thread nondeterminism in the explorer,
//! the shard scheduler, or the dedup stage).

use grs::detector::{DetectorChoice, ExploreConfig, Explorer};
use grs::fleet::{Campaign, CampaignConfig};
use grs::patterns;
use grs::runtime::{RunConfig, Runtime, Strategy, TraceHasher};

/// Same seed ⇒ identical event-trace hash across 3 repeated runs, for a
/// spread of patterns, seeds, and strategies.
#[test]
fn trace_hash_is_stable_across_repeated_runs() {
    for p in patterns::registry().into_iter().take(10) {
        for program in [p.racy_program(), p.fixed_program()] {
            for seed in [0u64, 7, 1234] {
                for strategy in [Strategy::Random, Strategy::RoundRobin, Strategy::Pct { depth: 2 }]
                {
                    let digest = |_: u32| {
                        let cfg = RunConfig::with_seed(seed).strategy(strategy);
                        let (_, h) = Runtime::new(cfg).run(&program, TraceHasher::new());
                        (h.digest(), h.events())
                    };
                    let first = digest(0);
                    for rep in 1..3 {
                        assert_eq!(
                            digest(rep),
                            first,
                            "{}/{} seed {seed} {strategy:?}: trace diverged on rerun {rep}",
                            p.id,
                            program.name()
                        );
                    }
                }
            }
        }
    }
}

/// Different seeds (almost always) produce different traces — the hash is
/// actually sensitive to the schedule, not a constant.
#[test]
fn trace_hash_distinguishes_seeds() {
    let p = patterns::find("loop_index_capture").expect("in corpus");
    let program = p.racy_program();
    let digests: std::collections::HashSet<u64> = (0..16u64)
        .map(|seed| {
            let (_, h) = Runtime::new(RunConfig::with_seed(seed)).run(&program, TraceHasher::new());
            h.digest()
        })
        .collect();
    assert!(
        digests.len() > 1,
        "16 seeds produced one digest — hash is insensitive"
    );
}

/// The detector layer is deterministic too: same seed ⇒ same reports, with
/// report *order* included (this is what the FastTrack sorted-iteration fix
/// guarantees when a variable has a shared read history).
#[test]
fn detector_reports_are_deterministic_including_order() {
    for p in patterns::registry().into_iter().take(10) {
        let program = p.racy_program();
        for seed in 0..8u64 {
            for detector in DetectorChoice::all() {
                let run = || {
                    let (_, reports) = detector.run(&program, RunConfig::with_seed(seed));
                    reports
                        .iter()
                        .map(|r| format!("{r}"))
                        .collect::<Vec<_>>()
                };
                let a = run();
                let b = run();
                let c = run();
                assert_eq!(a, b, "{} seed {seed} {detector}", p.id);
                assert_eq!(b, c, "{} seed {seed} {detector}", p.id);
            }
        }
    }
}

/// Explorer output is identical at worker counts {1, 4, 8}.
#[test]
fn explorer_is_worker_count_invariant() {
    let p = patterns::find("missing_lock").expect("in corpus");
    let program = p.racy_program();
    let reference = Explorer::new(ExploreConfig::quick().runs(24).workers(1))
        .explore_parallel(&program);
    for workers in [4, 8] {
        let r = Explorer::new(ExploreConfig::quick().runs(24).workers(workers))
            .explore_parallel(&program);
        assert_eq!(r.racy_runs, reference.racy_runs, "workers={workers}");
        assert_eq!(
            r.unique_races.len(),
            reference.unique_races.len(),
            "workers={workers}"
        );
        for (a, b) in r.unique_races.iter().zip(reference.unique_races.iter()) {
            assert_eq!(a.site_key(), b.site_key(), "workers={workers}");
            assert_eq!(a.repro_seed, b.repro_seed, "workers={workers}");
        }
    }
}

/// Campaign output — records and deduped batch — is identical at worker
/// counts {1, 4, 8}, across strategies and detectors.
#[test]
fn campaign_is_worker_count_invariant() {
    let units: Vec<_> = grs::fleet::pattern_suite(true).into_iter().take(6).collect();
    let config = CampaignConfig::smoke()
        .seeds_per_unit(3)
        .strategies(vec![Strategy::Random, Strategy::Pct { depth: 2 }])
        .detectors(vec![DetectorChoice::Hybrid, DetectorChoice::Eraser])
        .shards(4);
    let reference = Campaign::over_units(config.clone().workers(1), units.clone()).run();
    for workers in [4, 8] {
        let r = Campaign::over_units(config.clone().workers(workers), units.clone()).run();
        assert_eq!(
            r.deterministic_digest(),
            reference.deterministic_digest(),
            "workers={workers}"
        );
        assert_eq!(
            r.batch.fingerprints(),
            reference.batch.fingerprints(),
            "workers={workers}"
        );
        let rep: Vec<_> = r.batch.iter().map(|(fp, rr)| (fp, rr.repro_seed)).collect();
        let refr: Vec<_> = reference
            .batch
            .iter()
            .map(|(fp, rr)| (fp, rr.repro_seed))
            .collect();
        assert_eq!(rep, refr, "workers={workers}: representatives diverged");
    }
}

/// The campaign's convergence curve (a pure function of the deterministic
/// records) is also invariant — the plot the `campaign` example emits does
/// not depend on how many cores produced it.
#[test]
fn convergence_curve_is_worker_count_invariant() {
    let units: Vec<_> = grs::fleet::pattern_suite(false).into_iter().take(5).collect();
    let config = CampaignConfig::smoke().seeds_per_unit(4).shards(3);
    let serial = Campaign::over_units(config.clone().workers(1), units.clone()).run();
    let parallel = Campaign::over_units(config.workers(4), units).run();
    assert_eq!(serial.convergence(), parallel.convergence());
}
