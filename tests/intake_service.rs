//! Integration suite for the streaming intake service (§4j): wire-level
//! corruption is rejected with typed errors through the full served
//! stack (mirroring `golden_trace.rs` for the `.grtrace` codec itself),
//! snapshots round-trip byte-identically across repeated cycles, and
//! concurrent interleaved submission is equivalent to serial submission
//! in fingerprint order.

use std::sync::Arc;

use grs::deploy::service::{IntakeServer, IntakeService};
use grs::deploy::store::Snapshot;
use grs::deploy::wire::{InProcTransport, RequestFrame, ResponseFrame, WireError, REQUEST_MAGIC};
use grs::deploy::FileOutcome;
use grs::detector::{ExploreConfig, Explorer, RaceReport};
use grs::patterns::registry;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::io::Write as _;

/// A pool of genuine detector reports spanning many distinct races.
fn corpus_reports() -> Vec<RaceReport> {
    let explorer = Explorer::new(ExploreConfig::quick().runs(30));
    let mut reports = Vec::new();
    for pattern in registry() {
        reports.extend(explorer.explore(&pattern.racy_program()).unique_races);
    }
    assert!(reports.len() >= 20, "corpus produces many races");
    reports
}

// ---------------------------------------------------------------------------
// Wire corruption and truncation: typed rejection at the frame codec,
// and a Malformed response (not a crash or a hang) from a live server.
// ---------------------------------------------------------------------------

#[test]
fn frame_decode_rejects_corruption_with_typed_errors() {
    let good = RequestFrame::TraceUpload {
        day: 3,
        trace: vec![1, 2, 3, 4],
    }
    .encode();

    // Flip the magic.
    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        RequestFrame::decode(&bad),
        Err(WireError::BadMagic)
    ));

    // Unknown version.
    let mut bad = good.clone();
    bad[4] = 0x7E;
    assert!(matches!(
        RequestFrame::decode(&bad),
        Err(WireError::UnsupportedVersion { found: 0x7E, .. })
    ));

    // Unknown frame kind.
    let mut bad = good.clone();
    bad[5] = 0xEE;
    assert!(matches!(
        RequestFrame::decode(&bad),
        Err(WireError::BadFrameKind(0xEE))
    ));

    // Every truncation point is Truncated, never a panic or a misparse.
    for cut in 0..good.len() {
        assert!(
            matches!(RequestFrame::decode(&good[..cut]), Err(WireError::Truncated)),
            "cut at {cut} must be Truncated"
        );
    }

    // Trailing garbage is rejected, not silently ignored.
    let mut bad = good.clone();
    bad.extend_from_slice(&[0, 0]);
    assert!(matches!(
        RequestFrame::decode(&bad),
        Err(WireError::TrailingBytes { extra: 2 })
    ));
}

#[test]
fn served_stack_rejects_garbage_and_malformed_traces() {
    let service = IntakeService::builder().workers(1).start().unwrap();
    let (transport, connector) = InProcTransport::new();
    let server = IntakeServer::spawn(service.handle(), transport);

    // A syntactically valid wire frame whose payload is not a `.grtrace`:
    // the server answers Malformed and keeps the connection usable is NOT
    // promised (framing stays intact here, so it answers and continues).
    let mut conn = connector.connect().unwrap();
    RequestFrame::TraceUpload {
        day: 0,
        trace: b"not a trace".to_vec(),
    }
    .write_to(&mut conn)
    .unwrap();
    match ResponseFrame::read_from(&mut conn).unwrap().unwrap() {
        ResponseFrame::Malformed { message } => {
            assert!(!message.is_empty(), "decode error is reported");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
    // Same connection still serves well-formed requests afterwards.
    RequestFrame::Ping.write_to(&mut conn).unwrap();
    assert_eq!(
        ResponseFrame::read_from(&mut conn).unwrap().unwrap(),
        ResponseFrame::Pong
    );
    drop(conn);

    // Corrupt framing (bad magic): one Malformed reply, then the server
    // hangs up — after a desync nothing later on the stream is trustable.
    let mut conn = connector.connect().unwrap();
    let mut bytes = RequestFrame::Ping.encode();
    bytes[0] ^= 0xFF;
    conn.write_all(&bytes).unwrap();
    conn.flush().unwrap();
    match ResponseFrame::read_from(&mut conn).unwrap() {
        Some(ResponseFrame::Malformed { .. }) => {}
        other => panic!("expected Malformed for bad magic, got {other:?}"),
    }
    assert!(
        ResponseFrame::read_from(&mut conn).unwrap().is_none(),
        "server closes the connection after a framing error"
    );
    drop(conn);

    // A header that promises more payload than ever arrives: the client
    // closing mid-frame must not wedge or kill the server.
    let mut conn = connector.connect().unwrap();
    let mut partial = Vec::new();
    partial.extend_from_slice(&REQUEST_MAGIC);
    partial.extend_from_slice(&[1, 0]); // version, kind = TraceUpload
    partial.extend_from_slice(&64u32.to_le_bytes()); // promise 64 bytes
    partial.extend_from_slice(&[0xAB; 10]); // ...deliver 10
    conn.write_all(&partial).unwrap();
    conn.flush().unwrap();
    drop(conn); // hang up mid-frame

    // The server is still alive and serving.
    let mut conn = connector.connect().unwrap();
    RequestFrame::Ping.write_to(&mut conn).unwrap();
    assert_eq!(
        ResponseFrame::read_from(&mut conn).unwrap().unwrap(),
        ResponseFrame::Pong
    );
    drop(conn);

    assert!(service.stats().malformed >= 1);
    server.shutdown();
    service.shutdown().unwrap();
}

// ---------------------------------------------------------------------------
// Real sockets: the same protocol served over loopback TCP.
// ---------------------------------------------------------------------------

#[test]
fn tcp_transport_serves_real_trace_uploads() {
    use grs::deploy::wire::TcpTransport;
    use grs::runtime::{record, RunConfig};

    let pattern = grs::patterns::find("missing_lock").expect("in corpus");
    let (_, trace) = record(&pattern.racy_program(), &RunConfig::with_seed(3));

    let service = IntakeService::builder().workers(1).start().unwrap();
    let transport = TcpTransport::bind("127.0.0.1:0").unwrap();
    let addr = transport.local_addr();
    let server = IntakeServer::spawn(service.handle(), transport);

    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    RequestFrame::TraceUpload {
        day: 0,
        trace: trace.encode(),
    }
    .write_to(&mut conn)
    .unwrap();
    match ResponseFrame::read_from(&mut conn).unwrap().unwrap() {
        ResponseFrame::Accepted { filed, races, .. } => {
            assert!(races >= 1, "missing_lock trace carries a race");
            assert!(filed >= 1, "first upload files a task");
        }
        other => panic!("expected Accepted over TCP, got {other:?}"),
    }
    // The same trace again: accepted, but suppressed as a duplicate.
    RequestFrame::TraceUpload {
        day: 1,
        trace: trace.encode(),
    }
    .write_to(&mut conn)
    .unwrap();
    match ResponseFrame::read_from(&mut conn).unwrap().unwrap() {
        ResponseFrame::Accepted {
            filed, duplicates, ..
        } => {
            assert_eq!(filed, 0, "open task suppresses the re-detection");
            assert!(duplicates >= 1);
        }
        other => panic!("expected Accepted over TCP, got {other:?}"),
    }
    drop(conn);

    server.shutdown();
    let stats = service.shutdown().unwrap();
    assert!(stats.total_filed >= 1);
    assert_eq!(stats.traces, 2);
}

// ---------------------------------------------------------------------------
// Snapshot stability: capture → restore → capture is byte-identical,
// and stays byte-identical across repeated cycles.
// ---------------------------------------------------------------------------

#[test]
fn snapshot_restore_snapshot_is_byte_identical_across_cycles() {
    let service = IntakeService::builder().workers(1).start().unwrap();
    let reports = corpus_reports();
    service.submit_batch(&reports, 0).unwrap();
    // Mix task states: fix a couple so the snapshot covers Fixed tasks
    // with engineer/patch/day fields, not just Open ones.
    let (first, second) = service.with_tracker(|t| (t.tasks()[0].id, t.tasks()[1].id));
    service.fix(first, 2, "alice", 41).unwrap();
    service.fix(second, 5, "bob", 42).unwrap();

    let mut snap = service.snapshot().encode();
    for cycle in 0..3 {
        let restored = Snapshot::decode(&snap)
            .unwrap_or_else(|e| panic!("cycle {cycle}: decode: {e:?}"))
            .restore()
            .unwrap_or_else(|e| panic!("cycle {cycle}: restore: {e:?}"));
        let again = Snapshot::capture(&restored).encode();
        assert_eq!(snap, again, "cycle {cycle} must be byte-identical");
        snap = again;
    }
    service.shutdown().unwrap();
}

// ---------------------------------------------------------------------------
// Concurrency property: interleaved concurrent submission from many
// threads is equivalent to submitting the same reports serially in
// fingerprint order — same open-fingerprint set, same filed count.
// ---------------------------------------------------------------------------

#[test]
fn interleaved_concurrent_submits_match_serial_fingerprint_order() {
    let reports = Arc::new(corpus_reports());

    // Serial oracle: sort by fingerprint, submit one by one.
    let serial = IntakeService::builder().workers(1).start().unwrap();
    let mut ordered: Vec<_> = reports.iter().cloned().collect();
    ordered.sort_by_key(grs::deploy::race_fingerprint);
    for r in &ordered {
        serial.submit(r, 0).unwrap();
    }
    let serial_filed = serial.with_tracker(|t| t.total_filed());
    let mut serial_fps: Vec<u64> = serial.with_tracker(|t| {
        t.open_tasks()
            .filter_map(|id| t.task(id))
            .map(|task| task.fingerprint.0)
            .collect()
    });
    serial_fps.sort_unstable();

    for trial in 0..8u64 {
        // Concurrent run: shuffle the reports (randlite), split across
        // threads, submit through cloned handles simultaneously.
        let mut shuffled: Vec<_> = reports.iter().cloned().collect();
        shuffled.shuffle(&mut StdRng::seed_from_u64(0x50AB + trial));
        let service = IntakeService::builder().workers(2).start().unwrap();
        let threads: Vec<_> = shuffled
            .chunks(shuffled.len().div_ceil(4))
            .map(|chunk| {
                let handle = service.handle();
                let chunk = chunk.to_vec();
                std::thread::spawn(move || {
                    for r in &chunk {
                        handle.submit(r, 0).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }

        assert_eq!(
            service.with_tracker(|t| t.total_filed()),
            serial_filed,
            "trial {trial}: concurrent filing count diverged"
        );
        let mut fps: Vec<u64> = service.with_tracker(|t| {
            t.open_tasks()
                .filter_map(|id| t.task(id))
                .map(|task| task.fingerprint.0)
                .collect()
        });
        fps.sort_unstable();
        assert_eq!(fps, serial_fps, "trial {trial}: open fingerprints diverged");
        service.shutdown().unwrap();
    }
    serial.shutdown().unwrap();
}

// ---------------------------------------------------------------------------
// Duplicate suppression under concurrency: the same batch submitted from
// every thread at once files each race exactly once.
// ---------------------------------------------------------------------------

#[test]
fn concurrent_duplicate_submissions_file_each_race_once() {
    let reports = Arc::new(corpus_reports());
    let service = IntakeService::builder().workers(2).start().unwrap();
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let handle = service.handle();
            let reports = Arc::clone(&reports);
            std::thread::spawn(move || {
                let mut filed = 0usize;
                for r in reports.iter() {
                    if matches!(handle.submit(r, 0).unwrap(), FileOutcome::Filed { .. }) {
                        filed += 1;
                    }
                }
                filed
            })
        })
        .collect();
    let filed: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
    let distinct: std::collections::HashSet<u64> = reports
        .iter()
        .map(|r| grs::deploy::race_fingerprint(r).0)
        .collect();
    assert_eq!(
        filed,
        distinct.len(),
        "each distinct race files exactly once across all threads"
    );
    assert_eq!(service.with_tracker(|t| t.total_filed()), distinct.len());
    service.shutdown().unwrap();
}
