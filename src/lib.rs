//! Root package: hosts the workspace examples and integration tests.
pub use grs;
