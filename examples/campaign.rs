//! The parallel campaign driver: run the (program × seed × strategy ×
//! detector) matrix over the pattern + Go-source corpora, report
//! throughput, per-shard latency, and detection-rate convergence, and emit
//! a machine-readable `BENCH_campaign.json`.
//!
//! ```sh
//! cargo run --release --example campaign -- [--workers N] [--seeds N] \
//!     [--suite pattern|corpus|all] [--serial-baseline] [--out PATH]
//! ```

use std::fmt::Write as _;

use grs::deploy::{OwnerDb, Pipeline};
use grs::detector::{default_workers, DetectorChoice};
use grs::fleet::{corpus_suite, pattern_suite, Campaign, CampaignConfig, CampaignResult};
use grs::runtime::Strategy;

struct Args {
    workers: usize,
    seeds: usize,
    suite: String,
    serial_baseline: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: default_workers(),
        seeds: 32,
        suite: "all".to_string(),
        serial_baseline: false,
        out: "BENCH_campaign.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--workers" => args.workers = value("--workers").parse().expect("workers: integer"),
            "--seeds" => args.seeds = value("--seeds").parse().expect("seeds: integer"),
            "--suite" => args.suite = value("--suite"),
            "--serial-baseline" => args.serial_baseline = true,
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn result_json(r: &CampaignResult, label: &str) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        r#"{{"label":"{}","workers":{},"shards":{},"total_runs":{},"racy_runs":{},"unique_races":{},"detection_rate":{:.4},"wall_ms":{:.3},"throughput_rps":{:.1},"total_events":{},"events_per_sec":{:.0},"max_depot_stacks":{},"peak_shadow_words":{}"#,
        json_escape(label),
        r.workers,
        r.shards,
        r.total_runs(),
        r.racy_runs(),
        r.batch.len(),
        r.detection_rate(),
        r.wall.as_secs_f64() * 1e3,
        r.throughput_rps(),
        r.total_events(),
        r.events_per_sec(),
        r.max_depot_stacks(),
        r.peak_shadow_words(),
    );
    s.push_str(",\"shard_latency_ms\":[");
    for (i, st) in r.shard_stats().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            r#"{{"shard":{},"runs":{},"total_ms":{:.3},"max_ms":{:.3}}}"#,
            st.shard,
            st.runs,
            st.total.as_secs_f64() * 1e3,
            st.max.as_secs_f64() * 1e3,
        );
    }
    s.push_str("],\"convergence\":[");
    // Subsample the curve to <= 64 points to keep the artifact small.
    let conv = r.convergence();
    let step = (conv.len() / 64).max(1);
    let mut first = true;
    for (i, (runs, unique)) in conv.iter().enumerate() {
        if i % step != 0 && i != conv.len() - 1 {
            continue;
        }
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "[{runs},{unique}]");
    }
    s.push_str("]}");
    s
}

fn main() {
    let args = parse_args();
    let units = match args.suite.as_str() {
        "pattern" => pattern_suite(true),
        "corpus" => corpus_suite(),
        "all" => {
            let mut u = pattern_suite(true);
            u.extend(corpus_suite());
            u
        }
        other => panic!("--suite must be pattern|corpus|all, got {other}"),
    };
    let config = CampaignConfig::nightly()
        .seeds_per_unit(args.seeds)
        .workers(args.workers)
        .shards(2 * args.workers)
        .detectors(vec![DetectorChoice::Hybrid])
        .strategies(vec![Strategy::Random, Strategy::Pct { depth: 2 }]);
    let campaign = Campaign::over_units(config.clone(), units);

    println!("== campaign: {} units × {} seeds × {} strategies × {} detectors = {} runs ==",
        campaign.units().len(),
        config.seeds_per_unit,
        config.strategies.len(),
        config.detectors.len(),
        config.matrix_size(campaign.units().len()),
    );
    println!("   workers {} · shards {}", config.workers, config.shards);

    let result = campaign.run();
    println!(
        "parallel: {} runs in {:.1} ms ({:.0} runs/s), {} racy runs, {} unique races",
        result.total_runs(),
        result.wall.as_secs_f64() * 1e3,
        result.throughput_rps(),
        result.racy_runs(),
        result.batch.len(),
    );
    println!(
        "   hot path: {} events ({:.2} M events/s) · depot ≤ {} stacks/run · shadow ≤ {} words/run",
        result.total_events(),
        result.events_per_sec() / 1e6,
        result.max_depot_stacks(),
        result.peak_shadow_words(),
    );
    for st in result.shard_stats() {
        println!(
            "   shard {:>2}: {:>4} runs, {:>8.1} ms total, {:>6.2} ms max",
            st.shard,
            st.runs,
            st.total.as_secs_f64() * 1e3,
            st.max.as_secs_f64() * 1e3,
        );
    }
    let conv = result.convergence();
    if let Some(&(_, total)) = conv.last() {
        // Where the campaign reached 50% / 90% / 100% of its final yield —
        // the §3.2 flakiness story quantified.
        for frac in [0.5, 0.9, 1.0] {
            let target = (total as f64 * frac).ceil() as usize;
            if let Some(&(runs, _)) = conv.iter().find(|&&(_, u)| u >= target) {
                println!(
                    "   {:>3.0}% of races found after {runs} runs ({:.1}% of the campaign)",
                    frac * 100.0,
                    100.0 * runs as f64 / conv.len() as f64
                );
            }
        }
    }

    // File the deduped batch into the deployment pipeline (day 0).
    let mut pipeline = Pipeline::new(OwnerDb::new());
    let outcomes = result.file_into(&mut pipeline, 0);
    println!(
        "pipeline: filed {} tasks from {} deduped races ({} raw reports)",
        pipeline.tracker().total_filed(),
        outcomes.len(),
        result.batch.raw_reports(),
    );

    let mut sections = vec![result_json(&result, "parallel")];
    if args.serial_baseline {
        let serial = campaign.run_serial();
        println!(
            "serial:   {} runs in {:.1} ms ({:.0} runs/s) — speedup {:.2}×",
            serial.total_runs(),
            serial.wall.as_secs_f64() * 1e3,
            serial.throughput_rps(),
            serial.wall.as_secs_f64() / result.wall.as_secs_f64().max(1e-9),
        );
        assert_eq!(
            serial.deterministic_digest(),
            result.deterministic_digest(),
            "serial and parallel campaigns must agree"
        );
        sections.push(result_json(&serial, "serial"));
    }

    let json = format!(
        r#"{{"suite":"{}","seeds_per_unit":{},"units":{},"results":[{}]}}"#,
        json_escape(&args.suite),
        config.seeds_per_unit,
        campaign.units().len(),
        sections.join(","),
    );
    std::fs::write(&args.out, format!("{json}\n")).expect("write JSON summary");
    println!("wrote {}", args.out);
}
