//! The parallel campaign driver: run the (program × seed × strategy ×
//! detector) matrix over the pattern + Go-source corpora, report
//! throughput, per-shard latency, and detection-rate convergence, and emit
//! a machine-readable `BENCH_campaign.json`.
//!
//! ```sh
//! cargo run --release --example campaign -- [--workers N] [--seeds N] \
//!     [--suite pattern|corpus|all] [--serial-baseline] [--out PATH]
//! ```
//!
//! With `--replay` the campaign instead runs the execute-once engine: each
//! `(program, seed, strategy)` executes a single time under a trace
//! recorder and the trace fans offline through every configured detector —
//! here the full three-detector differential set. The run emits
//! `BENCH_replay.json` comparing it against the execute-per-detector
//! baseline on the same matrix (same deterministic digest, measured
//! speedup):
//!
//! ```sh
//! cargo run --release --example campaign -- --replay [--seeds N] \
//!     [--workers N] [--out BENCH_replay.json]
//! ```
//!
//! Either mode also exports the observability report (`BENCH_obs.json`:
//! stable metrics + the §3.5 Figure-3/Figure-4 timeline + volatile timing;
//! override the path with `--obs-out`), and `--dashboard` renders it as a
//! terminal dashboard.
//!
//! The default mode additionally runs the scheduler **ablation** (three
//! arms at the same per-unit budget: the static random and PCT matrices
//! vs the coverage-guided adaptive mode) and embeds its unsampled
//! convergence curves, the guided arm's executions-to-parity ratio, and
//! the adaptive digests at 1/4/8 workers under `"ablation"` in
//! `BENCH_campaign.json`. `--ablation-budget N` sets the per-unit
//! execution budget (default 96; `0` skips the ablation).

use std::fmt::Write as _;
use std::sync::Arc;

use grs::detector::default_workers;
use grs::prelude::*;

struct Args {
    workers: usize,
    seeds: usize,
    suite: String,
    serial_baseline: bool,
    replay: bool,
    dashboard: bool,
    ablation_budget: usize,
    out: Option<String>,
    obs_out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: default_workers(),
        seeds: 32,
        suite: "all".to_string(),
        serial_baseline: false,
        replay: false,
        dashboard: false,
        ablation_budget: 96,
        out: None,
        obs_out: "BENCH_obs.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--workers" => args.workers = value("--workers").parse().expect("workers: integer"),
            "--seeds" => args.seeds = value("--seeds").parse().expect("seeds: integer"),
            "--suite" => args.suite = value("--suite"),
            "--serial-baseline" => args.serial_baseline = true,
            "--replay" => args.replay = true,
            "--ablation-budget" => {
                args.ablation_budget = value("--ablation-budget")
                    .parse()
                    .expect("ablation-budget: integer");
            }
            "--dashboard" => args.dashboard = true,
            "--out" => args.out = Some(value("--out")),
            "--obs-out" => args.obs_out = value("--obs-out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Writes the observability report, optionally renders the dashboard, and
/// prints the one-line summary either way.
fn export_obs(args: &Args, obs: &ObsReport) {
    std::fs::write(&args.obs_out, format!("{}\n", obs.to_json())).expect("write obs report");
    if args.dashboard {
        println!("{}", obs.dashboard());
    }
    println!(
        "obs: {} · digest 0x{:016x} · {} observations → {} filed / {} fixed over {} days → {}",
        obs.label,
        obs.deterministic_digest(),
        obs.timeline.observations,
        obs.timeline.total_filed,
        obs.timeline.total_fixed,
        obs.timeline.days.len(),
        args.obs_out,
    );
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Prints the campaign's skip accounting: how many units failed to lower
/// and the first few structured reasons. A healthy corpus logs nothing.
fn log_skips(r: &CampaignResult) {
    if r.units_skipped == 0 {
        return;
    }
    println!(
        "   skipped {} unit(s) that failed to lower ({} specs):",
        r.units_skipped,
        r.obs.snapshot.counter("campaign.skipped_runs"),
    );
    for reason in &r.skip_reasons {
        println!("     - {reason}");
    }
}

fn result_json(r: &CampaignResult, label: &str) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        r#"{{"label":"{}","workers":{},"shards":{},"total_runs":{},"racy_runs":{},"unique_races":{},"detection_rate":{:.4},"wall_ms":{:.3},"throughput_rps":{:.1},"total_events":{},"events_per_sec":{:.0},"max_depot_stacks":{},"peak_shadow_words":{}"#,
        json_escape(label),
        r.workers,
        r.shards,
        r.total_runs(),
        r.racy_runs(),
        r.batch.len(),
        r.detection_rate(),
        r.wall.as_secs_f64() * 1e3,
        r.throughput_rps(),
        r.total_events(),
        r.events_per_sec(),
        r.max_depot_stacks(),
        r.peak_shadow_words(),
    );
    let _ = write!(s, r#","units_skipped":{}"#, r.units_skipped);
    s.push_str(",\"shard_latency_ms\":[");
    for (i, st) in r.shard_stats().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            r#"{{"shard":{},"runs":{},"total_ms":{:.3},"max_ms":{:.3}}}"#,
            st.shard,
            st.runs,
            st.total.as_secs_f64() * 1e3,
            st.max.as_secs_f64() * 1e3,
        );
    }
    s.push_str("],\"convergence\":[");
    // Subsample the curve to <= 64 points to keep the artifact small.
    let conv = r.convergence();
    let step = (conv.len() / 64).max(1);
    let mut first = true;
    for (i, (runs, unique)) in conv.iter().enumerate() {
        if i % step != 0 && i != conv.len() - 1 {
            continue;
        }
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "[{runs},{unique}]");
    }
    s.push_str("]}");
    s
}

/// The suite-wide per-execution convergence curve: records are replayed
/// in round-robin order across units (execution 0 of every unit, then
/// execution 1, …), so point `e` is the number of distinct race
/// fingerprints known once every unit has spent `e + 1` executions. This
/// ordering makes arms whose in-unit schedules differ (static matrix vs
/// adaptive exploration) comparable at equal cost, and the curve is
/// exported unsampled — one point per execution round, not capped like
/// the campaign summary's convergence section.
fn per_exec_curve(r: &CampaignResult, base_seed: u64, execs: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..r.records.len()).collect();
    order.sort_unstable_by_key(|&i| {
        let rec = &r.records[i];
        ((rec.spec.seed - base_seed) as usize, rec.spec.unit, rec.spec.index)
    });
    let mut seen = std::collections::HashSet::new();
    let mut curve = vec![0usize; execs];
    for i in order {
        let rec = &r.records[i];
        for &fp in &rec.fingerprints {
            seen.insert(fp);
        }
        let exec = (rec.spec.seed - base_seed) as usize;
        if exec < execs {
            curve[exec] = seen.len();
        }
    }
    for e in 1..execs {
        curve[e] = curve[e].max(curve[e - 1]);
    }
    curve
}

/// The §3.2 scheduler ablation: random and PCT static matrices vs the
/// coverage-guided adaptive mode, each arm spending the same per-unit
/// execution budget under the single hybrid detector. Prints a
/// convergence panel, re-runs the guided arm at 1/4/8 workers so CI can
/// gate digest determinism, and returns the `"ablation"` JSON object for
/// `BENCH_campaign.json`.
fn run_ablation(args: &Args, units: &[CampaignUnit]) -> String {
    let budget = args.ablation_budget;
    let arm_cfg = |strategy: Strategy, workers: usize| {
        CampaignConfig::nightly()
            .seeds_per_unit(budget)
            .workers(workers)
            .shards(4)
            .detectors(vec![DetectorChoice::Hybrid])
            .strategies(vec![strategy])
    };
    let base_seed = arm_cfg(Strategy::Random, 1).base_seed;
    println!(
        "== scheduler ablation: {} units × {budget} executions per arm ==",
        units.len()
    );

    let mut arms: Vec<(&str, CampaignResult, Vec<usize>)> = Vec::new();
    for (label, strategy, adaptive) in [
        ("random", Strategy::Random, false),
        ("pct", Strategy::Pct { depth: 3 }, false),
        ("guided", Strategy::Random, true),
    ] {
        let campaign = Campaign::over_units(arm_cfg(strategy, args.workers), units.to_vec());
        let result = if adaptive {
            campaign.run_adaptive()
        } else {
            campaign.run()
        };
        let curve = per_exec_curve(&result, base_seed, budget);
        arms.push((label, result, curve));
    }

    // Convergence panel: unique races known after each arm has spent the
    // checkpoint's executions in every unit.
    let checkpoints: Vec<usize> = [1, budget / 8, budget / 4, budget / 2, budget]
        .into_iter()
        .filter(|&e| e >= 1)
        .collect();
    print!("   {:<8}", "execs");
    for &e in &checkpoints {
        print!(" {e:>7}");
    }
    println!("   unique · novel sigs · mutated runs");
    for (label, result, curve) in &arms {
        print!("   {label:<8}");
        for &e in &checkpoints {
            print!(" {:>7}", curve[e - 1]);
        }
        println!(
            "   {:>6} · {:>10} · {:>12}",
            result.batch.len(),
            result.obs.snapshot.counter("explore.novel_signatures"),
            result.obs.snapshot.counter("explore.mutated_runs"),
        );
    }

    // Executions-to-parity: how early the guided arm matches the random
    // baseline's final unique-race yield.
    let target = arms[0].2.last().copied().unwrap_or(0);
    let parity = arms[2].2.iter().position(|&u| u >= target).map(|e| e + 1);
    match parity {
        Some(p) => println!(
            "   guided matched random's {target} unique races after {p}/{budget} executions per unit (ratio {:.3})",
            p as f64 / budget as f64
        ),
        None => println!("   guided never reached random's {target} unique races"),
    }

    // Worker placement must not leak into the adaptive mode's output:
    // identical digests at 1, 4, and 8 workers, exported for CI to gate.
    let digests: Vec<(usize, u64)> = [1usize, 4, 8]
        .into_iter()
        .map(|w| {
            let r = Campaign::over_units(arm_cfg(Strategy::Random, w), units.to_vec())
                .run_adaptive();
            (w, r.digest64())
        })
        .collect();

    let mut s = String::new();
    let _ = write!(
        s,
        r#"{{"budget_per_unit":{budget},"units":{},"target_unique":{target}"#,
        units.len()
    );
    match parity {
        Some(p) => {
            let _ = write!(
                s,
                r#","guided_parity_exec":{p},"parity_ratio":{:.4}"#,
                p as f64 / budget as f64
            );
        }
        None => s.push_str(r#","guided_parity_exec":null,"parity_ratio":null"#),
    }
    s.push_str(r#","guided_digest_by_workers":{"#);
    for (i, (w, d)) in digests.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, r#""{w}":"0x{d:016x}""#);
    }
    s.push_str(r#"},"arms":["#);
    for (i, (label, result, curve)) in arms.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            r#"{{"label":"{label}","total_runs":{},"racy_runs":{},"unique_races":{},"novel_signatures":{},"mutated_runs":{},"convergence":["#,
            result.total_runs(),
            result.racy_runs(),
            result.batch.len(),
            result.obs.snapshot.counter("explore.novel_signatures"),
            result.obs.snapshot.counter("explore.mutated_runs"),
        );
        for (j, u) in curve.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "{u}");
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

/// The `--replay` benchmark: the same matrix driven twice — once
/// executing every `(program, seed, strategy, detector)` cell live, once
/// executing each `(program, seed, strategy)` a single time under a trace
/// recorder and fanning the trace through all three detectors offline.
/// Both paths must agree bit-for-bit on their deterministic output; the
/// execute-once path wins on wall clock because scheduling dominates
/// analysis, and this run measures by how much.
fn run_replay_bench(args: &Args, units: Vec<CampaignUnit>) {
    let out = args.out.clone().unwrap_or_else(|| "BENCH_replay.json".to_string());
    let config = CampaignConfig::nightly()
        .seeds_per_unit(args.seeds)
        .workers(args.workers)
        .shards(2 * args.workers)
        .detectors(DetectorChoice::all().to_vec())
        .strategies(vec![Strategy::Random, Strategy::Pct { depth: 2 }]);
    let campaign = Campaign::over_units(config.clone(), units);
    let execs = campaign.exec_len();
    println!(
        "== replay campaign: {} units × {} seeds × {} strategies → {} executions fanned through {} detectors = {} analyses ==",
        campaign.unit_count(),
        config.seeds_per_unit,
        config.strategies.len(),
        execs,
        config.detectors.len(),
        campaign.matrix_len(),
    );

    let baseline = campaign.run();
    println!(
        "execute-per-detector: {} runs in {:.1} ms ({:.0} runs/s)",
        baseline.total_runs(),
        baseline.wall.as_secs_f64() * 1e3,
        baseline.throughput_rps(),
    );

    let replayed = campaign.run_replay();
    let stats = replayed.replay.expect("replay campaign carries stats");
    println!(
        "execute-once:         {} analyses in {:.1} ms ({:.0} runs/s) from {} executions",
        replayed.total_runs(),
        replayed.wall.as_secs_f64() * 1e3,
        replayed.throughput_rps(),
        stats.executions,
    );
    log_skips(&replayed);
    println!(
        "   traces: {} events, {:.1} KiB total ({} B avg, {} B max) · record {:.1} ms · replay {:.1} ms",
        stats.trace_events,
        stats.trace_bytes_total as f64 / 1024.0,
        stats.avg_trace_bytes(),
        stats.trace_bytes_max,
        stats.record_wall.as_secs_f64() * 1e3,
        stats.replay_wall.as_secs_f64() * 1e3,
    );

    assert_eq!(
        replayed.deterministic_digest(),
        baseline.deterministic_digest(),
        "replay campaign must reproduce the live campaign bit-for-bit"
    );
    assert_eq!(replayed.batch.fingerprints(), baseline.batch.fingerprints());
    assert_eq!(
        replayed.obs.timeline_json(),
        baseline.obs.timeline_json(),
        "the exported timeline must be byte-identical live vs replay"
    );
    export_obs(args, &replayed.obs);

    let speedup = baseline.wall.as_secs_f64() / replayed.wall.as_secs_f64().max(1e-9);
    println!(
        "speedup: {speedup:.2}× runs/sec over the per-detector baseline (digests agree)"
    );

    let json = format!(
        concat!(
            r#"{{"suite":"{}","seeds_per_unit":{},"units":{},"detectors":{},"executions":{},"#,
            r#""replays":{},"trace_events":{},"trace_bytes_total":{},"trace_bytes_max":{},"#,
            r#""trace_bytes_avg":{},"record_wall_ms":{:.3},"replay_wall_ms":{:.3},"#,
            r#""speedup":{:.3},"results":[{},{}]}}"#
        ),
        json_escape(&args.suite),
        config.seeds_per_unit,
        campaign.unit_count(),
        config.detectors.len(),
        stats.executions,
        stats.replays,
        stats.trace_events,
        stats.trace_bytes_total,
        stats.trace_bytes_max,
        stats.avg_trace_bytes(),
        stats.record_wall.as_secs_f64() * 1e3,
        stats.replay_wall.as_secs_f64() * 1e3,
        speedup,
        result_json(&baseline, "execute-per-detector"),
        result_json(&replayed, "execute-once-replay"),
    );
    std::fs::write(&out, format!("{json}\n")).expect("write JSON summary");
    println!("wrote {out}");
}

fn main() {
    let args = parse_args();
    let units = match args.suite.as_str() {
        "pattern" => pattern_suite(true),
        "corpus" => corpus_suite(),
        "all" => {
            let mut u = pattern_suite(true);
            u.extend(corpus_suite());
            u
        }
        other => panic!("--suite must be pattern|corpus|all, got {other}"),
    };
    if args.replay {
        run_replay_bench(&args, units);
        return;
    }
    let config = CampaignConfig::nightly()
        .seeds_per_unit(args.seeds)
        .workers(args.workers)
        .shards(2 * args.workers)
        .detectors(vec![DetectorChoice::Hybrid])
        .strategies(vec![Strategy::Random, Strategy::Pct { depth: 2 }]);
    let campaign = Campaign::over_units(config.clone(), units.clone());

    println!("== campaign: {} units × {} seeds × {} strategies × {} detectors = {} runs ==",
        campaign.unit_count(),
        config.seeds_per_unit,
        config.strategies.len(),
        config.detectors.len(),
        campaign.matrix_len(),
    );
    println!("   workers {} · shards {}", config.workers, config.shards);

    let result = campaign.run();
    println!(
        "parallel: {} runs in {:.1} ms ({:.0} runs/s), {} racy runs, {} unique races",
        result.total_runs(),
        result.wall.as_secs_f64() * 1e3,
        result.throughput_rps(),
        result.racy_runs(),
        result.batch.len(),
    );
    log_skips(&result);
    println!(
        "   hot path: {} events ({:.2} M events/s) · depot ≤ {} stacks/run · shadow ≤ {} words/run",
        result.total_events(),
        result.events_per_sec() / 1e6,
        result.max_depot_stacks(),
        result.peak_shadow_words(),
    );
    for st in result.shard_stats() {
        println!(
            "   shard {:>2}: {:>4} runs, {:>8.1} ms total, {:>6.2} ms max",
            st.shard,
            st.runs,
            st.total.as_secs_f64() * 1e3,
            st.max.as_secs_f64() * 1e3,
        );
    }
    let conv = result.convergence();
    if let Some(&(_, total)) = conv.last() {
        // Where the campaign reached 50% / 90% / 100% of its final yield —
        // the §3.2 flakiness story quantified.
        for frac in [0.5, 0.9, 1.0] {
            let target = (total as f64 * frac).ceil() as usize;
            if let Some(&(runs, _)) = conv.iter().find(|&&(_, u)| u >= target) {
                println!(
                    "   {:>3.0}% of races found after {runs} runs ({:.1}% of the campaign)",
                    frac * 100.0,
                    100.0 * runs as f64 / result.total_runs() as f64
                );
            }
        }
    }

    // File the deduped batch into the intake service (day 0), with the
    // intake stage reporting into its own registry.
    let intake_registry = Arc::new(MetricsRegistry::new());
    let service = IntakeService::builder()
        .workers(1)
        .observed(intake_registry.clone())
        .start()
        .expect("fresh service starts");
    let outcomes = result
        .file_into_service(&service, 0)
        .expect("service accepts the batch");
    println!(
        "intake: filed {} tasks from {} deduped races ({} raw reports)",
        service.with_tracker(|t| t.total_filed()),
        outcomes.len(),
        result.batch.raw_reports(),
    );

    // One BENCH_obs.json for the whole turn: fold the intake stage's
    // counters into the campaign's snapshot.
    let mut obs = result.obs.clone();
    obs.snapshot.merge(&intake_registry.snapshot());
    export_obs(&args, &obs);

    let mut sections = vec![result_json(&result, "parallel")];
    if args.serial_baseline {
        let serial = campaign.run_serial();
        println!(
            "serial:   {} runs in {:.1} ms ({:.0} runs/s) — speedup {:.2}×",
            serial.total_runs(),
            serial.wall.as_secs_f64() * 1e3,
            serial.throughput_rps(),
            serial.wall.as_secs_f64() / result.wall.as_secs_f64().max(1e-9),
        );
        assert_eq!(
            serial.deterministic_digest(),
            result.deterministic_digest(),
            "serial and parallel campaigns must agree"
        );
        sections.push(result_json(&serial, "serial"));
    }

    let ablation = if args.ablation_budget > 0 {
        format!(r#","ablation":{}"#, run_ablation(&args, &units))
    } else {
        String::new()
    };

    let json = format!(
        r#"{{"suite":"{}","seeds_per_unit":{},"units":{},"results":[{}]{}}}"#,
        json_escape(&args.suite),
        config.seeds_per_unit,
        campaign.unit_count(),
        sections.join(","),
        ablation,
    );
    let out = args.out.unwrap_or_else(|| "BENCH_campaign.json".to_string());
    std::fs::write(&out, format!("{json}\n")).expect("write JSON summary");
    println!("wrote {out}");
}
