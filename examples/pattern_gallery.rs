//! The full §4 pattern gallery: every listing and Table 2/3 shape, run
//! under the explorer, with detection rates for the racy variant and a
//! cleanliness check for the fixed one.
//!
//! ```sh
//! cargo run --release --example pattern_gallery
//! ```

use grs::classify;
use grs::patterns::registry;
use grs::prelude::*;

fn main() {
    let explorer = Explorer::new(ExploreConfig::quick().runs(60));
    println!(
        "{:<34} {:<8} {:>6} {:>9} {:>7} {:<30}",
        "pattern", "listing", "racy%", "fixed-ok", "class", "category"
    );
    println!("{}", "-".repeat(100));
    for pattern in registry() {
        let racy = explorer.explore(&pattern.racy_program());
        let fixed = explorer.explore(&pattern.fixed_program());
        let classified = racy
            .unique_races
            .first()
            .map(|r| {
                if classify(r) == pattern.category {
                    "ok"
                } else {
                    "MISS"
                }
            })
            .unwrap_or("n/a");
        println!(
            "{:<34} {:<8} {:>5.0}% {:>9} {:>7} {:<30}",
            pattern.id,
            pattern
                .listing
                .map_or_else(|| "-".to_string(), |l| format!("L{l}")),
            racy.detection_rate() * 100.0,
            if fixed.found_race() { "FLAGGED" } else { "clean" },
            classified,
            pattern.category.description(),
        );
    }

    println!("\nSample report (Listing 5 — the slice-header race):");
    let listing5 = registry()
        .into_iter()
        .find(|p| p.listing == Some(5))
        .expect("listing 5 in corpus");
    let result = explorer.explore(&listing5.racy_program());
    if let Some(race) = result.unique_races.first() {
        println!("{race}");
    }
}
