//! Quickstart: write a racy Go-style program, run it under the
//! deterministic runtime, and let the TSan-style detector catch the race.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use grs::detector::Tsan;
use grs::prelude::*;

fn main() {
    // Listing 1 of the paper: the loop index variable is one variable,
    // captured by reference into every goroutine.
    let program = Program::new("loop_capture_quickstart", |ctx| {
        let _main = ctx.frame("ProcessJobs");
        let jobs = [10i64, 20, 30];
        let job = ctx.cell("job", 0i64);
        for &j in &jobs {
            ctx.write(&job, j); // the loop advances `job`...
            let job = job.clone(); // ...which the closure captured
            ctx.go("worker", move |ctx| {
                let _f = ctx.frame("ProcessJob");
                let value = ctx.read(&job); // concurrent read!
                let _ = value;
            });
        }
    });

    // One run under one seed: the race may or may not manifest — exactly
    // the nondeterminism that §3.2 of the paper wrestles with.
    println!("== single runs (detection is schedule-dependent) ==");
    for seed in 0..5 {
        let (_, tsan) = Runtime::new(RunConfig::with_seed(seed)).run(&program, Tsan::new());
        println!(
            "  seed {seed}: {}",
            if tsan.reports().is_empty() {
                "no race observed".to_string()
            } else {
                format!("{} race report(s)", tsan.reports().len())
            }
        );
    }

    // The explorer reruns across many seeds and aggregates unique races.
    let result = Explorer::new(ExploreConfig::quick().runs(50)).explore(&program);
    println!("\n== explorer: {} runs ==", result.runs);
    println!(
        "  detection rate: {:.0}% of runs",
        result.detection_rate() * 100.0
    );
    println!("  unique races: {}", result.unique_races.len());
    for race in &result.unique_races {
        println!("\n{race}");
    }
}
