//! Hot-path throughput probe: the event-dense FastTrack workload through
//! both layers the flat shadow rewrite optimizes — the live campaign
//! (schedule + instrument + detect) and the batch-replay loop (decode the
//! recorded `.grtrace` once, then re-analyze the struct-of-arrays buffer
//! repeatedly). The replay figure is the PR 7 headline: the ISSUE's
//! acceptance bound is ≥10× the live-campaign baseline.
//!
//! ```sh
//! cargo run --release --example bench_events -- [--mode flat|oracle]
//!     [--seeds N] [--passes N] [--out PATH]
//! ```
//!
//! `--mode oracle` reruns the same probe on the legacy HashMap-backed
//! detectors and requires building with `--features oracle`; the emitted
//! `digest` must match the flat run bit for bit.

use grs::hotpath_probe;

struct Args {
    oracle: bool,
    seeds: usize,
    passes: u32,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        oracle: false,
        seeds: 32,
        passes: 256,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--mode" => {
                args.oracle = match value("--mode").as_str() {
                    "flat" => false,
                    "oracle" => true,
                    other => panic!("unknown mode {other} (expected flat|oracle)"),
                }
            }
            "--seeds" => args.seeds = value("--seeds").parse().expect("seeds: integer"),
            "--passes" => args.passes = value("--passes").parse().expect("passes: integer"),
            "--out" => args.out = Some(value("--out")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let probe = hotpath_probe(args.oracle, args.seeds, args.passes);

    println!("== hot-path probe: dense unit, FastTrack, mode={} ==", probe.mode);
    println!(
        "live campaign : {} runs, {} events, {:.2}M events/sec",
        probe.campaign_runs,
        probe.campaign_events,
        probe.campaign_events_per_sec / 1e6,
    );
    println!(
        "batch replay  : {} passes, {} events, {:.2}M events/sec (fill rate {:.3})",
        probe.replay_passes,
        probe.replay_events,
        probe.replay_events_per_sec / 1e6,
        probe.batch_fill_rate,
    );
    println!(
        "footprint     : shadow<={} words, depot<={} stacks, digest={:#018x}",
        probe.peak_shadow_words, probe.depot_stacks, probe.digest,
    );

    if let Some(out) = args.out {
        let json = format!(
            concat!(
                r#"{{"workload":"dense","mode":"{}","campaign_runs":{},"#,
                r#""campaign_events":{},"campaign_events_per_sec":{:.0},"#,
                r#""replay_passes":{},"replay_events":{},"replay_events_per_sec":{:.0},"#,
                r#""peak_shadow_words":{},"depot_stacks":{},"batch_fill_rate":{:.4},"#,
                r#""digest":"{:#018x}"}}"#
            ),
            probe.mode,
            probe.campaign_runs,
            probe.campaign_events,
            probe.campaign_events_per_sec,
            probe.replay_passes,
            probe.replay_events,
            probe.replay_events_per_sec,
            probe.peak_shadow_words,
            probe.depot_stacks,
            probe.batch_fill_rate,
            probe.digest,
        );
        std::fs::write(&out, format!("{json}\n")).expect("write JSON summary");
        println!("wrote {out}");
    }
}
