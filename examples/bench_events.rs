//! Hot-path throughput probe: a serial FastTrack campaign over an
//! event-dense unit (≈8 k access events per run, mostly sequential so the
//! detector — not goroutine setup — dominates). This is the workload the
//! interned-stack event model and reusable detector arena optimize; the
//! refactor measured ≈1.9× runs/sec here against the materialized-stack
//! baseline.
//!
//! ```sh
//! cargo run --release --example bench_events
//! ```

use std::time::Instant;

use grs::prelude::*;

/// A dense sequential compute phase (2 000 read-modify-writes across 8
/// cells under a named frame, so every event carries a two-deep stack)
/// followed by a small channel-joined concurrent tail that exercises the
/// happens-before machinery and read-map pruning.
fn dense() -> Program {
    Program::new("dense", |ctx| {
        let _f = ctx.frame("ComputePhase");
        let cells: Vec<_> = (0..8).map(|i| ctx.cell(&format!("c{i}"), 0i64)).collect();
        for round in 0..250i64 {
            for cell in &cells {
                ctx.update(cell, |v| v + round);
            }
        }
        let x = ctx.cell("x", 0i64);
        let done = ctx.chan::<()>("done", 2);
        for _ in 0..2 {
            let (x, done) = (x.clone(), done.clone());
            ctx.go("w", move |ctx| {
                let _ = ctx.read(&x);
                done.send(ctx, ());
            });
        }
        for _ in 0..2 {
            let _ = done.recv(ctx);
        }
        ctx.write(&x, 1);
    })
}

fn main() {
    let units = vec![CampaignUnit {
        name: "dense".into(),
        program: dense(),
        expected_racy: Some(false),
    }];
    let config = CampaignConfig::smoke()
        .seeds_per_unit(32)
        .workers(1)
        .detectors(vec![DetectorChoice::FastTrack])
        .strategies(vec![Strategy::Random]);
    let campaign = Campaign::over_units(config, units);
    let _ = campaign.run(); // warm up the page cache and branch predictors
    let started = Instant::now();
    let r = campaign.run();
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(r.racy_runs(), 0, "the dense unit is race-free");
    println!(
        "runs={} wall_ms={:.1} runs_per_sec={:.0} events={} events_per_sec={:.2}M depot<={} shadow<={}",
        r.total_runs(),
        secs * 1e3,
        r.total_runs() as f64 / secs,
        r.total_events(),
        r.total_events() as f64 / secs / 1e6,
        r.max_depot_stacks(),
        r.peak_shadow_words(),
    );
}
