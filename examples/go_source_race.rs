//! Run real Go source end to end: parse with the Go-lite frontend, lint it
//! statically, execute it on the instrumented runtime, and race it
//! dynamically — the `go test -race` experience for a paper listing.
//!
//! ```sh
//! cargo run --example go_source_race
//! ```

use grs::golite::{lint_file, parse_file};
use grs::prelude::*;
use grs_interp::Interp;

const LISTING_6: &str = r#"
package main

func getOrder(uuid int) string {
    if uuid > 1 {
        return "failed"
    }
    return ""
}

func main() {
    uuids := []int{1, 2, 3}
    errMap := make(map[int]string)
    done := make(chan bool, 3)
    for _, uuid := range uuids {
        go func(uuid int) {
            err := getOrder(uuid)
            if err != "" {
                errMap[uuid] = err
            }
            done <- true
        }(uuid)
    }
    <-done
    <-done
    <-done
    _ = len(errMap)
}
"#;

fn main() {
    println!("== the Go source under test (Listing 6's shape) ==");
    println!("{LISTING_6}");

    // 1. Static analysis: the Go-lite lints.
    let file = parse_file(LISTING_6).expect("parses");
    println!("== static lints ==");
    let findings = lint_file(&file);
    if findings.is_empty() {
        println!("  (none)");
    }
    for f in &findings {
        println!("  {f}");
    }

    // 2. Dynamic analysis: interpret on the instrumented runtime, explore
    //    schedules, detect.
    let interp = Interp::from_source(LISTING_6).expect("compiles");
    let program = interp.program("listing6_from_source", "main");
    let result = Explorer::new(ExploreConfig::quick().runs(60)).explore(&program);
    println!("\n== dynamic detection ({} runs) ==", result.runs);
    println!(
        "  detection rate: {:.0}%  unique races: {}",
        result.detection_rate() * 100.0,
        result.unique_races.len()
    );
    for race in result.unique_races.iter().take(2) {
        println!("\n{race}");
    }
}
