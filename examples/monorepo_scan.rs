//! Table 1: generate the synthetic Go and Java monorepos, scan them, and
//! print the construct-density table with the paper's ratios.
//!
//! ```sh
//! cargo run --release --example monorepo_scan
//! ```

use grs::experiments::table1;

fn main() {
    // 0.002 => ~92K lines of Go (AST-scanned) and ~380K lines of Java
    // (text-scanned), enough for stable densities.
    let table = table1(0.002, 7);
    println!("== Table 1 (synthetic monorepos, paper-calibrated densities) ==\n");
    println!("{}", table.render());
    println!("Ratios (Go/Java per MLoC, paper values in parentheses):");
    println!(
        "  concurrency creation : {:.2}x  (~1.14x, \"not significantly different\")",
        table.creation_ratio()
    );
    println!("  point-to-point sync  : {:.2}x  (3.7x)", table.p2p_ratio());
    println!("  group communication  : {:.2}x  (1.9x)", table.group_ratio());
    println!("  map constructs       : {:.2}x  (1.34x)", table.map_ratio());
}
