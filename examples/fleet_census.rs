//! Figure 1: the fleet concurrency census as an ASCII CDF.
//!
//! ```sh
//! cargo run --example fleet_census
//! ```

use grs::experiments::figure1;
use grs::fleet::Language;

fn main() {
    let fleet = figure1(0.05, 11);
    println!("== Figure 1: cumulative distribution of per-process concurrency ==\n");
    let levels: Vec<u32> = (3..=17).map(|p| 1u32 << p).collect(); // 8 .. 131072
    print!("{:<8}", "level");
    for lang in Language::all() {
        print!("{:>9}", lang.to_string());
    }
    println!();
    for &level in &levels {
        print!("{:<8}", level);
        for lang in Language::all() {
            let f = fleet.cdf(lang).fraction_at(level);
            print!("{:>8.0}%", f * 100.0);
        }
        println!();
    }
    println!("\nMedians (paper: NodeJS 16, Python 16, Java 256, Go 2048):");
    for lang in Language::all() {
        let cdf = fleet.cdf(lang);
        println!(
            "  {:<7} median {:>6}   p90 {:>6}   max {:>7}   ({} processes)",
            lang.to_string(),
            cdf.median(),
            cdf.quantile(0.9),
            cdf.max(),
            cdf.sample_size()
        );
    }
    let ratio = f64::from(fleet.cdf(Language::Go).median())
        / f64::from(fleet.cdf(Language::Java).median());
    println!("\nGo exposes {ratio:.0}x the runtime concurrency of Java (paper: ~8x).");
}
