//! The six-month deployment campaign: Figures 3 and 4 as ASCII charts plus
//! the §3.5 headline statistics.
//!
//! ```sh
//! cargo run --example deployment_campaign
//! ```

use grs::experiments::figure3_figure4;

fn spark(values: &[u32], width: usize) -> String {
    let max = values.iter().copied().max().unwrap_or(1).max(1);
    let step = (values.len() / width.max(1)).max(1);
    values
        .iter()
        .step_by(step)
        .map(|&v| {
            let bars = ['.', ':', '-', '=', '+', '*', '#', '@'];
            let idx = (v as usize * (bars.len() - 1)) / max as usize;
            bars[idx]
        })
        .collect()
}

fn main() {
    let (result, stats) = figure3_figure4(42);

    println!("== Figure 3: outstanding race tasks vs time ==");
    let outstanding: Vec<u32> = result.daily.iter().map(|d| d.outstanding).collect();
    println!("  {}", spark(&outstanding, 90));
    println!(
        "  day 10: {:>4}   day 70: {:>4} (shepherded drop)   day 115: {:>4}   day 179: {:>4} (post-shepherding rise)",
        outstanding[10], outstanding[70], outstanding[115], outstanding[179]
    );

    println!("\n== Figure 4: cumulative created vs resolved ==");
    let created: Vec<u32> = result.daily.iter().map(|d| d.filed_cum).collect();
    let resolved: Vec<u32> = result.daily.iter().map(|d| d.fixed_cum).collect();
    println!("  created : {}", spark(&created, 90));
    println!("  resolved: {}", spark(&resolved, 90));
    let surge = (result.daily[105].filed_cum - result.daily[90].filed_cum) as f64 / 15.0;
    let pre = (result.daily[60].filed_cum - result.daily[40].filed_cum) as f64 / 20.0;
    println!("  creation rate before floodgate: {pre:.1}/day; during July surge: {surge:.1}/day");

    println!("\n== §3.5 headline statistics (paper values in parentheses) ==");
    println!("  races detected : {:>5}  (~2000)", stats.total_detected);
    println!("  races fixed    : {:>5}  (1011)", stats.total_fixed);
    println!("  engineers      : {:>5}  (210)", stats.unique_engineers);
    println!("  unique patches : {:>5}  (790)", stats.unique_patches);
    println!(
        "  root-cause uniqueness: {:.0}%  (~78%)",
        result.unique_root_cause_ratio() * 100.0
    );
    println!("  new reports/day at steady state: {:.1}  (~5)", stats.new_per_day);
}
