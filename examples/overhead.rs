//! §3.5 detector-overhead reproduction: the paper reports that running unit
//! tests under the race detector costs ≈4× test time, which is why the
//! deployment runs detection as a nightly batch instead of gating every
//! pull request. This example measures the same ratio on the model: the
//! overhead workload (instrumentation-dense compute + a channel/lock
//! pipeline) under [`NullMonitor`] versus the FastTrack-based TSan-style
//! detector, and emits a machine-readable `BENCH_overhead.json`.
//!
//! ```sh
//! cargo run --release --example overhead -- [--runs N] [--out PATH]
//! ```
//!
//! [`NullMonitor`]: grs::runtime::NullMonitor

use grs::detector::Tsan;
use grs::runtime::{RunConfig, Runtime};
use grs::{overhead_probe, overhead_workload};

struct Args {
    runs: u32,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        runs: 200,
        out: "BENCH_overhead.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--runs" => args.runs = value("--runs").parse().expect("runs: integer"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let workload = overhead_workload();

    // Per-run event volume, measured under the detector (the NullMonitor
    // baseline skips event construction entirely — that skip *is* the
    // baseline, so the instrumented run is the representative event count).
    let (outcome, _) = Runtime::new(RunConfig::with_seed(1)).run(&workload, Tsan::new());
    let events_per_run = outcome.stats.events_dispatched;

    let probe = overhead_probe(&workload, args.runs, 1);
    let ns_per_event_base = probe.baseline_ns as f64 / events_per_run.max(1) as f64;
    let ns_per_event_det = probe.detector_ns as f64 / events_per_run.max(1) as f64;

    println!("== §3.5 overhead probe: {} runs of overhead_workload ==", args.runs);
    println!(
        "baseline (NullMonitor): {:>9} ns/run  ({:.1} ns/event over {} events)",
        probe.baseline_ns, ns_per_event_base, events_per_run
    );
    println!(
        "detector (TSan hybrid): {:>9} ns/run  ({:.1} ns/event)",
        probe.detector_ns, ns_per_event_det
    );
    println!(
        "slowdown: {:.2}×  (the paper's deployment observed ≈4×, motivating nightly batching)",
        probe.ratio()
    );

    let json = format!(
        r#"{{"workload":"overhead_workload","runs":{},"events_per_run":{},"baseline_ns_per_run":{},"detector_ns_per_run":{},"baseline_ns_per_event":{:.2},"detector_ns_per_event":{:.2},"overhead_ratio":{:.3}}}"#,
        args.runs,
        events_per_run,
        probe.baseline_ns,
        probe.detector_ns,
        ns_per_event_base,
        ns_per_event_det,
        probe.ratio(),
    );
    std::fs::write(&args.out, format!("{json}\n")).expect("write JSON summary");
    println!("wrote {}", args.out);
}
