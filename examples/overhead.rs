//! §3.5 detector-overhead reproduction: the paper reports that running unit
//! tests under the race detector costs ≈4× test time, which is why the
//! deployment runs detection as a nightly batch instead of gating every
//! pull request. This example measures the same ratio on the model: the
//! overhead workload (instrumentation-dense compute + a channel/lock
//! pipeline) under [`NullMonitor`] versus the FastTrack-based TSan-style
//! detector, and emits a machine-readable `BENCH_overhead.json`.
//!
//! It also emits the PR 7 **hot-path** section: the event-dense FastTrack
//! workload measured on the live campaign versus the flat-shadow batch
//! replay loop. Built with `--features oracle`, the section additionally
//! runs the legacy HashMap detectors as a baseline and reports the
//! `speedup` ratio (flat batch replay over legacy live campaign — the
//! ISSUE's ≥10× acceptance bound) plus both semantic digests, which must
//! be equal.
//!
//! ```sh
//! cargo run --release --example overhead -- [--runs N] [--out PATH]
//! ```
//!
//! [`NullMonitor`]: grs::runtime::NullMonitor

use grs::detector::Tsan;
use grs::runtime::{RunConfig, Runtime};
use grs::{hotpath_probe, overhead_probe, overhead_workload, HotpathProbe};

struct Args {
    runs: u32,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        runs: 200,
        out: "BENCH_overhead.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--runs" => args.runs = value("--runs").parse().expect("runs: integer"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let workload = overhead_workload();

    // Per-run event volume, measured under the detector (the NullMonitor
    // baseline skips event construction entirely — that skip *is* the
    // baseline, so the instrumented run is the representative event count).
    let (outcome, _) = Runtime::new(RunConfig::with_seed(1)).run(&workload, Tsan::new());
    let events_per_run = outcome.stats.events_dispatched;

    let probe = overhead_probe(&workload, args.runs, 1);
    let ns_per_event_base = probe.baseline_ns as f64 / events_per_run.max(1) as f64;
    let ns_per_event_det = probe.detector_ns as f64 / events_per_run.max(1) as f64;

    println!("== §3.5 overhead probe: {} runs of overhead_workload ==", args.runs);
    println!(
        "baseline (NullMonitor): {:>9} ns/run  ({:.1} ns/event over {} events)",
        probe.baseline_ns, ns_per_event_base, events_per_run
    );
    println!(
        "detector (TSan hybrid): {:>9} ns/run  ({:.1} ns/event)",
        probe.detector_ns, ns_per_event_det
    );
    println!(
        "slowdown: {:.2}×  (the paper's deployment observed ≈4×, motivating nightly batching)",
        probe.ratio()
    );

    let hotpath = hotpath_section();

    let json = format!(
        r#"{{"workload":"overhead_workload","runs":{},"events_per_run":{},"baseline_ns_per_run":{},"detector_ns_per_run":{},"baseline_ns_per_event":{:.2},"detector_ns_per_event":{:.2},"overhead_ratio":{:.3},"hotpath":{}}}"#,
        args.runs,
        events_per_run,
        probe.baseline_ns,
        probe.detector_ns,
        ns_per_event_base,
        ns_per_event_det,
        probe.ratio(),
        hotpath,
    );
    std::fs::write(&args.out, format!("{json}\n")).expect("write JSON summary");
    println!("wrote {}", args.out);
}

fn probe_json(p: &HotpathProbe) -> String {
    format!(
        concat!(
            r#"{{"mode":"{}","campaign_events_per_sec":{:.0},"#,
            r#""replay_events_per_sec":{:.0},"peak_shadow_words":{},"#,
            r#""batch_fill_rate":{:.4},"digest":"{:#018x}"}}"#
        ),
        p.mode,
        p.campaign_events_per_sec,
        p.replay_events_per_sec,
        p.peak_shadow_words,
        p.batch_fill_rate,
        p.digest,
    )
}

/// The PR 7 hot-path section: flat live-campaign and batch-replay
/// throughput on the dense unit, plus — when the legacy oracle is
/// compiled in — the baseline numbers, the flat-batch-over-legacy-live
/// `speedup`, and the digest pair CI asserts equal.
fn hotpath_section() -> String {
    let flat = hotpath_probe(false, 16, 128);
    println!(
        "hot path (flat): live {:.2}M events/sec, batch replay {:.2}M events/sec, shadow<={}",
        flat.campaign_events_per_sec / 1e6,
        flat.replay_events_per_sec / 1e6,
        flat.peak_shadow_words,
    );
    if !cfg!(feature = "oracle") {
        return format!(
            r#"{{"flat":{},"oracle":null,"speedup":null,"digests_match":null}}"#,
            probe_json(&flat),
        );
    }
    let oracle = hotpath_probe(true, 16, 128);
    let speedup = flat.speedup_over(&oracle);
    println!(
        "hot path (oracle baseline): live {:.2}M events/sec -> speedup {:.1}x, digests {}",
        oracle.campaign_events_per_sec / 1e6,
        speedup,
        if flat.digest == oracle.digest { "match" } else { "DIVERGE" },
    );
    format!(
        r#"{{"flat":{},"oracle":{},"speedup":{:.2},"digests_match":{}}}"#,
        probe_json(&flat),
        probe_json(&oracle),
        speedup,
        flat.digest == oracle.digest,
    )
}
