//! `golint` — the static race lint engine as a command-line driver.
//!
//! Lints the Go-source rendition corpus (every §4 bug shape, racy form)
//! and a synthetic monorepo, printing findings grouped by rule in the
//! paper's Table 2 / Table 3 order, then the per-rule totals at
//! monorepo scale.
//!
//! ```sh
//! cargo run --release --example golint            # compiler-style lines
//! cargo run --release --example golint -- --json  # machine-readable
//! cargo run --release --example golint -- --sarif # SARIF 2.1.0 log
//! cargo run --release --example golint -- --bench-out BENCH_static.json
//! ```
//!
//! `--bench-out PATH` additionally runs the static-triage benchmark
//! (rank campaign programs by lint findings, count executions to the
//! first dynamically-confirmed race) and writes the combined scan +
//! triage metrics to `PATH`.

use grs::corpus::golint::lint_sources;
use grs::corpus::{golint, GoCorpus, GoCorpusSpec};
use grs::fleet::triage::{run_triage, TriageConfig};
use grs::golite::{diag, Rule};
use grs::patterns::gosrc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let sarif = args.iter().any(|a| a == "--sarif");
    let bench_out = args
        .iter()
        .position(|a| a == "--bench-out")
        .and_then(|i| args.get(i + 1).cloned());

    // The rendition corpus: one racy file per bug shape.
    let renditions = gosrc::renditions();
    let files: Vec<(String, &str)> = renditions
        .iter()
        .map(|r| (format!("corpus/{}.go", r.pattern_id), r.racy))
        .collect();
    let report = lint_sources(files.iter().map(|(p, s)| (p.as_str(), *s)));

    if sarif {
        // Group the flat (path, finding) list back per file for the
        // SARIF artifact table.
        let mut per_file: Vec<(&str, Vec<grs::golite::Finding>)> = Vec::new();
        for (path, f) in &report.findings {
            match per_file.last_mut() {
                Some((p, v)) if *p == path.as_str() => v.push(f.clone()),
                _ => per_file.push((path.as_str(), vec![f.clone()])),
            }
        }
        let slices: Vec<(&str, &[grs::golite::Finding])> = per_file
            .iter()
            .map(|(p, v)| (*p, v.as_slice()))
            .collect();
        println!("{}", diag::sarif_json(slices));
        return;
    }
    if json {
        println!("{}", report.to_json());
        return;
    }

    println!("== findings by rule (Table 2 / Table 3 order) ==");
    for rule in Rule::ALL {
        let hits: Vec<_> = report
            .findings
            .iter()
            .filter(|(_, f)| f.rule == rule)
            .collect();
        println!(
            "\n{} {} — {} finding{}",
            rule.id(),
            rule,
            hits.len(),
            if hits.len() == 1 { "" } else { "s" },
        );
        for (path, f) in hits {
            println!("  {}", diag::render_line(path, f));
        }
    }

    // The same engine at monorepo scale.
    let spec = GoCorpusSpec::paper_scaled(0.001);
    let corpus = GoCorpus::generate(&spec, 42);
    let lines = corpus.lines();
    let monorepo = golint::lint_corpus(&corpus);
    println!("\n== synthetic monorepo scan ==");
    println!(
        "{} files, {} lines, {} findings ({:.0} per MLoC)",
        monorepo.files,
        lines,
        monorepo.total(),
        monorepo.per_mloc(lines),
    );
    for rule in Rule::ALL {
        let n = monorepo.count(rule);
        if n > 0 {
            println!("  {} {:<40} {n}", rule.id(), rule.to_string());
        }
    }

    if let Some(path) = bench_out {
        println!("\n== static triage benchmark ==");
        let outcome = run_triage(&TriageConfig::default());
        println!(
            "first race after {} executions triaged vs {} baseline (of {} specs)",
            outcome
                .triage_executions
                .map_or_else(|| "-".to_string(), |n| n.to_string()),
            outcome
                .baseline_executions
                .map_or_else(|| "-".to_string(), |n| n.to_string()),
            outcome.total_specs,
        );
        let rules_fired = report.per_rule.values().filter(|n| **n > 0).count();
        let bench = format!(
            concat!(
                "{{\"schema_version\":1,",
                "\"rendition_corpus\":{{\"files\":{},\"findings\":{},\"rules_fired\":{}}},",
                "\"monorepo\":{{\"files\":{},\"lines\":{},\"findings\":{},\"per_mloc\":{:.2}}},",
                "\"triage\":{}}}"
            ),
            report.files,
            report.total(),
            rules_fired,
            monorepo.files,
            lines,
            monorepo.total(),
            monorepo.per_mloc(lines),
            outcome.to_json(),
        );
        std::fs::write(&path, bench).expect("write bench output");
        println!("wrote {path}");
    }
}
