//! `golint` — the static race lint engine as a command-line driver.
//!
//! Lints the Go-source rendition corpus (every §4 bug shape, racy form)
//! and a synthetic monorepo, printing findings grouped by rule in the
//! paper's Table 2 / Table 3 order, then the per-rule totals at
//! monorepo scale.
//!
//! ```sh
//! cargo run --release --example golint          # compiler-style lines
//! cargo run --release --example golint -- --json  # machine-readable
//! ```

use grs::corpus::golint::lint_sources;
use grs::corpus::{golint, GoCorpus, GoCorpusSpec};
use grs::golite::{diag, Rule};
use grs::patterns::gosrc;

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    // The rendition corpus: one racy file per bug shape.
    let renditions = gosrc::renditions();
    let files: Vec<(String, &str)> = renditions
        .iter()
        .map(|r| (format!("corpus/{}.go", r.pattern_id), r.racy))
        .collect();
    let report = lint_sources(files.iter().map(|(p, s)| (p.as_str(), *s)));

    if json {
        println!("{}", report.to_json());
        return;
    }

    println!("== findings by rule (Table 2 / Table 3 order) ==");
    for rule in Rule::ALL {
        let hits: Vec<_> = report
            .findings
            .iter()
            .filter(|(_, f)| f.rule == rule)
            .collect();
        println!(
            "\n{} {} — {} finding{}",
            rule.id(),
            rule,
            hits.len(),
            if hits.len() == 1 { "" } else { "s" },
        );
        for (path, f) in hits {
            println!("  {}", diag::render_line(path, f));
        }
    }

    // The same engine at monorepo scale.
    let spec = GoCorpusSpec::paper_scaled(0.001);
    let corpus = GoCorpus::generate(&spec, 42);
    let lines = corpus.lines();
    let monorepo = golint::lint_corpus(&corpus);
    println!("\n== synthetic monorepo scan ==");
    println!(
        "{} files, {} lines, {} findings ({:.0} per MLoC)",
        monorepo.files,
        lines,
        monorepo.total(),
        monorepo.per_mloc(lines),
    );
    for rule in Rule::ALL {
        let n = monorepo.count(rule);
        if n > 0 {
            println!("  {} {:<40} {n}", rule.id(), rule.to_string());
        }
    }
}
