//! Intake-service soak: pre-records `.grtrace` frames from the pattern
//! gallery, then drives them through a served [`IntakeService`] in three
//! phases — sustained throughput over the in-process transport, a burst
//! overload that must observe explicit `Busy` backpressure at least once,
//! and a kill-and-restore cycle that snapshots the tracker, tears the
//! service down, rebuilds it from disk, and checks that no filed task was
//! lost and every re-submitted race is suppressed as a duplicate.
//!
//! Emits `BENCH_intake.json` for the CI gate:
//!
//! ```sh
//! cargo run --release --example soak -- [--duration-ms N] [--clients N]
//!     [--seeds N] [--out PATH] [--snapshot PATH]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use grs::deploy::service::{IntakeServer, IntakeService};
use grs::deploy::wire::{InProcConnector, InProcTransport, RequestFrame, ResponseFrame};
use grs::obs::MetricsRegistry;
use grs::runtime::{record, RunConfig};

/// Queue cap for the soak service: small enough that the burst phase can
/// overflow it (backpressure must be observable), large enough that the
/// sustained clients never trip it.
const QUEUE_DEPTH: usize = 8;
const SUSTAINED_CLIENTS: usize = 4;
const DEDUP_BUDGET_WORDS: usize = 1 << 16;

struct Args {
    duration_ms: u64,
    clients: usize,
    seeds: u64,
    out: String,
    snapshot: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        duration_ms: 600,
        clients: SUSTAINED_CLIENTS,
        seeds: 6,
        out: "BENCH_intake.json".to_string(),
        snapshot: std::env::temp_dir()
            .join("grs_soak_snapshot.bin")
            .to_string_lossy()
            .into_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--duration-ms" => {
                args.duration_ms = value("--duration-ms").parse().expect("duration: integer")
            }
            "--clients" => args.clients = value("--clients").parse().expect("clients: integer"),
            "--seeds" => args.seeds = value("--seeds").parse().expect("seeds: integer"),
            "--out" => args.out = value("--out"),
            "--snapshot" => args.snapshot = value("--snapshot"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Records one `.grtrace` per (pattern, seed) so the upload mix contains
/// both distinct races (fresh filings) and repeats (dedup hits).
fn record_frames(seeds: u64) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    for pattern in grs::patterns::registry() {
        for seed in 0..seeds {
            let (_, trace) = record(&pattern.racy_program(), &RunConfig::with_seed(seed));
            frames.push(trace.encode());
        }
    }
    frames
}

struct ClientCounts {
    accepted: AtomicU64,
    busy: AtomicU64,
}

/// One synchronous upload client: sends frames round-robin, retrying a
/// frame after the server's `retry_after_ms` hint when it gets `Busy`.
/// With `retry` off it counts the rejection and moves on immediately —
/// that is the burst mode.
#[allow(clippy::too_many_arguments)]
fn client_loop(
    connector: &InProcConnector,
    frames: &[Vec<u8>],
    offset: usize,
    stop: &AtomicBool,
    counts: &ClientCounts,
    retry: bool,
) {
    let mut conn = connector.connect().expect("connect to soak server");
    let mut i = offset;
    while !stop.load(Ordering::Relaxed) {
        let frame = &frames[i % frames.len()];
        RequestFrame::TraceUpload {
            day: 0,
            trace: frame.clone(),
        }
        .write_to(&mut conn)
        .expect("write upload");
        match ResponseFrame::read_from(&mut conn)
            .expect("read response")
            .expect("server closed mid-request")
        {
            ResponseFrame::Accepted { .. } => {
                counts.accepted.fetch_add(1, Ordering::Relaxed);
                i += 1;
            }
            ResponseFrame::Busy { retry_after_ms } => {
                counts.busy.fetch_add(1, Ordering::Relaxed);
                if retry {
                    std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms).min(5)));
                } else {
                    i += 1;
                }
            }
            ResponseFrame::Malformed { message } => panic!("soak upload rejected: {message}"),
            ResponseFrame::Pong => unreachable!("no ping sent"),
        }
    }
}

fn run_clients(
    connector: &InProcConnector,
    frames: &Arc<Vec<Vec<u8>>>,
    n: usize,
    duration: Duration,
    retry: bool,
) -> (u64, u64, f64) {
    let stop = Arc::new(AtomicBool::new(false));
    let counts = Arc::new(ClientCounts {
        accepted: AtomicU64::new(0),
        busy: AtomicU64::new(0),
    });
    let start = Instant::now();
    let workers: Vec<_> = (0..n)
        .map(|c| {
            let connector = connector.clone();
            let frames = Arc::clone(frames);
            let stop = Arc::clone(&stop);
            let counts = Arc::clone(&counts);
            std::thread::spawn(move || {
                client_loop(&connector, &frames, c * 17, &stop, &counts, retry)
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    (
        counts.accepted.load(Ordering::Relaxed),
        counts.busy.load(Ordering::Relaxed),
        elapsed,
    )
}

/// Peak resident set from `/proc/self/status` (`VmHWM`), in kB; 0 when
/// the platform doesn't expose it.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn main() {
    let args = parse_args();
    let frames = Arc::new(record_frames(args.seeds));
    println!(
        "recorded {} trace frames ({} patterns × {} seeds)",
        frames.len(),
        grs::patterns::registry().len(),
        args.seeds
    );

    let registry = Arc::new(MetricsRegistry::new());
    let snapshot_path = std::path::PathBuf::from(&args.snapshot);
    let _ = std::fs::remove_file(&snapshot_path);
    let service = IntakeService::builder()
        .workers(4)
        .queue_depth(QUEUE_DEPTH)
        .dedup_budget(DEDUP_BUDGET_WORDS)
        .retry_after_ms(1)
        .snapshot_path(&snapshot_path)
        .observed(registry.clone())
        .start()
        .expect("start intake service");
    let (transport, connector) = InProcTransport::new();
    let server = IntakeServer::spawn(service.handle(), transport);

    // Phase 1: sustained throughput. A handful of polite clients (they
    // honor the retry-after hint) must clear the 10K frames/sec bar.
    let (accepted, _, elapsed) = run_clients(
        &connector,
        &frames,
        args.clients,
        Duration::from_millis(args.duration_ms),
        true,
    );
    let throughput = accepted as f64 / elapsed;
    println!("sustained : {accepted} frames in {elapsed:.3}s = {throughput:.0} frames/sec");

    // Phase 2: burst overload. Flood the bounded queue through the async
    // enqueue path until backpressure is observed; the wire clients below
    // then see `Busy` responses for the same reason. The service must
    // reject, not buffer.
    let handle = service.handle();
    let mut tickets = Vec::new();
    let mut direct_busy = 0u64;
    for i in 0.. {
        match handle.enqueue_trace(frames[i % frames.len()].clone(), 0) {
            Ok(t) => tickets.push(t),
            Err(grs::deploy::IntakeError::Busy { .. }) => {
                direct_busy += 1;
                if direct_busy >= 8 {
                    break;
                }
            }
            Err(e) => panic!("burst enqueue: {e}"),
        }
        assert!(i < 1_000_000, "queue never filled: backpressure broken");
    }
    for t in tickets {
        t.wait().expect("burst ticket");
    }
    let (_, wire_busy, _) = run_clients(
        &connector,
        &frames,
        QUEUE_DEPTH * 4,
        Duration::from_millis(100),
        false,
    );
    println!("burst     : {direct_busy} direct + {wire_busy} wire Busy rejections");

    // Phase 3: kill and restore. Freeze the bug database, tear the whole
    // service down (final snapshot lands on disk via temp-then-rename),
    // rebuild from that file, and verify nothing filed was lost and the
    // snapshot round-trips byte-identically.
    server.shutdown();
    let open_before: Vec<_> = service.with_tracker(|t| {
        let mut fps: Vec<_> = t
            .open_tasks()
            .filter_map(|id| t.task(id))
            .map(|task| task.fingerprint.0)
            .collect();
        fps.sort_unstable();
        fps
    });
    let snapshot_before = service.snapshot().encode();
    let stats = service.shutdown().expect("shutdown with snapshot");

    let restored = IntakeService::builder()
        .workers(2)
        .queue_depth(QUEUE_DEPTH)
        .dedup_budget(DEDUP_BUDGET_WORDS)
        .snapshot_path(&snapshot_path)
        .start()
        .expect("restore from snapshot");
    let filed_after = restored.with_tracker(|t| t.total_filed());
    let open_after: Vec<_> = restored.with_tracker(|t| {
        let mut fps: Vec<_> = t
            .open_tasks()
            .filter_map(|id| t.task(id))
            .map(|task| task.fingerprint.0)
            .collect();
        fps.sort_unstable();
        fps
    });
    let lost_tasks = stats.total_filed.saturating_sub(filed_after);
    let on_disk = std::fs::read(&snapshot_path).expect("read snapshot file");
    let round_trip_equal = snapshot_before == on_disk
        && restored.snapshot().encode() == snapshot_before
        && open_before == open_after;

    // Re-submit every frame once: the restored dedup cache (rewarmed from
    // the open tasks) must suppress all of them.
    let mut refiled = 0usize;
    for frame in frames.iter() {
        refiled += restored
            .submit_trace(frame.clone(), 1)
            .expect("resubmit after restore")
            .filed
            .len();
    }
    println!(
        "restore   : {} tasks, {lost_tasks} lost, {refiled} re-filed (want 0), round_trip_equal={round_trip_equal}",
        filed_after
    );
    restored.shutdown().expect("shutdown restored service");

    let snap = registry.snapshot();
    let latency = snap
        .histograms
        .iter()
        .find(|(name, _)| name == "intake.latency")
        .map(|(_, h)| h.clone())
        .expect("intake.latency histogram");
    let p50_us = latency.quantile_ns(0.5) as f64 / 1e3;
    let p99_us = latency.quantile_ns(0.99) as f64 / 1e3;
    let busy_total = stats.busy_rejections;
    let dedup_exceeded = stats.dedup_peak_words > stats.dedup_budget_words;
    let rss = peak_rss_kb();
    println!(
        "latency   : p50 {p50_us:.0} µs  p99 {p99_us:.0} µs   peak RSS {rss} kB   busy {busy_total}"
    );

    let json = format!(
        concat!(
            r#"{{"schema_version":1,"frames":{},"throughput_fps":{:.0},"#,
            r#""p50_us":{:.1},"p99_us":{:.1},"peak_rss_kb":{},"busy_rejections":{},"#,
            r#""dedup":{{"budget_words":{},"peak_words":{},"evictions":{},"exceeded":{}}},"#,
            r#""snapshot":{{"round_trip_equal":{},"lost_tasks":{}}},"#,
            r#""queue":{{"peak_depth":{},"depth_cap":{}}}}}"#
        ),
        stats.traces,
        throughput,
        p50_us,
        p99_us,
        rss,
        busy_total,
        stats.dedup_budget_words,
        stats.dedup_peak_words,
        stats.dedup_evictions,
        dedup_exceeded,
        round_trip_equal,
        lost_tasks,
        stats.queue_peak,
        QUEUE_DEPTH,
    );
    std::fs::write(&args.out, format!("{json}\n")).expect("write JSON summary");
    println!("wrote {}", args.out);

    assert!(busy_total >= 1, "soak never observed backpressure");
    assert_eq!(lost_tasks, 0, "kill-and-restore lost filed tasks");
    assert_eq!(refiled, 0, "restored service re-filed known open races");
    assert!(round_trip_equal, "snapshot round trip not byte-identical");
    assert!(!dedup_exceeded, "dedup cache exceeded its word budget");
}
