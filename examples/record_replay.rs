//! Record once, analyze many: the trace subsystem end to end on Listing 1.
//!
//! Executes the paper's Listing-1 race (a loop index variable captured by
//! reference in a goroutine) a single time under a [`TraceRecorder`],
//! writes the self-contained `.grtrace` artifact to disk, reads it back,
//! and replays the decoded trace through all four detection algorithms —
//! FastTrack, the pure-vector-clock ablation, Eraser, and the TSan-style
//! hybrid — without re-executing the program. Each algorithm's reports are
//! checked against a live run of the same `(seed, strategy)`: the trace
//! carries the complete execution, so offline analysis is bit-identical.
//!
//! ```sh
//! cargo run --release --example record_replay -- [--seed N] [--out PATH]
//! ```

use grs::patterns;
use grs::prelude::*;
use grs::runtime::record;

fn main() {
    let mut seed: u64 = 3;
    let mut out = "target/listing1.grtrace".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--seed" => seed = value("--seed").parse().expect("seed: integer"),
            "--out" => out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }

    let listing1 = patterns::find("loop_index_capture")
        .expect("Listing 1 is in the pattern corpus")
        .racy_program();
    let cfg = RunConfig::with_seed(seed);

    // 1. Execute once, recording the full event stream + stack depot.
    let (outcome, trace) = record(&listing1, &cfg);
    println!(
        "recorded {}: seed {seed}, {} steps, {} events, {} interned stacks, digest {:#018x}",
        trace.meta.program,
        outcome.steps,
        trace.events.len(),
        trace.stacks.len(),
        trace.digest(),
    );

    // 2. Persist the self-contained artifact and read it back.
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    trace.write_to(&out).expect("write .grtrace");
    let bytes = std::fs::metadata(&out).expect("stat .grtrace").len();
    let loaded = Trace::read_from(&out).expect("read .grtrace back");
    assert_eq!(loaded, trace, "wire format round trip");
    println!("wrote {out} ({bytes} bytes); decoded artifact is identical");
    println!("repro: {}", loaded.repro());

    // 3. Replay the decoded trace through every algorithm — no re-execution.
    let mut arena = DetectorArena::new();
    for (choice, replayed) in arena.replay_all(&loaded) {
        // The fidelity check: a live run of the same (seed, strategy)
        // produces the very same reports the offline replay does.
        let (_, live) = choice.run(&listing1, cfg.clone());
        assert_eq!(
            replayed.reports.len(),
            live.len(),
            "{choice}: replay diverged from live"
        );
        for (a, b) in replayed.reports.iter().zip(live.iter()) {
            assert_eq!(format!("{a}"), format!("{b}"), "{choice}: report text diverged");
        }
        println!(
            "replay {choice}: {} events → {} report(s), peak shadow {} words [= live run]",
            replayed.events,
            replayed.reports.len(),
            replayed.peak_shadow_words,
        );
        for r in &replayed.reports {
            for line in format!("{r}").lines() {
                println!("   {line}");
            }
        }
    }
    println!("one execution, {} analyses — none re-ran the program", DetectorChoice::all_with_ablation().len());
}
