//! The paper-scale source-level campaign: stream generated Go tests from
//! the per-test corpus emitter through the `grs-interp` frontend into the
//! fleet engine — the §3.3 "~100K unit tests nightly" deployment shape,
//! run end to end in one process.
//!
//! Units are never materialized: the corpus is a
//! [`GoCorpusSource`](grs::fleet::GoCorpusSource) (a generator seed plus a
//! count), workers lower tests on demand through per-worker caches, and
//! the observability layer buckets as it streams — so peak RSS tracks the
//! result set, not the corpus size.
//!
//! ```sh
//! cargo run --release --example corpus_campaign -- \
//!     [--units N] [--seeds N] [--workers-list 1,4,8] \
//!     [--racy-per-mille N] [--gen-seed N] [--out BENCH_corpus.json]
//! ```
//!
//! The campaign runs once per entry in `--workers-list` over the *same*
//! source and asserts the compact deterministic digest
//! ([`CampaignResult::digest64`]) is identical for every worker count and
//! that no unit was skipped — then writes the measured scale figures
//! (units, runs, wall, throughput, peak RSS per run) to the JSON artifact
//! CI gates on.

use std::fmt::Write as _;
use std::sync::Arc;

use grs::corpus::GoTestSpec;
use grs::fleet::GoCorpusSource;
use grs::prelude::*;
use grs::runtime::Strategy;

struct Args {
    units: usize,
    seeds: usize,
    workers_list: Vec<usize>,
    racy_per_mille: u32,
    gen_seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        units: 100_000,
        seeds: 1,
        workers_list: vec![1, 4, 8],
        racy_per_mille: 200,
        gen_seed: 1,
        out: "BENCH_corpus.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--units" => args.units = value("--units").parse().expect("units: integer"),
            "--seeds" => args.seeds = value("--seeds").parse().expect("seeds: integer"),
            "--workers-list" => {
                args.workers_list = value("--workers-list")
                    .split(',')
                    .map(|w| w.parse().expect("workers-list: comma-separated integers"))
                    .collect();
            }
            "--racy-per-mille" => {
                args.racy_per_mille = value("--racy-per-mille")
                    .parse()
                    .expect("racy-per-mille: integer");
            }
            "--gen-seed" => args.gen_seed = value("--gen-seed").parse().expect("gen-seed: integer"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Peak resident set size of this process in KiB (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
fn peak_rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Resets the kernel's peak-RSS watermark to the current RSS, so each
/// campaign's `VmHWM` reading is its own. Best-effort: where the write is
/// not permitted the watermark stays monotone across runs (still a valid
/// upper bound for every run).
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

fn main() {
    let args = parse_args();
    let source = Arc::new(GoCorpusSource::new(
        GoTestSpec::default_mix().racy_per_mille(args.racy_per_mille),
        args.gen_seed,
        args.units,
    ));
    let base = CampaignConfig::new()
        .seeds_per_unit(args.seeds)
        .detectors(vec![DetectorChoice::FastTrack])
        .strategies(vec![Strategy::Random]);
    let probe = Campaign::over_source(base.clone(), source.clone());
    println!(
        "== source-level campaign: {} generated Go tests × {} seeds × {} strategies × {} detector = {} runs ==",
        args.units,
        args.seeds,
        base.strategies.len(),
        base.detectors.len(),
        probe.matrix_len(),
    );

    let mut rows = Vec::new();
    let mut digests: Vec<u64> = Vec::new();
    for &workers in &args.workers_list {
        reset_peak_rss();
        let campaign = Campaign::over_source(
            base.clone().workers(workers).shards(2 * workers.max(1)),
            source.clone(),
        );
        let r = campaign.run();
        let peak_kib = peak_rss_kib();
        let digest = r.digest64();
        println!(
            "workers {:>2}: {} runs in {:.1} s ({:.0} runs/s) · {} racy · {} unique races · {} skipped · digest {:#018x} · peak RSS {:.1} MiB",
            workers,
            r.total_runs(),
            r.wall.as_secs_f64(),
            r.throughput_rps(),
            r.racy_runs(),
            r.batch.len(),
            r.units_skipped,
            digest,
            peak_kib as f64 / 1024.0,
        );
        for reason in &r.skip_reasons {
            println!("   skip: {reason}");
        }
        assert_eq!(
            r.units_skipped, 0,
            "every generated test must lower (see tests/corpus_source_props.rs)"
        );
        assert_eq!(r.total_runs(), campaign.matrix_len());
        digests.push(digest);
        let mut row = String::new();
        let _ = write!(
            row,
            concat!(
                r#"{{"workers":{},"total_runs":{},"racy_runs":{},"unique_races":{},"#,
                r#""units_skipped":{},"digest64":"{:#018x}","wall_s":{:.3},"#,
                r#""throughput_rps":{:.1},"peak_rss_kib":{}}}"#
            ),
            workers,
            r.total_runs(),
            r.racy_runs(),
            r.batch.len(),
            r.units_skipped,
            digest,
            r.wall.as_secs_f64(),
            r.throughput_rps(),
            peak_kib,
        );
        rows.push(row);
    }

    let digests_equal = digests.windows(2).all(|w| w[0] == w[1]);
    assert!(
        digests_equal,
        "deterministic digest must be invariant across worker counts: {digests:#018x?}"
    );
    println!(
        "digest {:#018x} identical across workers {:?}",
        digests[0], args.workers_list
    );

    let json = format!(
        concat!(
            r#"{{"units":{},"seeds_per_unit":{},"racy_per_mille":{},"gen_seed":{},"#,
            r#""detector":"fasttrack","strategy":"random","digests_equal":{},"#,
            r#""digest64":"{:#018x}","results":[{}]}}"#
        ),
        args.units,
        args.seeds,
        args.racy_per_mille,
        args.gen_seed,
        digests_equal,
        digests[0],
        rows.join(","),
    );
    std::fs::write(&args.out, format!("{json}\n")).expect("write JSON summary");
    println!("wrote {}", args.out);
}
