//! The entire paper in one command: regenerate every table and figure at
//! the standard scale and print the report.
//!
//! ```sh
//! cargo run --release --example full_reproduction
//! ```

use grs::Study;

fn main() {
    let study = Study::standard(42);
    println!(
        "Reproducing 'A Study of Real-World Data Races in Golang' (PLDI 2022), seed {}...\n",
        study.seed
    );
    let report = study.run();
    println!("{}", report.render());
}
