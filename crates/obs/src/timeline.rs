//! [`CampaignTimeline`] — the §3.5 longitudinal dynamics, reconstructed
//! from one campaign's deterministic outputs.
//!
//! The paper's deployment story (Figures 3 and 4) is a six-month time
//! series: tasks filed per day, tasks fixed per day, outstanding races,
//! dedup growth. A single campaign run finishes in milliseconds, so to
//! reproduce those figures we bucket the campaign's spec-index axis into
//! virtual **campaign days**: spec index `i` of `N` lands on day
//! `i * days / N`. Each detected race fingerprint is an *observation* on
//! its run's day; the timeline then replays the §3.3.1 tracker discipline
//! over the observations:
//!
//! * a fingerprint with no open task files a **new** task (Figure 4's
//!   created series, and — first time ever — the dedup-growth series);
//! * a fingerprint with an open task is **suppressed** as a rediscovery;
//! * every filed task is **fixed** after a deterministic per-fingerprint
//!   latency (splitmix of the fingerprint, capped by
//!   [`TimelineConfig::fix_latency_max`]) — the stand-in for the paper's
//!   stochastic developer process, chosen deterministic so the exported
//!   timeline is byte-identical across worker counts and replay modes;
//! * once fixed, a re-observation re-files (regressions resurface), exactly
//!   like [`BugTracker`]'s suppression rule.
//!
//! Everything here is derived from deterministic campaign outputs — spec
//! indices and fingerprints — so the timeline section of `BENCH_obs.json`
//! participates in the deterministic digest.
//!
//! [`BugTracker`]: https://docs.rs/grs-deploy

use std::collections::BTreeMap;

/// Timeline bucketing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineConfig {
    /// Virtual campaign days the spec-index axis is bucketed into.
    pub days: u32,
    /// Upper bound (inclusive) on the deterministic fix latency, in days;
    /// latencies are `1 ..= fix_latency_max`.
    pub fix_latency_max: u32,
}

impl TimelineConfig {
    /// 30 virtual days, fixes land within 1–14 days — a compressed render
    /// of the paper's six-month window.
    #[must_use]
    pub fn default_days() -> Self {
        TimelineConfig {
            days: 30,
            fix_latency_max: 14,
        }
    }

    /// Sets the day count (builder style), clamped to at least 1.
    #[must_use]
    pub fn days(mut self, days: u32) -> Self {
        self.days = days.max(1);
        self
    }

    /// Sets the fix-latency cap (builder style), clamped to at least 1.
    #[must_use]
    pub fn fix_latency_max(mut self, max: u32) -> Self {
        self.fix_latency_max = max.max(1);
        self
    }
}

impl Default for TimelineConfig {
    fn default() -> Self {
        Self::default_days()
    }
}

/// One virtual campaign day (one row of Figures 3 and 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DayRow {
    /// Day index (0-based).
    pub day: u32,
    /// Tasks filed this day (first detection, or re-detection after a fix).
    pub filed: u32,
    /// Observations suppressed because a task was already open.
    pub rediscovered: u32,
    /// Tasks fixed this day.
    pub fixed: u32,
    /// Open tasks at end of day — Figure 3's y-axis.
    pub outstanding: u32,
    /// Cumulative tasks filed — Figure 4's created series.
    pub filed_cum: u32,
    /// Cumulative tasks fixed — Figure 4's resolved series.
    pub fixed_cum: u32,
    /// Cumulative distinct fingerprints ever observed — the dedup-growth
    /// series.
    pub unique_cum: u32,
}

/// The finished timeline: per-day rows plus the fix-latency distribution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimelineReport {
    /// One row per virtual day.
    pub days: Vec<DayRow>,
    /// `latency_days → fixes` over all in-window fixes (Figure 4's
    /// fix-latency distribution).
    pub fix_latency: Vec<(u32, u32)>,
    /// Total observations fed in.
    pub observations: u64,
    /// Total tasks filed.
    pub total_filed: u32,
    /// Total tasks fixed within the window.
    pub total_fixed: u32,
    /// Distinct fingerprints observed.
    pub unique_races: u32,
}

impl TimelineReport {
    /// Figure 3's series: `(day, outstanding)`.
    #[must_use]
    pub fn figure3_series(&self) -> Vec<(u32, u32)> {
        self.days.iter().map(|d| (d.day, d.outstanding)).collect()
    }

    /// Figure 4's series: `(day, filed_cum, fixed_cum)`.
    #[must_use]
    pub fn figure4_series(&self) -> Vec<(u32, u32, u32)> {
        self.days
            .iter()
            .map(|d| (d.day, d.filed_cum, d.fixed_cum))
            .collect()
    }

    /// The dedup-growth series: `(day, unique_cum)`.
    #[must_use]
    pub fn dedup_growth(&self) -> Vec<(u32, u32)> {
        self.days.iter().map(|d| (d.day, d.unique_cum)).collect()
    }

    /// Mean fix latency in days over in-window fixes (0 when none).
    #[must_use]
    pub fn mean_fix_latency(&self) -> f64 {
        let (mut fixes, mut weighted) = (0u64, 0u64);
        for &(lat, n) in &self.fix_latency {
            fixes += u64::from(n);
            weighted += u64::from(lat) * u64::from(n);
        }
        if fixes == 0 {
            0.0
        } else {
            weighted as f64 / fixes as f64
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Buckets per-spec race observations into virtual campaign days and
/// replays the tracker discipline over them **as they stream in**.
///
/// Observations must arrive in non-decreasing day order (the campaign
/// feeds records in spec-index order, which guarantees it). The timeline
/// never stores the observation stream: each `observe` updates the open
/// task set and the accumulating day row directly, so memory is
/// O(days + open fingerprints) — at a 100K-run campaign that is the
/// difference between a few kilobytes and a vector with one entry per
/// detected race.
///
/// # Example
///
/// ```
/// use grs_obs::{CampaignTimeline, TimelineConfig};
///
/// let mut t = CampaignTimeline::new(TimelineConfig::default_days().days(4));
/// t.observe(0, 0xfeed); // new race on day 0
/// t.observe(1, 0xfeed); // rediscovered while open
/// t.observe(3, 0xbeef); // second unique race
/// let report = t.finish();
/// assert_eq!(report.unique_races, 2);
/// assert_eq!(report.days.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignTimeline {
    cfg: TimelineConfig,
    /// Finalized rows for days before `day`.
    rows: Vec<DayRow>,
    /// The day currently accumulating (rows.len() as u32, invariant).
    day: u32,
    /// In-progress counters for `day`.
    filed_today: u32,
    rediscovered_today: u32,
    fixed_today: u32,
    /// Running cumulative counters.
    filed_cum: u32,
    fixed_cum: u32,
    /// fingerprint → open task's scheduled fix day.
    open: BTreeMap<u64, u32>,
    /// fix day → fingerprints due.
    due: BTreeMap<u32, Vec<u64>>,
    /// Distinct fingerprints ever observed.
    seen: std::collections::BTreeSet<u64>,
    /// `latency_days → fixes` histogram.
    latency_hist: BTreeMap<u32, u32>,
    /// Total observations fed in.
    observations: u64,
}

impl CampaignTimeline {
    /// An empty timeline.
    #[must_use]
    pub fn new(cfg: TimelineConfig) -> Self {
        CampaignTimeline {
            cfg,
            rows: Vec::with_capacity(cfg.days as usize),
            day: 0,
            filed_today: 0,
            rediscovered_today: 0,
            fixed_today: 0,
            filed_cum: 0,
            fixed_cum: 0,
            open: BTreeMap::new(),
            due: BTreeMap::new(),
            seen: std::collections::BTreeSet::new(),
            latency_hist: BTreeMap::new(),
            observations: 0,
        }
    }

    /// The virtual day a spec at `index` of `total` lands on.
    #[must_use]
    pub fn day_of(&self, index: usize, total: usize) -> u32 {
        if total == 0 {
            return 0;
        }
        ((index * self.cfg.days as usize) / total) as u32
    }

    /// Finalizes the accumulating day's row and opens the next day:
    /// fixes scheduled for the new day land immediately — before any of
    /// its filings — so a same-day re-detection after a fix re-files.
    fn close_day(&mut self) {
        self.filed_cum += self.filed_today;
        self.fixed_cum += self.fixed_today;
        self.rows.push(DayRow {
            day: self.day,
            filed: self.filed_today,
            rediscovered: self.rediscovered_today,
            fixed: self.fixed_today,
            outstanding: self.open.len() as u32,
            filed_cum: self.filed_cum,
            fixed_cum: self.fixed_cum,
            unique_cum: self.seen.len() as u32,
        });
        self.day += 1;
        self.filed_today = 0;
        self.rediscovered_today = 0;
        self.fixed_today = 0;
        if let Some(fps) = self.due.remove(&self.day) {
            for fp in fps {
                if self.open.remove(&fp).is_some() {
                    self.fixed_today += 1;
                }
            }
        }
    }

    /// Records one race observation (a detected fingerprint) on `day`.
    ///
    /// # Panics
    ///
    /// Panics when `day` decreases relative to the previous observation or
    /// is out of the configured window — both indicate a caller iterating
    /// records out of spec order, which would silently break determinism.
    pub fn observe(&mut self, day: u32, fingerprint: u64) {
        assert!(day < self.cfg.days, "day {day} outside 0..{}", self.cfg.days);
        assert!(day >= self.day, "observations must be fed in day order");
        while self.day < day {
            self.close_day();
        }
        self.observations += 1;
        self.seen.insert(fingerprint);
        if let std::collections::btree_map::Entry::Vacant(slot) = self.open.entry(fingerprint) {
            let latency =
                1 + (splitmix64(fingerprint) % u64::from(self.cfg.fix_latency_max)) as u32;
            let fix_day = day + latency;
            slot.insert(fix_day);
            if fix_day < self.cfg.days {
                self.due.entry(fix_day).or_default().push(fingerprint);
                *self.latency_hist.entry(latency).or_insert(0) += 1;
            }
            self.filed_today += 1;
        } else {
            self.rediscovered_today += 1;
        }
    }

    /// Number of observations so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.observations as usize
    }

    /// True when no observation was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.observations == 0
    }

    /// Runs the remaining (observation-free) days through the tracker and
    /// emits the per-day report. Deterministic: a pure function of the
    /// observation sequence and the config.
    #[must_use]
    pub fn finish(mut self) -> TimelineReport {
        while self.day < self.cfg.days {
            self.close_day();
        }
        TimelineReport {
            days: self.rows,
            fix_latency: self.latency_hist.into_iter().collect(),
            observations: self.observations,
            total_filed: self.filed_cum,
            total_fixed: self.fixed_cum,
            unique_races: self.seen.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(days: u32) -> TimelineConfig {
        TimelineConfig::default_days().days(days)
    }

    #[test]
    fn day_bucketing_covers_the_window() {
        let t = CampaignTimeline::new(cfg(10));
        assert_eq!(t.day_of(0, 100), 0);
        assert_eq!(t.day_of(99, 100), 9);
        assert_eq!(t.day_of(50, 100), 5);
        assert_eq!(t.day_of(0, 0), 0);
    }

    #[test]
    fn new_vs_rediscovered_vs_refiled() {
        let mut t = CampaignTimeline::new(cfg(20).fix_latency_max(1));
        // fp seen on day 0: filed; fixed day 1 (latency forced to 1).
        t.observe(0, 42);
        // day 0 again: suppressed (open).
        t.observe(0, 42);
        // day 2 (after the fix): re-filed.
        t.observe(2, 42);
        let r = t.finish();
        assert_eq!(r.unique_races, 1);
        assert_eq!(r.total_filed, 2, "regression re-files after the fix");
        assert_eq!(r.days[0].filed, 1);
        assert_eq!(r.days[0].rediscovered, 1);
        assert_eq!(r.days[1].fixed, 1);
        assert_eq!(r.days[2].filed, 1);
    }

    #[test]
    fn cumulative_series_are_monotone_and_consistent() {
        let mut t = CampaignTimeline::new(cfg(15));
        for i in 0..300u64 {
            t.observe((i / 20) as u32, splitmix64(i) % 40);
        }
        let r = t.finish();
        assert_eq!(r.days.len(), 15);
        for w in r.days.windows(2) {
            assert!(w[1].filed_cum >= w[0].filed_cum);
            assert!(w[1].fixed_cum >= w[0].fixed_cum);
            assert!(w[1].unique_cum >= w[0].unique_cum);
        }
        for d in &r.days {
            assert_eq!(
                d.outstanding,
                d.filed_cum - d.fixed_cum,
                "open = filed − fixed on day {}",
                d.day
            );
        }
        assert!(r.total_fixed > 0, "fixes land inside a 15-day window");
        assert!(r.mean_fix_latency() >= 1.0);
        let fig3 = r.figure3_series();
        let fig4 = r.figure4_series();
        assert_eq!(fig3.len(), 15);
        assert_eq!(fig4.len(), 15);
        assert_eq!(r.dedup_growth().last().unwrap().1, r.unique_races);
    }

    #[test]
    fn deterministic_across_reruns() {
        let build = || {
            let mut t = CampaignTimeline::new(cfg(12));
            for i in 0..200u64 {
                t.observe((i / 17) as u32, i % 23);
            }
            t.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "day order")]
    fn out_of_order_observation_panics() {
        let mut t = CampaignTimeline::new(cfg(5));
        t.observe(3, 1);
        t.observe(2, 2);
    }
}
