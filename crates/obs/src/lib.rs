//! `grs-obs` — campaign observability for the race-study stack.
//!
//! The paper's deployment story is longitudinal: §3.5 and Figures 3–4
//! report six months of filing/fixing dynamics, dedup growth, and
//! throughput. Reproducing that requires *continuous* telemetry from every
//! layer of the campaign engine, not just end-of-run aggregates. This crate
//! is the one observability surface the whole workspace reports into:
//!
//! * [`ObsSink`] — the reporting trait. Runtime monitors, replay analyzers,
//!   shard workers, and the intake pipeline all speak it; ad-hoc stats
//!   structs (`MonitorStats`, `ReplayStats`, campaign field grab-bags)
//!   remain as typed views, but the composable surface is the sink.
//! * [`MetricsRegistry`] — the standard sink: lock-sharded counters,
//!   max-gauges, and log-scaled latency histograms, with a span ring
//!   buffer. Stable metrics are deterministic (order-independent sums and
//!   maxima); wall-clock and placement-dependent data are segregated.
//! * [`CampaignTimeline`] — buckets per-spec campaign results into virtual
//!   "campaign days" and replays the §3.3.1 tracker discipline to
//!   reconstruct Figure 3 (new vs. resolved races over time) and Figure 4
//!   (dedup growth, fix-latency distribution).
//! * [`ObsReport`] — the exported `BENCH_obs.json` document: versioned
//!   schema, deterministic digest over the stable sections, and a human
//!   `--dashboard` text view.
//!
//! This crate is dependency-free and sits below the runtime in the crate
//! graph, so every layer can report into it.
//!
//! # Example
//!
//! ```
//! use grs_obs::{CampaignTimeline, MetricsRegistry, ObsReport, ObsSink, TimelineConfig};
//!
//! let registry = MetricsRegistry::new();
//! registry.add("campaign.runs", 100);
//! registry.add("campaign.racy_runs", 37);
//!
//! let mut timeline = CampaignTimeline::new(TimelineConfig::default_days());
//! timeline.observe(0, 0xdead_beef);
//! timeline.observe(12, 0xfeed_face);
//!
//! let report = ObsReport::new("demo", registry.snapshot(), timeline.finish());
//! assert!(report.to_json().contains("\"schema_version\":1"));
//! ```

pub mod registry;
pub mod report;
pub mod sink;
pub mod timeline;

pub use registry::{
    Histogram, MetricsRegistry, MetricsSnapshot, SpanRecord, SpanSnapshot, SpanStats,
    HISTOGRAM_BUCKETS, SPAN_RING_CAPACITY,
};
pub use report::{ObsReport, SCHEMA_VERSION};
pub use sink::{NullSink, ObsSink, SpanGuard, NULL_SINK};
pub use timeline::{CampaignTimeline, DayRow, TimelineConfig, TimelineReport};

/// The types most observability users need, for `use grs_obs::prelude::*`.
pub mod prelude {
    pub use crate::registry::{MetricsRegistry, MetricsSnapshot};
    pub use crate::report::{ObsReport, SCHEMA_VERSION};
    pub use crate::sink::{NullSink, ObsSink, SpanGuard};
    pub use crate::timeline::{CampaignTimeline, TimelineConfig, TimelineReport};
}
