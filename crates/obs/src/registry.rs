//! The lock-sharded [`MetricsRegistry`] and its [`MetricsSnapshot`].
//!
//! Metric cells are distributed over `S` mutex-guarded shards by an FNV
//! hash of the metric name, so concurrent campaign workers rarely contend:
//! two workers only serialize when they touch metrics that hash to the same
//! shard. Spans live in one dedicated ring (they are rare — per run, not
//! per event).
//!
//! Snapshots merge the shards into name-sorted vectors, which is what makes
//! the exported metrics deterministic: stable counters are sums and stable
//! gauges are maxima — both order-independent — and the snapshot ordering
//! is lexicographic, not insertion-ordered.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::sink::ObsSink;

/// Number of log-2 latency buckets: bucket `i` counts durations in
/// `[2^i, 2^(i+1))` nanoseconds, bucket 0 includes 0, the last bucket is
/// open-ended (≥ ~9.2 s).
pub const HISTOGRAM_BUCKETS: usize = 34;

/// Span ring-buffer capacity: the exporter keeps the most recent completed
/// spans for the timing section and drops older ones.
pub const SPAN_RING_CAPACITY: usize = 256;

/// A log-scaled latency histogram (power-of-two nanosecond buckets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed durations, in nanoseconds (saturating).
    pub total_ns: u64,
    /// The largest single observation, in nanoseconds.
    pub max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// The bucket index a duration of `ns` nanoseconds falls into.
    #[must_use]
    pub fn bucket_of(ns: u64) -> usize {
        let raw = (64 - ns.leading_zeros()) as usize; // 0 for ns == 0
        raw.saturating_sub(1).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation.
    pub fn observe_ns(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Mean observation in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile in nanoseconds (`q` in `[0, 1]`), resolved to the
    /// upper bound of the log₂ bucket holding that rank — a conservative
    /// (never-underestimating) quantile, clamped to the observed maximum.
    /// Returns 0 when empty. `quantile_ns(0.5)` is the p50 and
    /// `quantile_ns(0.99)` the p99 the intake dashboard and soak gate use.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i spans [2^i, 2^(i+1)); report its upper bound.
                let upper = 1u64.checked_shl(i as u32 + 1).unwrap_or(u64::MAX);
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// One completed span in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Completion sequence number (monotone within one registry).
    pub seq: u64,
    /// Span name.
    pub name: String,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Completed spans.
    pub count: u64,
    /// Total duration, nanoseconds (saturating).
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

/// The span section of a snapshot: per-name aggregates plus the most
/// recent completed spans from the ring buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// `(name, stats)` sorted by name.
    pub aggregates: Vec<(String, SpanStats)>,
    /// Ring-buffer contents, oldest retained span first.
    pub recent: Vec<SpanRecord>,
    /// Spans dropped from the ring (completed − retained).
    pub dropped: u64,
}

#[derive(Debug, Default)]
struct Shard {
    counters: BTreeMap<String, u64>,
    volatile_counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

#[derive(Debug, Default)]
struct SpanRing {
    ring: std::collections::VecDeque<SpanRecord>,
    aggregates: BTreeMap<String, SpanStats>,
    next_seq: u64,
    dropped: u64,
}

/// The lock-sharded metrics registry — the standard [`ObsSink`].
///
/// # Example
///
/// ```
/// use grs_obs::{MetricsRegistry, ObsSink};
///
/// let r = MetricsRegistry::new();
/// r.add("campaign.runs", 2);
/// r.add("campaign.runs", 3);
/// r.gauge_max("depot.stacks", 7);
/// r.gauge_max("depot.stacks", 4);
/// let snap = r.snapshot();
/// assert_eq!(snap.counter("campaign.runs"), 5);
/// assert_eq!(snap.gauge("depot.stacks"), 7);
/// ```
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<Mutex<Shard>>,
    spans: Mutex<SpanRing>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl MetricsRegistry {
    /// A registry with the default shard count (8).
    #[must_use]
    pub fn new() -> Self {
        Self::with_shards(8)
    }

    /// A registry with `shards` lock shards (clamped to at least 1).
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        MetricsRegistry {
            shards: (0..shards.max(1)).map(|_| Mutex::new(Shard::default())).collect(),
            spans: Mutex::new(SpanRing::default()),
        }
    }

    fn shard(&self, name: &str) -> std::sync::MutexGuard<'_, Shard> {
        let i = (fnv1a(name) % self.shards.len() as u64) as usize;
        self.shards[i]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Snapshots every metric into name-sorted vectors. Safe to call while
    /// workers are still reporting (each shard is locked briefly), but only
    /// a quiescent snapshot is deterministic.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        let mut volatile_counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for (k, v) in &s.counters {
                *counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, v) in &s.volatile_counters {
                *volatile_counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, v) in &s.gauges {
                let e = gauges.entry(k.clone()).or_insert(0);
                *e = (*e).max(*v);
            }
            for (k, v) in &s.histograms {
                histograms.entry(k.clone()).or_default().merge(v);
            }
        }
        let spans = {
            let s = self.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            SpanSnapshot {
                aggregates: s.aggregates.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                recent: s.ring.iter().cloned().collect(),
                dropped: s.dropped,
            }
        };
        MetricsSnapshot {
            counters: counters.into_iter().collect(),
            volatile_counters: volatile_counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: histograms.into_iter().collect(),
            spans,
        }
    }
}

impl ObsSink for MetricsRegistry {
    fn add(&self, name: &str, delta: u64) {
        let mut s = self.shard(name);
        match s.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                s.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn add_volatile(&self, name: &str, delta: u64) {
        let mut s = self.shard(name);
        match s.volatile_counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                s.volatile_counters.insert(name.to_string(), delta);
            }
        }
    }

    fn gauge_max(&self, name: &str, value: u64) {
        let mut s = self.shard(name);
        match s.gauges.get_mut(name) {
            Some(v) => *v = (*v).max(value),
            None => {
                s.gauges.insert(name.to_string(), value);
            }
        }
    }

    fn observe(&self, name: &str, duration: Duration) {
        let ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        let mut s = self.shard(name);
        match s.histograms.get_mut(name) {
            Some(h) => h.observe_ns(ns),
            None => {
                let mut h = Histogram::default();
                h.observe_ns(ns);
                s.histograms.insert(name.to_string(), h);
            }
        }
    }

    fn span_end(&self, name: &str, duration: Duration) {
        let ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        let mut s = self.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let seq = s.next_seq;
        s.next_seq += 1;
        if s.ring.len() == SPAN_RING_CAPACITY {
            s.ring.pop_front();
            s.dropped += 1;
        }
        s.ring.push_back(SpanRecord {
            seq,
            name: name.to_string(),
            dur_ns: ns,
        });
        let agg = s.aggregates.entry(name.to_string()).or_default();
        agg.count += 1;
        agg.total_ns = agg.total_ns.saturating_add(ns);
        agg.max_ns = agg.max_ns.max(ns);
    }
}

/// A quiescent view of a registry: name-sorted metric vectors, mergeable
/// with snapshots from other registries (e.g. the intake pipeline's sink
/// folded into the campaign's before export).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Stable counters, sorted by name (deterministic; in the digest).
    pub counters: Vec<(String, u64)>,
    /// Placement-dependent counters, sorted by name (not in the digest).
    pub volatile_counters: Vec<(String, u64)>,
    /// Stable max-gauges, sorted by name (deterministic; in the digest).
    pub gauges: Vec<(String, u64)>,
    /// Wall-clock latency histograms, sorted by name (not in the digest).
    pub histograms: Vec<(String, Histogram)>,
    /// Span aggregates + ring buffer (not in the digest).
    pub spans: SpanSnapshot,
}

impl MetricsSnapshot {
    /// The value of stable counter `name` (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        lookup(&self.counters, name).unwrap_or(0)
    }

    /// The value of volatile counter `name` (0 when absent).
    #[must_use]
    pub fn volatile_counter(&self, name: &str) -> u64 {
        lookup(&self.volatile_counters, name).unwrap_or(0)
    }

    /// The value of gauge `name` (0 when absent).
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        lookup(&self.gauges, name).unwrap_or(0)
    }

    /// Folds `other` into `self`: counters sum, gauges max, histograms
    /// merge, span aggregates sum, ring buffers concatenate (re-capped to
    /// the ring capacity, keeping the newest).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        merge_sum(&mut self.counters, &other.counters);
        merge_sum(&mut self.volatile_counters, &other.volatile_counters);
        merge_max(&mut self.gauges, &other.gauges);
        let mut hist: BTreeMap<String, Histogram> =
            self.histograms.drain(..).collect();
        for (k, v) in &other.histograms {
            hist.entry(k.clone()).or_default().merge(v);
        }
        self.histograms = hist.into_iter().collect();
        let mut aggs: BTreeMap<String, SpanStats> =
            self.spans.aggregates.drain(..).collect();
        for (k, v) in &other.spans.aggregates {
            let a = aggs.entry(k.clone()).or_default();
            a.count += v.count;
            a.total_ns = a.total_ns.saturating_add(v.total_ns);
            a.max_ns = a.max_ns.max(v.max_ns);
        }
        self.spans.aggregates = aggs.into_iter().collect();
        self.spans.dropped += other.spans.dropped;
        self.spans.recent.extend(other.spans.recent.iter().cloned());
        if self.spans.recent.len() > SPAN_RING_CAPACITY {
            let excess = self.spans.recent.len() - SPAN_RING_CAPACITY;
            self.spans.recent.drain(..excess);
            self.spans.dropped += excess as u64;
        }
    }

    /// The deterministic sections (stable counters + gauges) folded into
    /// one FNV-1a digest, for worker-count invariance checks.
    #[must_use]
    pub fn deterministic_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (k, v) in &self.counters {
            eat(b"c:");
            eat(k.as_bytes());
            eat(&v.to_le_bytes());
        }
        for (k, v) in &self.gauges {
            eat(b"g:");
            eat(k.as_bytes());
            eat(&v.to_le_bytes());
        }
        h
    }
}

fn lookup(v: &[(String, u64)], name: &str) -> Option<u64> {
    v.binary_search_by(|(k, _)| k.as_str().cmp(name))
        .ok()
        .map(|i| v[i].1)
}

fn merge_sum(dst: &mut Vec<(String, u64)>, src: &[(String, u64)]) {
    let mut map: BTreeMap<String, u64> = dst.drain(..).collect();
    for (k, v) in src {
        *map.entry(k.clone()).or_insert(0) += v;
    }
    *dst = map.into_iter().collect();
}

fn merge_max(dst: &mut Vec<(String, u64)>, src: &[(String, u64)]) {
    let mut map: BTreeMap<String, u64> = dst.drain(..).collect();
    for (k, v) in src {
        let e = map.entry(k.clone()).or_insert(0);
        *e = (*e).max(*v);
    }
    *dst = map.into_iter().collect();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_gauges_max() {
        let r = MetricsRegistry::with_shards(4);
        for i in 0..10 {
            r.add("runs", 1);
            r.gauge_max("peak", i);
            r.add_volatile("steals", 2);
        }
        let s = r.snapshot();
        assert_eq!(s.counter("runs"), 10);
        assert_eq!(s.gauge("peak"), 9);
        assert_eq!(s.volatile_counter("steals"), 20);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn snapshot_is_name_sorted_regardless_of_insertion_order() {
        let r = MetricsRegistry::with_shards(3);
        for name in ["z", "a", "m", "b"] {
            r.add(name, 1);
        }
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "m", "z"]);
    }

    #[test]
    fn concurrent_reporting_is_lossless() {
        let r = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for i in 0..1000u64 {
                        r.add("n", 1);
                        r.gauge_max("g", i);
                        r.observe("lat", Duration::from_nanos(i));
                    }
                });
            }
        });
        let s = r.snapshot();
        assert_eq!(s.counter("n"), 8000);
        assert_eq!(s.gauge("g"), 999);
        assert_eq!(s.histograms[0].1.count, 8000);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let mut h = Histogram::default();
        h.observe_ns(100);
        h.observe_ns(300);
        assert_eq!(h.count, 2);
        assert_eq!(h.mean_ns(), 200);
        assert_eq!(h.max_ns, 300);
    }

    #[test]
    fn span_ring_caps_and_counts_drops() {
        let r = MetricsRegistry::new();
        for _ in 0..SPAN_RING_CAPACITY + 10 {
            r.span_end("s", Duration::from_nanos(5));
        }
        let s = r.snapshot();
        assert_eq!(s.spans.recent.len(), SPAN_RING_CAPACITY);
        assert_eq!(s.spans.dropped, 10);
        assert_eq!(s.spans.aggregates[0].1.count, (SPAN_RING_CAPACITY + 10) as u64);
        // Oldest retained span is #10 (0-indexed seq).
        assert_eq!(s.spans.recent[0].seq, 10);
    }

    #[test]
    fn merge_combines_snapshots() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.add("x", 1);
        a.gauge_max("g", 5);
        b.add("x", 2);
        b.add("y", 7);
        b.gauge_max("g", 3);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.counter("x"), 3);
        assert_eq!(sa.counter("y"), 7);
        assert_eq!(sa.gauge("g"), 5);
    }

    #[test]
    fn histogram_quantiles_walk_cumulative_buckets() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile_ns(0.5), 0, "empty histogram");
        // 99 fast observations (~1 us) and one slow outlier (~1 ms).
        for _ in 0..99 {
            h.observe_ns(1_000);
        }
        h.observe_ns(1_000_000);
        let p50 = h.quantile_ns(0.5);
        let p99 = h.quantile_ns(0.99);
        assert!((1_000..=2_048).contains(&p50), "p50 in the fast bucket: {p50}");
        assert!(p99 <= 2_048, "99% of mass is fast: {p99}");
        assert_eq!(h.quantile_ns(1.0), 1_000_000, "p100 is the max");
        assert!(h.quantile_ns(0.0) > 0, "q=0 resolves to the first bucket");
    }

    #[test]
    fn digest_ignores_volatile_and_timing() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        for r in [&a, &b] {
            r.add("n", 4);
            r.gauge_max("g", 2);
        }
        a.add_volatile("steals", 9);
        a.observe("lat", Duration::from_millis(3));
        a.span_end("s", Duration::from_millis(1));
        assert_eq!(
            a.snapshot().deterministic_digest(),
            b.snapshot().deterministic_digest()
        );
        b.add("n", 1);
        assert_ne!(
            a.snapshot().deterministic_digest(),
            b.snapshot().deterministic_digest()
        );
    }
}
