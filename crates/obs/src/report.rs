//! [`ObsReport`] — the stable exported form of one observed campaign.
//!
//! The JSON document (`BENCH_obs.json`) has a versioned schema with a hard
//! determinism split:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "label": "...",
//!   "deterministic_digest": "0x...",       // over metrics + timeline
//!   "metrics":  { "counters": {..}, "gauges": {..} },        // stable
//!   "timeline": { "days": [..], "fix_latency": [..], .. },   // stable
//!   "timing":   { "volatile_counters": {..}, "histograms": {..},
//!                 "spans": {..} }          // wall-clock / placement
//! }
//! ```
//!
//! Everything under `metrics` and `timeline` is byte-identical across
//! worker counts and between live and replay execution; everything
//! wall-clock- or placement-derived is segregated under `timing` and
//! excluded from `deterministic_digest`. CI consumes the stable sections;
//! humans get the same data through [`ObsReport::dashboard`].

use std::fmt::Write as _;

use crate::registry::{Histogram, MetricsSnapshot};
use crate::timeline::TimelineReport;

/// Version of the `BENCH_obs.json` schema. Bump on any breaking change to
/// the stable sections; CI fails when the field is missing.
pub const SCHEMA_VERSION: u32 = 1;

/// One observed campaign, ready for export.
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// Human label for the run (e.g. `campaign/live` or `campaign/replay`).
    pub label: String,
    /// The merged metrics snapshot.
    pub snapshot: MetricsSnapshot,
    /// The campaign-dynamics timeline.
    pub timeline: TimelineReport,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn kv_object(out: &mut String, pairs: &[(String, u64)]) {
    out.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, r#""{}":{}"#, json_escape(k), v);
    }
    out.push('}');
}

fn histogram_json(out: &mut String, h: &Histogram) {
    let _ = write!(
        out,
        r#"{{"count":{},"total_ns":{},"max_ns":{},"mean_ns":{},"buckets":["#,
        h.count,
        h.total_ns,
        h.max_ns,
        h.mean_ns()
    );
    // Sparse encoding: [bucket_index, count] pairs for non-empty buckets.
    let mut first = true;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "[{i},{c}]");
    }
    out.push_str("]}");
}

impl ObsReport {
    /// A report from its parts.
    #[must_use]
    pub fn new(label: &str, snapshot: MetricsSnapshot, timeline: TimelineReport) -> Self {
        ObsReport {
            label: label.to_string(),
            snapshot,
            timeline,
        }
    }

    /// FNV-1a digest over the stable sections (metrics + timeline). Equal
    /// across worker counts; the timeline part is also equal between live
    /// and replay execution.
    #[must_use]
    pub fn deterministic_digest(&self) -> u64 {
        let mut h = self.snapshot.deterministic_digest();
        for b in self.timeline_json().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The `metrics` section (stable counters + gauges) as JSON.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        let mut s = String::from(r#"{"counters":"#);
        kv_object(&mut s, &self.snapshot.counters);
        s.push_str(r#","gauges":"#);
        kv_object(&mut s, &self.snapshot.gauges);
        s.push('}');
        s
    }

    /// The `timeline` section as JSON — all integers, byte-identical across
    /// worker counts and between live and replay execution.
    #[must_use]
    pub fn timeline_json(&self) -> String {
        let t = &self.timeline;
        let mut s = String::new();
        let _ = write!(
            s,
            r#"{{"observations":{},"total_filed":{},"total_fixed":{},"unique_races":{},"days":["#,
            t.observations, t.total_filed, t.total_fixed, t.unique_races
        );
        for (i, d) in t.days.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                r#"{{"day":{},"filed":{},"rediscovered":{},"fixed":{},"outstanding":{},"filed_cum":{},"fixed_cum":{},"unique_cum":{}}}"#,
                d.day,
                d.filed,
                d.rediscovered,
                d.fixed,
                d.outstanding,
                d.filed_cum,
                d.fixed_cum,
                d.unique_cum
            );
        }
        s.push_str(r#"],"fix_latency":["#);
        for (i, &(lat, n)) in t.fix_latency.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{lat},{n}]");
        }
        s.push_str("]}");
        s
    }

    /// The `timing` section (volatile counters, latency histograms, spans)
    /// as JSON. Wall-clock- and placement-derived; excluded from the
    /// digest.
    #[must_use]
    pub fn timing_json(&self) -> String {
        let mut s = String::from(r#"{"volatile_counters":"#);
        kv_object(&mut s, &self.snapshot.volatile_counters);
        s.push_str(r#","histograms":{"#);
        for (i, (k, h)) in self.snapshot.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, r#""{}":"#, json_escape(k));
            histogram_json(&mut s, h);
        }
        s.push_str(r#"},"spans":{"aggregates":{"#);
        for (i, (k, st)) in self.snapshot.spans.aggregates.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                r#""{}":{{"count":{},"total_ns":{},"max_ns":{}}}"#,
                json_escape(k),
                st.count,
                st.total_ns,
                st.max_ns
            );
        }
        let _ = write!(
            s,
            r#"}},"dropped":{},"recent":["#,
            self.snapshot.spans.dropped
        );
        for (i, r) in self.snapshot.spans.recent.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                r#"{{"seq":{},"name":"{}","dur_ns":{}}}"#,
                r.seq,
                json_escape(&r.name),
                r.dur_ns
            );
        }
        s.push_str("]}}");
        s
    }

    /// The full `BENCH_obs.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"schema_version":{},"label":"{}","deterministic_digest":"0x{:016x}","metrics":{},"timeline":{},"timing":{}}}"#,
            SCHEMA_VERSION,
            json_escape(&self.label),
            self.deterministic_digest(),
            self.metrics_json(),
            self.timeline_json(),
            self.timing_json(),
        )
    }

    /// The human `--dashboard` text view: metrics table, Figure-3/4
    /// timeline bars, span aggregates.
    #[must_use]
    pub fn dashboard(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "┌─ obs dashboard · {} ─", self.label);
        let _ = writeln!(s, "│ digest 0x{:016x}", self.deterministic_digest());
        let _ = writeln!(s, "│");
        let _ = writeln!(s, "│ metrics (deterministic)");
        for (k, v) in &self.snapshot.counters {
            let _ = writeln!(s, "│   {k:<32} {v:>12}");
        }
        for (k, v) in &self.snapshot.gauges {
            let _ = writeln!(s, "│   {k:<32} {v:>12}  (max)");
        }
        if !self.snapshot.volatile_counters.is_empty() {
            let _ = writeln!(s, "│ scheduling (placement-dependent)");
            for (k, v) in &self.snapshot.volatile_counters {
                let _ = writeln!(s, "│   {k:<32} {v:>12}");
            }
        }
        let t = &self.timeline;
        let _ = writeln!(s, "│");
        let _ = writeln!(
            s,
            "│ timeline · {} days · {} observations → {} filed, {} fixed, {} unique",
            t.days.len(),
            t.observations,
            t.total_filed,
            t.total_fixed,
            t.unique_races
        );
        let peak = t.days.iter().map(|d| d.outstanding).max().unwrap_or(0).max(1);
        for d in &t.days {
            let bar = "#".repeat((u64::from(d.outstanding) * 40 / u64::from(peak)) as usize);
            let _ = writeln!(
                s,
                "│   day {:>3} │ new {:>4} redisc {:>4} fixed {:>4} open {:>4} │ {bar}",
                d.day, d.filed, d.rediscovered, d.fixed, d.outstanding
            );
        }
        if !t.fix_latency.is_empty() {
            let _ = writeln!(
                s,
                "│ fix latency: mean {:.1} days, distribution {:?}",
                t.mean_fix_latency(),
                t.fix_latency
            );
        }
        if !self.snapshot.spans.aggregates.is_empty() {
            let _ = writeln!(s, "│");
            let _ = writeln!(s, "│ spans (wall-clock)");
            for (k, st) in &self.snapshot.spans.aggregates {
                let mean = st.total_ns.checked_div(st.count).unwrap_or(0);
                let _ = writeln!(
                    s,
                    "│   {k:<28} ×{:<8} mean {:>9} ns  max {:>9} ns",
                    st.count, mean, st.max_ns
                );
            }
        }
        if !self.snapshot.histograms.is_empty() {
            let _ = writeln!(s, "│ latency histograms (log₂ ns buckets, wall-clock)");
            for (k, h) in &self.snapshot.histograms {
                let _ = writeln!(
                    s,
                    "│   {k:<28} ×{:<8} mean {:>9} ns  p50 {:>9} ns  p99 {:>9} ns  max {:>9} ns",
                    h.count,
                    h.mean_ns(),
                    h.quantile_ns(0.5),
                    h.quantile_ns(0.99),
                    h.max_ns
                );
            }
        }
        s.push_str("└─\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use crate::sink::ObsSink;
    use crate::timeline::{CampaignTimeline, TimelineConfig};

    fn sample() -> ObsReport {
        let r = MetricsRegistry::new();
        r.add("campaign.runs", 12);
        r.gauge_max("depot.stacks", 33);
        r.add_volatile("sched.steals", 4);
        r.observe("run.wall", std::time::Duration::from_micros(250));
        r.span_end("shard.execute", std::time::Duration::from_micros(80));
        let mut t = CampaignTimeline::new(TimelineConfig::default_days().days(6));
        t.observe(0, 0xaa);
        t.observe(2, 0xbb);
        t.observe(3, 0xaa);
        ObsReport::new("test", r.snapshot(), t.finish())
    }

    #[test]
    fn json_has_schema_version_and_sections() {
        let json = sample().to_json();
        assert!(json.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},")));
        for key in [
            "\"metrics\":",
            "\"timeline\":",
            "\"timing\":",
            "\"deterministic_digest\":",
            "\"days\":[",
            "\"fix_latency\":[",
            "\"campaign.runs\":12",
            "\"sched.steals\":4",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn digest_covers_timeline_but_not_timing() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.deterministic_digest(), b.deterministic_digest());
        // Timing-only difference: digest unchanged.
        b.snapshot.volatile_counters[0].1 += 1;
        assert_eq!(a.deterministic_digest(), b.deterministic_digest());
        // Timeline difference: digest changes.
        let mut c = sample();
        c.timeline.days[0].filed += 1;
        assert_ne!(a.deterministic_digest(), c.deterministic_digest());
    }

    #[test]
    fn dashboard_renders_all_sections() {
        let d = sample().dashboard();
        for needle in [
            "obs dashboard",
            "metrics (deterministic)",
            "campaign.runs",
            "timeline",
            "day   0",
            "spans (wall-clock)",
            "shard.execute",
        ] {
            assert!(d.contains(needle), "dashboard missing {needle:?}:\n{d}");
        }
    }

    #[test]
    fn timeline_json_is_all_integers() {
        let tj = sample().timeline_json();
        assert!(!tj.contains('.'), "timeline must not carry floats: {tj}");
    }
}
