//! The [`ObsSink`] trait — the one reporting surface every layer speaks.
//!
//! Before this crate, each layer of the campaign stack grew its own stats
//! grab-bag: the runtime returned `MonitorStats`, the replay engine summed
//! `ReplayStats`, the campaign engine hand-rolled counters on
//! `CampaignResult`. `ObsSink` replaces those ad-hoc surfaces with one
//! composable API: a producer (runtime monitor, replay analyzer, shard
//! worker, intake pipeline) reports named observations; a sink (usually a
//! [`MetricsRegistry`](crate::MetricsRegistry)) aggregates them.
//!
//! The API enforces the determinism split at the type level:
//!
//! * [`ObsSink::add`] / [`ObsSink::gauge_max`] are for **stable** metrics —
//!   values derived only from the deterministic run outputs (event counts,
//!   race tallies, shadow-state maxima). Sums and maxima are
//!   order-independent, so the aggregate is byte-identical for any worker
//!   count. Stable metrics feed the deterministic digest.
//! * [`ObsSink::add_volatile`] is for **placement-dependent** counters
//!   (work steals, per-worker tallies) that legitimately vary run to run.
//! * [`ObsSink::observe`] and [`ObsSink::span_end`] carry **wall-clock**
//!   durations. They land in log-scaled histograms and the span ring
//!   buffer, both exported in a segregated `timing` section that is
//!   excluded from the digest.

use std::time::{Duration, Instant};

/// A consumer of named observations from any layer of the stack.
///
/// Implementations must be cheap and lock-sharded (or lock-free): sinks are
/// called from every campaign worker thread on the run hot path.
pub trait ObsSink: Send + Sync {
    /// Adds `delta` to the stable counter `name`. Stable counters must be
    /// derived only from deterministic run outputs; they are included in
    /// the deterministic digest.
    fn add(&self, name: &str, delta: u64);

    /// Adds `delta` to the placement-dependent counter `name` (steal
    /// counts, per-worker tallies). Excluded from the deterministic digest.
    fn add_volatile(&self, name: &str, delta: u64);

    /// Raises the stable max-gauge `name` to at least `value`. Maxima are
    /// order-independent, so gauges stay deterministic across worker
    /// counts.
    fn gauge_max(&self, name: &str, value: u64);

    /// Records one wall-clock duration observation into the log-scaled
    /// histogram `name`. Excluded from the deterministic digest.
    fn observe(&self, name: &str, duration: Duration);

    /// Records the completion of span `name` (ring buffer + per-span-name
    /// aggregate). Excluded from the deterministic digest. Usually called
    /// via [`SpanGuard`] rather than directly.
    fn span_end(&self, name: &str, duration: Duration);
}

/// A sink that drops everything — the zero-overhead default for callers
/// that did not attach observability.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ObsSink for NullSink {
    fn add(&self, _name: &str, _delta: u64) {}
    fn add_volatile(&self, _name: &str, _delta: u64) {}
    fn gauge_max(&self, _name: &str, _value: u64) {}
    fn observe(&self, _name: &str, _duration: Duration) {}
    fn span_end(&self, _name: &str, _duration: Duration) {}
}

/// A shared no-op sink for default arguments.
pub static NULL_SINK: NullSink = NullSink;

/// RAII span: measures from construction to drop and reports the completed
/// span into the sink.
///
/// # Example
///
/// ```
/// use grs_obs::{MetricsRegistry, SpanGuard};
///
/// let registry = MetricsRegistry::new();
/// {
///     let _span = SpanGuard::enter(&registry, "detector.analyze");
///     // ... work ...
/// }
/// assert_eq!(registry.snapshot().spans.aggregates[0].0, "detector.analyze");
/// ```
pub struct SpanGuard<'a> {
    sink: &'a dyn ObsSink,
    name: &'a str,
    started: Instant,
}

impl std::fmt::Debug for SpanGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .field("started", &self.started)
            .finish_non_exhaustive()
    }
}

impl<'a> SpanGuard<'a> {
    /// Starts a span named `name` reporting into `sink` on drop.
    #[must_use]
    pub fn enter(sink: &'a dyn ObsSink, name: &'a str) -> Self {
        SpanGuard {
            sink,
            name,
            started: Instant::now(),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.sink.span_end(self.name, self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_accepts_everything() {
        let s = NullSink;
        s.add("a", 1);
        s.add_volatile("b", 2);
        s.gauge_max("c", 3);
        s.observe("d", Duration::from_millis(1));
        {
            let _g = SpanGuard::enter(&s, "e");
        }
    }
}
