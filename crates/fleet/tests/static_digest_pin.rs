//! Pins the static-matrix campaign digest across refactors.
//!
//! The coverage-guided exploration layer refactored the scheduler from a
//! stateless `Strategy` dispatch into policy objects plus decision
//! recording. The static `(unit × seed × strategy × detector)` matrix must
//! stay bit-identical through that refactor: these digests were captured
//! from the pre-refactor engine and any drift here means the policy
//! objects consume the RNG differently (or the campaign enumeration
//! changed), which would invalidate every filed `ReproArtifact`.

use grs_detector::DetectorChoice;
use grs_fleet::{pattern_suite, Campaign, CampaignConfig};
use grs_runtime::Strategy;

fn pinned_campaign() -> Campaign {
    let units = pattern_suite(true)
        .into_iter()
        .filter(|u| {
            u.name.starts_with("loop_index_capture") || u.name.starts_with("missing_lock")
        })
        .collect();
    let config = CampaignConfig::smoke()
        .seeds_per_unit(4)
        .base_seed(1)
        .strategies(vec![
            Strategy::Random,
            Strategy::Pct { depth: 3 },
            Strategy::RoundRobin,
        ])
        .detectors(vec![DetectorChoice::Hybrid, DetectorChoice::FastTrack])
        .workers(1)
        .shards(2);
    Campaign::over_units(config, units)
}

/// Captured from the pre-refactor engine (commit de8f6ce). The static
/// matrix — including PCT change-point placement under the default
/// `pct_steps_hint` — must reproduce it bit-for-bit.
const PINNED_DIGEST64: u64 = 0x7e3c_5329_1993_70a5;

#[test]
fn static_matrix_digest_is_bit_identical_to_pre_refactor() {
    let r = pinned_campaign().run();
    assert_eq!(r.units_skipped, 0);
    assert_eq!(
        r.digest64(),
        PINNED_DIGEST64,
        "static-matrix campaign drifted from the pre-refactor engine"
    );
}
