//! Fleet-scale execution: the concurrency census and the campaign engine.
//!
//! Two halves of the paper's "at scale" story live here:
//!
//! * [`census`] — the datacenter fleet concurrency census behind Figure 1
//!   (Observation 2): per-language thread/goroutine distributions and their
//!   CDFs, sampled from bucket models calibrated to the paper's reading.
//! * [`campaign`] — the §3.3 nightly deployment loop made executable: a
//!   work-stealing, sharded campaign runner that fans the
//!   `(program × seed × strategy × detector)` matrix over N OS worker
//!   threads, funnels every race through a concurrent fingerprint-keyed
//!   dedup stage ([`dedup::DedupMap`]), and hands the deduplicated batch to
//!   `grs_deploy::Pipeline` for filing.
//!
//! Each campaign run is a self-contained deterministic
//! [`Runtime`](grs_runtime::Runtime) instance, which is what makes the
//! parallel engine trustworthy: the campaign's records and deduped batch
//! are *identical* for any worker count — proven by the differential test
//! harness (`tests/detector_differential.rs`, `tests/determinism.rs` at the
//! workspace root).
//!
//! # Example
//!
//! ```
//! use grs_fleet::{Campaign, CampaignConfig};
//!
//! let campaign = Campaign::over_patterns(CampaignConfig::smoke().seeds_per_unit(2));
//! let result = campaign.run();
//! assert_eq!(result.total_runs(), campaign.matrix_len());
//! assert!(result.detection_rate() > 0.0, "the racy patterns must fire");
//! ```

pub mod campaign;
pub mod census;
pub mod dedup;
pub mod shard;
pub mod source;
pub mod triage;

pub use campaign::{
    corpus_suite, pattern_suite, Campaign, CampaignConfig, CampaignResult, CampaignUnit,
    ReplayStats, RunRecord, ShardStats, MAX_CONVERGENCE_POINTS, MAX_SKIP_REASONS,
};
pub use census::{census, Cdf, Census, CensusConfig, Language, LanguageSample};
pub use dedup::DedupMap;
pub use shard::{ExecSpec, IndexQueues, RunSpec, ShardQueues};
pub use source::{
    lower_source_unit, GoCorpusSource, GoSnippetSuite, UnitCache, UnitError, UnitList, UnitSource,
};
pub use triage::{run_triage, triage_suite, TriageConfig, TriageOutcome, TriageUnit};

/// The types every fleet user imports, for `use grs_fleet::prelude::*`.
pub mod prelude {
    pub use crate::campaign::{
        corpus_suite, pattern_suite, Campaign, CampaignConfig, CampaignResult, CampaignUnit,
        RunRecord,
    };
    pub use crate::dedup::DedupMap;
    pub use crate::shard::{ExecSpec, IndexQueues, RunSpec, ShardQueues};
    pub use crate::source::{GoCorpusSource, GoSnippetSuite, UnitError, UnitList, UnitSource};
}
