//! Static-findings-guided campaign triage.
//!
//! The study's §3.3 deployment runs the dynamic detector over everything,
//! every night. A static pass is cheap by comparison — so before spending
//! executions, rank the campaign's programs by what the lint engine
//! (`grs-golite`, rules `GR001`–`GR018`) reports on their Go sources:
//! programs whose source carries error-severity findings are executed
//! first, warning-only programs next, clean programs last. The benchmark
//! metric is **executions to first race** — how many `(program × seed)`
//! runs the campaign burns before the dynamic detector confirms its first
//! race — compared between plain spec-index order and the triaged order.
//!
//! The unit corpus is the Go-rendition corpus (`grs_patterns::gosrc`):
//! every rendition contributes its racy and its fixed twin, so the ranking
//! has something real to separate — the fixed sources lint clean and sink
//! to the back of the queue.

use grs_detector::DetectorChoice;
use grs_golite::{lint_file, parse_file, Severity};
use grs_runtime::{Program, RunConfig};

/// Per-finding priors: an error-severity finding signals a documented
/// production race shape, a warning a heuristic one.
const ERROR_PRIOR: f64 = 3.0;
const WARNING_PRIOR: f64 = 1.0;

/// One triageable program: an executable unit plus the lint score of its
/// Go source.
#[derive(Debug, Clone)]
pub struct TriageUnit {
    /// Display name (`<pattern_id>/racy` or `/fixed`).
    pub name: String,
    /// The executable program.
    pub program: Program,
    /// Summed static prior of the unit's Go source.
    pub score: f64,
    /// Ground truth, for reporting only — the ranking never sees it.
    pub expected_racy: bool,
}

/// The summed prior of every lint finding on `src` (0.0 when the source
/// fails to parse — an unparseable unit earns no priority).
#[must_use]
pub fn lint_score(src: &str) -> f64 {
    let Ok(file) = parse_file(src) else { return 0.0 };
    lint_file(&file)
        .iter()
        .map(|f| match f.rule.severity() {
            Severity::Error => ERROR_PRIOR,
            Severity::Warning => WARNING_PRIOR,
        })
        .sum()
}

/// The rendition corpus as triage units: racy and fixed twins of every
/// `GR001`–`GR018` rendition, sorted by name (the deterministic baseline
/// order), each scored by linting its Go source.
#[must_use]
pub fn triage_suite() -> Vec<TriageUnit> {
    let mut units = Vec::new();
    for r in grs_patterns::gosrc::renditions() {
        let p = grs_patterns::find(r.pattern_id)
            .unwrap_or_else(|| panic!("rendition {} has no executable twin", r.pattern_id));
        units.push(TriageUnit {
            name: format!("{}/racy", r.pattern_id),
            program: p.racy_program(),
            score: lint_score(r.racy),
            expected_racy: true,
        });
        units.push(TriageUnit {
            name: format!("{}/fixed", r.pattern_id),
            program: p.fixed_program(),
            score: lint_score(r.fixed),
            expected_racy: false,
        });
    }
    units.sort_by(|a, b| a.name.cmp(&b.name));
    units
}

/// Triage configuration.
#[derive(Debug, Clone, Copy)]
pub struct TriageConfig {
    /// Schedule seeds per unit (seeds enumerate innermost).
    pub seeds_per_unit: u64,
    /// First seed of every unit's block.
    pub base_seed: u64,
}

impl Default for TriageConfig {
    fn default() -> Self {
        TriageConfig {
            seeds_per_unit: 4,
            base_seed: 1,
        }
    }
}

/// Result of one triage benchmark: the same spec matrix executed in two
/// orders, counting executions until the first dynamically-confirmed race.
#[derive(Debug, Clone)]
pub struct TriageOutcome {
    /// Total `(unit × seed)` specs in the matrix.
    pub total_specs: usize,
    /// 1-based execution count to the first race in name/spec-index order
    /// (`None`: no race in the whole matrix).
    pub baseline_executions: Option<usize>,
    /// 1-based execution count to the first race in triaged order.
    pub triage_executions: Option<usize>,
    /// Name of the unit whose run produced the triaged first race.
    pub first_race_unit: Option<String>,
}

impl TriageOutcome {
    /// `triage_executions / baseline_executions`; `None` when either
    /// order never found a race.
    #[must_use]
    pub fn ratio(&self) -> Option<f64> {
        match (self.triage_executions, self.baseline_executions) {
            #[allow(clippy::cast_precision_loss)]
            (Some(t), Some(b)) if b > 0 => Some(t as f64 / b as f64),
            _ => None,
        }
    }

    /// The outcome as a JSON object (hand-rolled, like every serializer
    /// in this workspace).
    #[must_use]
    pub fn to_json(&self) -> String {
        let opt = |v: Option<usize>| v.map_or_else(|| "null".to_string(), |n| n.to_string());
        let ratio = self
            .ratio()
            .map_or_else(|| "null".to_string(), |r| format!("{r:.4}"));
        let unit = self.first_race_unit.as_ref().map_or_else(
            || "null".to_string(),
            |u| format!("\"{}\"", u.replace('"', "\\\"")),
        );
        format!(
            concat!(
                "{{\"total_specs\":{},",
                "\"baseline_executions_to_first_race\":{},",
                "\"triage_executions_to_first_race\":{},",
                "\"ratio\":{},",
                "\"first_race_unit\":{}}}"
            ),
            self.total_specs,
            opt(self.baseline_executions),
            opt(self.triage_executions),
            ratio,
            unit,
        )
    }
}

/// The triaged unit order: descending lint score, name order within a
/// score band — a stable, ground-truth-blind permutation of `units`.
#[must_use]
pub fn triage_order(units: &[TriageUnit]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by(|&a, &b| {
        units[b]
            .score
            .partial_cmp(&units[a].score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(&b))
    });
    order
}

/// Runs the triage benchmark over [`triage_suite`]: executes the
/// `(unit × seed)` matrix serially under the hybrid detector, in baseline
/// order and in triaged order, and reports executions-to-first-race for
/// both.
#[must_use]
pub fn run_triage(cfg: &TriageConfig) -> TriageOutcome {
    let units = triage_suite();
    let baseline: Vec<usize> = (0..units.len()).collect();
    let triaged = triage_order(&units);

    let first_race = |order: &[usize]| -> Option<(usize, usize)> {
        let mut executed = 0;
        for &u in order {
            for k in 0..cfg.seeds_per_unit {
                executed += 1;
                let rc = RunConfig::with_seed(cfg.base_seed + k);
                let (_, reports) = DetectorChoice::Hybrid.run(&units[u].program, rc);
                if !reports.is_empty() {
                    return Some((executed, u));
                }
            }
        }
        None
    };

    let base = first_race(&baseline);
    let tri = first_race(&triaged);
    TriageOutcome {
        total_specs: units.len() * usize::try_from(cfg.seeds_per_unit).unwrap_or(usize::MAX),
        baseline_executions: base.map(|(n, _)| n),
        triage_executions: tri.map(|(n, _)| n),
        first_race_unit: tri.map(|(_, u)| units[u].name.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn racy_sources_outscore_their_fixes() {
        let units = triage_suite();
        assert_eq!(units.len(), 36, "18 renditions, two variants each");
        for pair in units.chunks(2) {
            let (fixed, racy) = (&pair[0], &pair[1]);
            assert!(fixed.name.ends_with("/fixed") && racy.name.ends_with("/racy"));
            assert!(
                racy.score > fixed.score,
                "{}: racy {} !> fixed {}",
                racy.name,
                racy.score,
                fixed.score
            );
        }
    }

    #[test]
    fn triage_order_puts_racy_units_first() {
        let units = triage_suite();
        let order = triage_order(&units);
        let n_racy = units.iter().filter(|u| u.expected_racy).count();
        for &u in &order[..n_racy] {
            assert!(
                units[u].score > 0.0,
                "{} ranked in the top band with score 0",
                units[u].name
            );
        }
    }

    #[test]
    fn triage_halves_executions_to_first_race() {
        let out = run_triage(&TriageConfig::default());
        let ratio = out.ratio().expect("both orders must find a race");
        assert!(
            ratio <= 0.5,
            "triage must reach the first race in half the executions: {} vs {} ({ratio})",
            out.triage_executions.unwrap_or(0),
            out.baseline_executions.unwrap_or(0),
        );
        let json = out.to_json();
        assert!(json.contains("\"ratio\":"), "{json}");
    }
}
