//! Campaign orchestration: fan the run matrix over workers, dedup, file.
//!
//! This is the §3.3 nightly run modeled end to end. The paper's deployment
//! SSH-fans ~100K unit tests (each rerun under the race detector) across a
//! datacenter, collects the race reports, deduplicates by fingerprint, and
//! files tasks. Here:
//!
//! * the **matrix** is `(unit × seed × strategy × detector)`, enumerated
//!   deterministically into [`RunSpec`]s;
//! * the **fan-out** is [`ShardQueues`]: specs dealt over shard queues,
//!   popped by a pool of OS worker threads with work stealing;
//! * the **dedup stage** is [`DedupMap`]: fingerprint-sharded concurrent
//!   aggregation with deterministic representatives;
//! * the **filing** is [`grs_deploy::Pipeline`] via
//!   [`RaceBatch`](grs_deploy::RaceBatch) batched intake.
//!
//! Every run is a self-contained deterministic `Runtime` instance, so the
//! campaign's deterministic output — run records and the deduped batch — is
//! identical for any worker count, including 1 (the serial path). Only
//! wall-clock changes.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use grs_deploy::{race_fingerprint, FileOutcome, Fingerprint, RaceBatch};
#[allow(deprecated)]
use grs_deploy::Pipeline;
use grs_detector::{default_workers, DetectorArena, DetectorChoice, ScheduleFrontier};
use grs_obs::{CampaignTimeline, MetricsRegistry, ObsReport, ObsSink, SpanGuard, TimelineConfig};
use grs_runtime::{
    calibrate_steps, record_with_depot, DecodedTrace, Program, ReproArtifact, RunConfig,
    Strategy, DEFAULT_CHUNK_EVENTS,
};

use crate::dedup::DedupMap;
use crate::shard::{ExecSpec, IndexQueues, RunSpec};
use crate::source::{GoSnippetSuite, UnitCache, UnitError, UnitList, UnitSource, UNIT_CACHE_CAP};

/// One campaignable program.
#[derive(Debug, Clone)]
pub struct CampaignUnit {
    /// Display name (pattern id or listing name, `/racy` or `/fixed`).
    pub name: String,
    /// The executable program.
    pub program: Program,
    /// Ground truth, when known: does the unit contain a race?
    pub expected_racy: Option<bool>,
}

/// The full §4 pattern corpus as campaign units.
///
/// Racy variants always; fixed variants too when `include_fixed` — the
/// fixed twins are the campaign's false-positive control group.
#[must_use]
pub fn pattern_suite(include_fixed: bool) -> Vec<CampaignUnit> {
    let mut units = Vec::new();
    for p in grs_patterns::registry() {
        units.push(CampaignUnit {
            name: format!("{}/racy", p.id),
            program: p.racy_program(),
            expected_racy: Some(true),
        });
        if include_fixed {
            units.push(CampaignUnit {
                name: format!("{}/fixed", p.id),
                program: p.fixed_program(),
                expected_racy: Some(false),
            });
        }
    }
    units
}

/// Go-source units compiled through the `grs-interp` frontend — the
/// campaign's "run the real test corpus" modality, next to the Rust-closure
/// pattern suite. Adapted from the paper's listings.
///
/// The sources live in [`grs_corpus::go_snippets`] and lower through the
/// same [`crate::source::lower_source_unit`] path as the generated corpus
/// ([`crate::source::GoCorpusSource`]) — one code path from Go source to
/// campaign unit. The embedded snippets are part of the build, so a
/// lowering failure here is a programming error and panics.
#[must_use]
pub fn corpus_suite() -> Vec<CampaignUnit> {
    let suite = GoSnippetSuite::new();
    (0..suite.len())
        .map(|i| {
            suite
                .build(i)
                .unwrap_or_else(|e| panic!("embedded snippet must lower: {e}"))
        })
        .collect()
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds per `(unit, strategy, detector)` combination; seed `s` of a
    /// unit is `base_seed + s`.
    pub seeds_per_unit: usize,
    /// First seed.
    pub base_seed: u64,
    /// Scheduling strategies to cross in.
    pub strategies: Vec<Strategy>,
    /// Detection algorithms to cross in.
    pub detectors: Vec<DetectorChoice>,
    /// OS worker threads (1 = serial).
    pub workers: usize,
    /// Shard queues for the scheduler and the dedup map.
    pub shards: usize,
    /// Per-run step budget.
    pub max_steps: u64,
    /// Virtual campaign days the timeline section buckets the spec axis
    /// into (see [`grs_obs::CampaignTimeline`]).
    pub timeline_days: u32,
    /// Route every run/replay through the **legacy** HashMap-shadow
    /// detectors instead of the flat ones. The field always exists so
    /// configs serialize/compare uniformly, but flipping it on requires the
    /// test-only `oracle` feature — without it the campaign panics at
    /// arena construction. Used by the flat-shadow equivalence suite and
    /// the `bench_events --mode oracle` runs.
    pub oracle_shadow: bool,
}

impl CampaignConfig {
    /// The smoke defaults — the entry point of the builder API, which is
    /// the **stable** way to construct a config:
    ///
    /// ```
    /// use grs_fleet::CampaignConfig;
    ///
    /// let cfg = CampaignConfig::new().seeds_per_unit(16).workers(4);
    /// assert_eq!(cfg.seeds_per_unit, 16);
    /// ```
    ///
    /// The fields stay `pub` for matching and ad-hoc tweaks, but new knobs
    /// are only guaranteed to get builder methods; struct-literal
    /// construction may break when fields are added.
    #[must_use]
    pub fn new() -> Self {
        Self::smoke()
    }

    /// A small smoke campaign: 8 seeds, random walks, hybrid detector.
    #[must_use]
    pub fn smoke() -> Self {
        CampaignConfig {
            seeds_per_unit: 8,
            base_seed: 1,
            strategies: vec![Strategy::Random],
            detectors: vec![DetectorChoice::Hybrid],
            workers: default_workers(),
            shards: 2 * default_workers(),
            max_steps: 1_000_000,
            timeline_days: 30,
            oracle_shadow: false,
        }
    }

    /// The nightly-scale configuration: 32 seeds, random + PCT walks,
    /// hybrid detector.
    #[must_use]
    pub fn nightly() -> Self {
        CampaignConfig {
            seeds_per_unit: 32,
            strategies: vec![Strategy::Random, Strategy::Pct { depth: 2 }],
            ..CampaignConfig::smoke()
        }
    }

    /// Sets the seed count (builder style).
    #[must_use]
    pub fn seeds_per_unit(mut self, n: usize) -> Self {
        self.seeds_per_unit = n;
        self
    }

    /// Sets the worker count, clamped to at least 1 (builder style).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Sets the shard count, clamped to at least 1 (builder style).
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Sets the base seed (builder style).
    #[must_use]
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the detector list (builder style).
    #[must_use]
    pub fn detectors(mut self, detectors: Vec<DetectorChoice>) -> Self {
        self.detectors = detectors;
        self
    }

    /// Sets the strategy list (builder style).
    #[must_use]
    pub fn strategies(mut self, strategies: Vec<Strategy>) -> Self {
        self.strategies = strategies;
        self
    }

    /// Sets the per-run step budget (builder style).
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the timeline day count, clamped to at least 1 (builder style).
    #[must_use]
    pub fn timeline_days(mut self, days: u32) -> Self {
        self.timeline_days = days.max(1);
        self
    }

    /// Routes the campaign through the legacy HashMap-shadow oracle
    /// detectors (builder style). Requires the `oracle` feature at
    /// execution time; see [`CampaignConfig::oracle_shadow`].
    #[must_use]
    pub fn oracle_shadow(mut self, oracle: bool) -> Self {
        self.oracle_shadow = oracle;
        self
    }

    /// Total runs this configuration produces over `units` units.
    #[must_use]
    pub fn matrix_size(&self, units: usize) -> usize {
        units * self.seeds_per_unit * self.strategies.len() * self.detectors.len()
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self::smoke()
    }
}

/// The deterministic outcome of one run, tagged with nondeterministic
/// placement/timing metadata (worker, shard, duration).
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The spec that produced this record.
    pub spec: RunSpec,
    /// Name of the unit executed.
    pub unit_name: String,
    /// True when the run reported at least one race.
    pub racy: bool,
    /// Sorted, deduplicated fingerprints of the run's reports.
    pub fingerprints: Vec<Fingerprint>,
    /// Scheduler steps executed.
    pub steps: u64,
    /// Monitor events dispatched during the run (deterministic).
    pub events: u64,
    /// Distinct interned stacks in the run's depot at run end
    /// (deterministic).
    pub depot_stacks: usize,
    /// Peak shadow-word footprint of the run's detector (deterministic).
    pub peak_shadow_words: usize,
    /// Which worker executed the run (placement metadata; not
    /// deterministic).
    pub worker: usize,
    /// Which shard queue the spec was popped from (not deterministic).
    pub shard: usize,
    /// Run duration (not deterministic).
    pub duration: Duration,
}

impl RunRecord {
    /// The deterministic projection of the record — equal across campaigns
    /// with any worker/shard configuration.
    #[must_use]
    pub fn key(&self) -> (usize, &str, u64, bool, &[Fingerprint], u64) {
        (
            self.spec.index,
            &self.unit_name,
            self.spec.seed,
            self.racy,
            &self.fingerprints,
            self.steps,
        )
    }
}

/// Per-shard aggregate latency (how balanced the stealing kept the load).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Shard id.
    pub shard: usize,
    /// Runs popped from this shard.
    pub runs: usize,
    /// Total time spent executing them.
    pub total: Duration,
    /// The slowest single run.
    pub max: Duration,
}

/// Aggregate counters of an execute-once replay campaign
/// ([`Campaign::run_replay`]): how many schedule executions were recorded,
/// how many offline detector analyses they fanned into, and how big the
/// trace artifacts were. Wall figures are summed across workers (CPU-time
/// style), so they compare record cost against replay cost directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Schedule executions recorded (one per `(unit, seed, strategy)`).
    pub executions: usize,
    /// Offline detector analyses fanned out from those traces.
    pub replays: usize,
    /// Total events across all recorded traces.
    pub trace_events: u64,
    /// Total encoded `.grtrace` bytes across all traces.
    pub trace_bytes_total: u64,
    /// Largest single encoded trace, in bytes.
    pub trace_bytes_max: usize,
    /// Time spent executing + recording + encoding, summed across workers.
    pub record_wall: Duration,
    /// Time spent in offline detector replays, summed across workers.
    pub replay_wall: Duration,
    /// SoA chunks the batch decoder produced across all traces (one decode
    /// per execution, shared by every analysis fanned from it).
    pub decode_batches: u64,
    /// Events decoded through the batch path (equals `trace_events` — the
    /// whole stream goes through chunks; kept separate so the invariant is
    /// checkable in exports).
    pub batch_events: u64,
}

impl ReplayStats {
    fn merge(&mut self, other: &ReplayStats) {
        self.executions += other.executions;
        self.replays += other.replays;
        self.trace_events += other.trace_events;
        self.trace_bytes_total += other.trace_bytes_total;
        self.trace_bytes_max = self.trace_bytes_max.max(other.trace_bytes_max);
        self.record_wall += other.record_wall;
        self.replay_wall += other.replay_wall;
        self.decode_batches += other.decode_batches;
        self.batch_events += other.batch_events;
    }

    /// Mean batch fill rate: events per produced chunk, as a fraction of
    /// the chunk capacity used for decoding (1.0 = every chunk full).
    #[must_use]
    pub fn batch_fill_rate(&self, chunk_capacity: usize) -> f64 {
        if self.decode_batches == 0 || chunk_capacity == 0 {
            return 0.0;
        }
        self.batch_events as f64 / (self.decode_batches * chunk_capacity as u64) as f64
    }

    /// Mean encoded trace size in bytes (0 when nothing was recorded).
    #[must_use]
    pub fn avg_trace_bytes(&self) -> u64 {
        if self.executions == 0 {
            0
        } else {
            self.trace_bytes_total / self.executions as u64
        }
    }
}

/// Upper bound on [`CampaignResult::convergence`] sample points.
pub const MAX_CONVERGENCE_POINTS: usize = 128;

/// How many [`UnitError`]s a campaign keeps as evidence; the rest are
/// counted but dropped.
pub const MAX_SKIP_REASONS: usize = 16;

/// Shared skip accounting: which units failed to lower, and why (first
/// few). Workers may discover the same broken unit concurrently or
/// repeatedly (once per spec); the set dedups, so `units_skipped` counts
/// units, not specs.
#[derive(Debug, Default)]
struct SkipLog {
    units: BTreeSet<usize>,
    reasons: Vec<UnitError>,
}

impl SkipLog {
    fn record(&mut self, err: UnitError) {
        if self.units.insert(err.unit) && self.reasons.len() < MAX_SKIP_REASONS {
            self.reasons.push(err);
        }
    }
}

/// A finished campaign.
#[derive(Debug)]
pub struct CampaignResult {
    /// One record per run, sorted by spec index (deterministic order).
    pub records: Vec<RunRecord>,
    /// The deduplicated race batch (deterministic).
    pub batch: RaceBatch,
    /// Unit names, in matrix order.
    pub units: Vec<String>,
    /// Units whose lowering failed: every spec of such a unit was skipped
    /// (no record, no counters), the failure was counted here, and the
    /// campaign ran on. Deterministic — a function of the unit source
    /// alone, never of worker count.
    pub units_skipped: usize,
    /// The first [`MAX_SKIP_REASONS`] skip reasons, as evidence for logs
    /// and CI gates.
    pub skip_reasons: Vec<UnitError>,
    /// Worker threads used.
    pub workers: usize,
    /// Shard count used.
    pub shards: usize,
    /// End-to-end wall-clock time.
    pub wall: Duration,
    /// Record/replay counters when the campaign ran execute-once
    /// ([`Campaign::run_replay`]); `None` for execute-per-detector runs.
    pub replay: Option<ReplayStats>,
    /// The campaign's observability report: stable metrics, span/latency
    /// timing, and the §3.5 campaign-dynamics timeline — ready to export
    /// as `BENCH_obs.json` ([`ObsReport::to_json`]) or render as a text
    /// dashboard ([`ObsReport::dashboard`]).
    pub obs: ObsReport,
}

impl CampaignResult {
    /// Total runs executed.
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.records.len()
    }

    /// Runs that reported at least one race.
    #[must_use]
    pub fn racy_runs(&self) -> usize {
        self.records.iter().filter(|r| r.racy).count()
    }

    /// Fraction of runs that reported a race (0 when no runs executed).
    ///
    /// Derived from the campaign's monotonic counters (`campaign.runs`,
    /// `campaign.racy_runs`) rather than re-counting records, so this rate
    /// and [`CampaignResult::events_per_sec`] share one counter source and
    /// every exported benchmark agrees on the denominator. The counters
    /// are stable (identical across worker counts and live/replay); the
    /// record-derived figures equal them by construction, which
    /// `counters_agree_with_records` pins.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        let runs = self.obs.snapshot.counter("campaign.runs");
        if runs == 0 {
            0.0
        } else {
            self.obs.snapshot.counter("campaign.racy_runs") as f64 / runs as f64
        }
    }

    /// Runs per second of wall-clock time.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.records.len() as f64 / secs
        }
    }

    /// Total monitor events dispatched across all runs (deterministic).
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.records.iter().map(|r| r.events).sum()
    }

    /// Monitor events per second of wall-clock time — the hot-path
    /// throughput figure the interned-stack event model optimizes.
    ///
    /// The numerator is the `runtime.events` monotonic counter — the same
    /// source [`CampaignResult::detection_rate`] draws its denominator
    /// family from — so `BENCH_replay.json` and `BENCH_overhead.json`
    /// report rates over one consistent event count.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.obs.snapshot.counter("runtime.events") as f64 / secs
        }
    }

    /// The largest per-run depot (distinct interned stacks) in the
    /// campaign.
    #[must_use]
    pub fn max_depot_stacks(&self) -> usize {
        self.records.iter().map(|r| r.depot_stacks).max().unwrap_or(0)
    }

    /// The largest per-run shadow-word footprint in the campaign.
    #[must_use]
    pub fn peak_shadow_words(&self) -> usize {
        self.records
            .iter()
            .map(|r| r.peak_shadow_words)
            .max()
            .unwrap_or(0)
    }

    /// Per-shard latency aggregates, by shard id.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let mut stats: Vec<ShardStats> = (0..self.shards)
            .map(|shard| ShardStats {
                shard,
                runs: 0,
                total: Duration::ZERO,
                max: Duration::ZERO,
            })
            .collect();
        for r in &self.records {
            let s = &mut stats[r.shard];
            s.runs += 1;
            s.total += r.duration;
            s.max = s.max.max(r.duration);
        }
        stats
    }

    /// Detection-rate convergence: the cumulative number of distinct
    /// fingerprints seen after N runs (in spec order) — the §3.2 story in
    /// one curve: more reruns keep exposing new schedule-dependent races
    /// until the campaign saturates.
    ///
    /// The curve is sampled down to at most [`MAX_CONVERGENCE_POINTS`]
    /// evenly spaced points (the final run always included), so its size
    /// is bounded at any campaign scale. Sampling is a pure function of
    /// the record count, so the curve stays identical across worker
    /// counts.
    #[must_use]
    pub fn convergence(&self) -> Vec<(usize, usize)> {
        self.convergence_sampled(MAX_CONVERGENCE_POINTS)
    }

    /// [`CampaignResult::convergence`] with a caller-chosen point cap.
    #[must_use]
    pub fn convergence_sampled(&self, max_points: usize) -> Vec<(usize, usize)> {
        let total = self.records.len();
        if total == 0 {
            return Vec::new();
        }
        let step = total.div_ceil(max_points.max(1));
        let mut seen = BTreeSet::new();
        let mut points = Vec::with_capacity(total / step + 1);
        for (i, r) in self.records.iter().enumerate() {
            seen.extend(r.fingerprints.iter().copied());
            if (i + 1) % step == 0 || i + 1 == total {
                points.push((i + 1, seen.len()));
            }
        }
        points
    }

    /// The unsampled convergence curve — one point per run. The scheduler
    /// ablation compares executions-to-N-races across strategies, which
    /// the [`MAX_CONVERGENCE_POINTS`] sampling would quantize; exports
    /// that need exact crossover indices use this instead.
    #[must_use]
    pub fn convergence_full(&self) -> Vec<(usize, usize)> {
        self.convergence_sampled(usize::MAX)
    }

    /// The first run count at which `n` distinct fingerprints were known
    /// (from the unsampled curve), or `None` if the campaign never got
    /// there — the executions-to-parity metric of the scheduler ablation.
    #[must_use]
    pub fn runs_to_unique(&self, n: usize) -> Option<usize> {
        if n == 0 {
            return Some(0);
        }
        self.convergence_full()
            .into_iter()
            .find(|&(_, u)| u >= n)
            .map(|(runs, _)| runs)
    }

    /// The deterministic projection of the whole campaign — byte-equal
    /// across worker counts for the same config matrix.
    #[must_use]
    pub fn deterministic_digest(&self) -> Vec<(usize, String, u64, bool, Vec<Fingerprint>, u64)> {
        self.records
            .iter()
            .map(|r| {
                (
                    r.spec.index,
                    r.unit_name.clone(),
                    r.spec.seed,
                    r.racy,
                    r.fingerprints.clone(),
                    r.steps,
                )
            })
            .collect()
    }

    /// A compact FNV-1a digest of [`CampaignResult::deterministic_digest`]
    /// — the worker-count-invariance check that fits in a CI log line at
    /// 100K-run scale, where comparing the full record projection would
    /// mean holding two multi-megabyte vectors.
    #[must_use]
    pub fn digest64(&self) -> u64 {
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h = (*h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for r in &self.records {
            mix(&mut h, &r.spec.index.to_le_bytes());
            mix(&mut h, r.unit_name.as_bytes());
            mix(&mut h, &r.spec.seed.to_le_bytes());
            mix(&mut h, &[u8::from(r.racy)]);
            for fp in &r.fingerprints {
                mix(&mut h, &fp.0.to_le_bytes());
            }
            mix(&mut h, &r.steps.to_le_bytes());
        }
        mix(&mut h, &(self.units_skipped as u64).to_le_bytes());
        h
    }

    /// Files the deduplicated batch into a deployment pipeline.
    #[allow(deprecated)]
    #[deprecated(note = "use file_into_service with grs_deploy::service::IntakeService")]
    pub fn file_into(&self, pipeline: &mut Pipeline, day: u32) -> Vec<(Fingerprint, FileOutcome)> {
        pipeline.submit_batch(&self.batch, day)
    }

    /// Files the deduplicated batch into the intake service — the
    /// [`CampaignResult::file_into`] successor for the unified facade.
    ///
    /// # Errors
    ///
    /// [`grs_deploy::IntakeError::ShutDown`] when the service has stopped.
    pub fn file_into_service(
        &self,
        service: &grs_deploy::IntakeService,
        day: u32,
    ) -> Result<Vec<(Fingerprint, FileOutcome)>, grs_deploy::IntakeError> {
        service.submit_race_batch(&self.batch, day)
    }
}

/// The campaign engine.
///
/// A campaign is a configuration crossed with a [`UnitSource`]. The run
/// matrix `(unit × seed × strategy × detector)` is never materialized:
/// spec `i` is recovered arithmetically ([`Campaign::spec_at`]), work is
/// dealt over lazy [`IndexQueues`], and units are lowered on demand
/// through per-worker [`UnitCache`]s — which is what lets a 100K-unit
/// source-level campaign run in memory proportional to its *results*, not
/// its corpus.
#[derive(Clone)]
pub struct Campaign {
    config: CampaignConfig,
    source: Arc<dyn UnitSource>,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("config", &self.config)
            .field("units", &self.source.len())
            .finish()
    }
}

impl Campaign {
    /// A campaign over a lazy unit source.
    #[must_use]
    pub fn over_source(config: CampaignConfig, source: Arc<dyn UnitSource>) -> Self {
        Campaign { config, source }
    }

    /// A campaign over an explicit unit list.
    #[must_use]
    pub fn over_units(config: CampaignConfig, units: Vec<CampaignUnit>) -> Self {
        Self::over_source(config, Arc::new(UnitList::new(units)))
    }

    /// A campaign over the §4 pattern corpus (racy + fixed variants).
    #[must_use]
    pub fn over_patterns(config: CampaignConfig) -> Self {
        Self::over_units(config, pattern_suite(true))
    }

    /// The same campaign (same unit source) under a different
    /// configuration — the way differential tests compare worker counts
    /// without rebuilding or cloning the corpus.
    #[must_use]
    pub fn with_config(&self, config: CampaignConfig) -> Self {
        Campaign {
            config,
            source: Arc::clone(&self.source),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The unit source.
    #[must_use]
    pub fn source(&self) -> &Arc<dyn UnitSource> {
        &self.source
    }

    /// Number of units in the source.
    #[must_use]
    pub fn unit_count(&self) -> usize {
        self.source.len()
    }

    /// Builds unit `unit` (test/inspection helper; the run paths go
    /// through per-worker caches).
    pub fn unit(&self, unit: usize) -> Result<CampaignUnit, UnitError> {
        self.source.build(unit)
    }

    /// Total specs in the run matrix.
    #[must_use]
    pub fn matrix_len(&self) -> usize {
        self.config.matrix_size(self.source.len())
    }

    /// Total executions in the execute-once work list.
    #[must_use]
    pub fn exec_len(&self) -> usize {
        self.source.len() * self.config.seeds_per_unit * self.config.strategies.len()
    }

    /// Recovers spec `index` of the deterministic enumeration
    /// (units → seeds → strategies → detectors, detectors innermost) by
    /// arithmetic — the lazy equivalent of indexing a materialized
    /// [`Campaign::specs`] vector.
    #[must_use]
    pub fn spec_at(&self, index: usize) -> RunSpec {
        let dets = self.config.detectors.len();
        let strats = self.config.strategies.len();
        let det = index % dets;
        let rest = index / dets;
        let strat = rest % strats;
        let rest = rest / strats;
        let seed = rest % self.config.seeds_per_unit;
        let unit = rest / self.config.seeds_per_unit;
        RunSpec {
            index,
            unit,
            seed: self.config.base_seed + seed as u64,
            strategy: self.config.strategies[strat],
            detector: self.config.detectors[det],
        }
    }

    /// Recovers execution `exec_index` of the execute-once enumeration
    /// (units → seeds → strategies), the lazy equivalent of indexing
    /// [`Campaign::exec_specs`].
    #[must_use]
    pub fn exec_spec_at(&self, exec_index: usize) -> ExecSpec {
        let strats = self.config.strategies.len();
        let strat = exec_index % strats;
        let rest = exec_index / strats;
        let seed = rest % self.config.seeds_per_unit;
        let unit = rest / self.config.seeds_per_unit;
        ExecSpec {
            exec_index,
            base_index: exec_index * self.config.detectors.len(),
            unit,
            seed: self.config.base_seed + seed as u64,
            strategy: self.config.strategies[strat],
        }
    }

    /// Materializes the full spec matrix in deterministic order — an
    /// inspection/test helper; the run paths enumerate lazily via
    /// [`Campaign::spec_at`].
    #[must_use]
    pub fn specs(&self) -> Vec<RunSpec> {
        (0..self.matrix_len()).map(|i| self.spec_at(i)).collect()
    }

    /// Materializes the execute-once work list — an inspection/test
    /// helper; the run paths enumerate lazily via
    /// [`Campaign::exec_spec_at`].
    #[must_use]
    pub fn exec_specs(&self) -> Vec<ExecSpec> {
        (0..self.exec_len()).map(|i| self.exec_spec_at(i)).collect()
    }

    /// Unit names in matrix order (built without lowering).
    fn unit_names(&self) -> Vec<String> {
        (0..self.source.len()).map(|i| self.source.name(i)).collect()
    }

    /// One detector arena per worker, honoring the config's shadow
    /// implementation choice. `oracle_shadow` is a differential-testing
    /// knob: it needs the legacy detectors compiled in, which only test
    /// and bench builds do (the `oracle` feature).
    fn make_arena(&self) -> DetectorArena {
        if self.config.oracle_shadow {
            #[cfg(feature = "oracle")]
            return DetectorArena::new_oracle();
            #[cfg(not(feature = "oracle"))]
            panic!(
                "CampaignConfig::oracle_shadow(true) requires the test-only `oracle` feature"
            );
        }
        DetectorArena::new()
    }

    /// Executes one spec: run the program (through the worker's reusable
    /// detector arena), fingerprint the reports, feed the dedup stage, and
    /// emit the record.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        spec: RunSpec,
        unit: &CampaignUnit,
        worker: usize,
        shard: usize,
        dedup: &DedupMap,
        arena: &mut DetectorArena,
        sink: &dyn ObsSink,
    ) -> RunRecord {
        let started = Instant::now();
        let (outcome, reports) = {
            let _span = SpanGuard::enter(sink, "shard.execute");
            arena.run_observed(
                spec.detector,
                &unit.program,
                RunConfig {
                    seed: spec.seed,
                    strategy: spec.strategy,
                    max_steps: self.config.max_steps,
                    ..RunConfig::default()
                },
                sink,
            )
        };
        let duration = started.elapsed();
        sink.observe("campaign.run_wall", duration);
        let racy = !reports.is_empty();
        sink.add("campaign.runs", 1);
        sink.add("campaign.racy_runs", u64::from(racy));
        sink.add("campaign.reports", reports.len() as u64);
        let mut fingerprints = Vec::with_capacity(reports.len());
        for mut r in reports {
            r.program = Some(std::sync::Arc::from(unit.name.as_str()));
            r.repro_seed = Some(spec.seed);
            r.repro = Some(ReproArtifact::seeded(spec.seed, spec.strategy));
            let fp = race_fingerprint(&r);
            fingerprints.push(fp);
            dedup.insert(fp, spec.index, r);
        }
        fingerprints.sort_unstable();
        fingerprints.dedup();
        RunRecord {
            spec,
            unit_name: unit.name.clone(),
            racy,
            fingerprints,
            steps: outcome.steps,
            events: outcome.stats.events_dispatched,
            depot_stacks: outcome.stats.depot.stacks,
            peak_shadow_words: outcome.stats.peak_shadow_words,
            worker,
            shard,
            duration,
        }
    }

    /// Executes one [`ExecSpec`] the execute-once way: run the program
    /// *once* under a [`TraceRecorder`](grs_runtime::TraceRecorder)
    /// (through the worker arena's depot), then fan the recorded trace
    /// through every configured detector offline. Emits one [`RunRecord`]
    /// per detector on the same spec-index space as [`Campaign::execute`],
    /// with identical deterministic fields — the replay-fidelity guarantee.
    #[allow(clippy::too_many_arguments)]
    fn execute_replay(
        &self,
        exec: ExecSpec,
        unit: &CampaignUnit,
        worker: usize,
        shard: usize,
        dedup: &DedupMap,
        arena: &mut DetectorArena,
        stats: &mut ReplayStats,
        sink: &dyn ObsSink,
    ) -> Vec<RunRecord> {
        let record_started = Instant::now();
        let (outcome, trace) = {
            let _span = SpanGuard::enter(sink, "shard.execute");
            record_with_depot(
                &unit.program,
                &RunConfig {
                    seed: exec.seed,
                    strategy: exec.strategy,
                    max_steps: self.config.max_steps,
                    ..RunConfig::default()
                },
                arena.depot(),
            )
        };
        // Encoding is part of the record pipeline: it is what a deployment
        // would persist as the `.grtrace` artifact.
        let bytes = trace.encode();
        let trace_bytes = bytes.len();
        let trace_digest = trace.digest();
        stats.executions += 1;
        stats.trace_events += trace.events.len() as u64;
        stats.trace_bytes_total += trace_bytes as u64;
        stats.trace_bytes_max = stats.trace_bytes_max.max(trace_bytes);
        stats.record_wall += record_started.elapsed();
        sink.add("replay.trace_bytes", trace_bytes as u64);
        sink.observe("replay.record_wall", record_started.elapsed());

        // Replay side: decode the persisted bytes back in SoA chunks (the
        // deployment consumer's path — decode is replay cost, not record
        // cost) and fan the decoded lanes through every detector.
        let replay_started = Instant::now();
        let decoded = DecodedTrace::decode_with_chunk(&bytes, DEFAULT_CHUNK_EVENTS)
            .expect("a just-encoded trace always decodes");
        stats.decode_batches += decoded.chunks;
        stats.batch_events += decoded.len() as u64;
        let analyses =
            arena.replay_many_decoded_observed(&decoded, &self.config.detectors, sink);
        let replay_elapsed = replay_started.elapsed();
        stats.replays += analyses.len();
        stats.replay_wall += replay_elapsed;
        let per_replay = replay_elapsed / analyses.len().max(1) as u32;

        let mut records = Vec::with_capacity(analyses.len());
        for (pos, (detector, analysis)) in analyses.into_iter().enumerate() {
            let spec = RunSpec {
                index: exec.base_index + pos,
                unit: exec.unit,
                seed: exec.seed,
                strategy: exec.strategy,
                detector,
            };
            let racy = !analysis.reports.is_empty();
            sink.observe("campaign.run_wall", per_replay);
            sink.add("campaign.runs", 1);
            sink.add("campaign.racy_runs", u64::from(racy));
            sink.add("campaign.reports", analysis.reports.len() as u64);
            let mut fingerprints = Vec::with_capacity(analysis.reports.len());
            for mut r in analysis.reports {
                r.program = Some(std::sync::Arc::from(unit.name.as_str()));
                r.repro_seed = Some(spec.seed);
                r.repro = Some(ReproArtifact {
                    seed: spec.seed,
                    strategy: spec.strategy,
                    trace_digest: Some(trace_digest),
                    trace_path: None,
                    schedule_prefix: None,
                });
                let fp = race_fingerprint(&r);
                fingerprints.push(fp);
                dedup.insert(fp, spec.index, r);
            }
            fingerprints.sort_unstable();
            fingerprints.dedup();
            records.push(RunRecord {
                spec,
                unit_name: unit.name.clone(),
                racy,
                fingerprints,
                steps: outcome.steps,
                events: analysis.events,
                depot_stacks: trace.stacks.len(),
                peak_shadow_words: analysis.peak_shadow_words,
                worker,
                shard,
                duration: per_replay,
            });
        }
        records
    }

    /// Runs the campaign execute-once: each `(unit, seed, strategy)` is
    /// executed one time under a trace recorder, and the trace is fanned
    /// through every configured detector offline. The result covers the
    /// *same* run matrix as [`Campaign::run`] — same spec indices, same
    /// [`CampaignResult::deterministic_digest`], same dedup batch — while
    /// executing `detectors.len()`× fewer schedules; the measured speedup
    /// lands in [`CampaignResult::replay`].
    /// Builds the campaign's observability report: snapshots the registry's
    /// metrics and buckets the sorted records' fingerprints into the §3.5
    /// timeline. The timeline is a pure function of deterministic outputs
    /// (spec indices and fingerprints), so it is byte-identical across
    /// worker counts *and* between live and replay execution.
    fn build_obs(
        &self,
        label: &str,
        registry: &MetricsRegistry,
        records: &[RunRecord],
    ) -> ObsReport {
        let mut timeline = CampaignTimeline::new(
            TimelineConfig::default_days().days(self.config.timeline_days),
        );
        // The day axis spans the full matrix (skipped specs included), so
        // the bucketing — and with it the whole timeline — is unchanged by
        // whether a unit lowered. Skip-free campaigns get exactly the old
        // records.len() denominator.
        let total = self.matrix_len();
        for r in records {
            let day = timeline.day_of(r.spec.index, total);
            for fp in &r.fingerprints {
                timeline.observe(day, fp.0);
            }
        }
        ObsReport::new(label, registry.snapshot(), timeline.finish())
    }

    #[must_use]
    pub fn run_replay(&self) -> CampaignResult {
        let started = Instant::now();
        let total_execs = self.exec_len();
        let workers = self.config.workers.max(1).min(total_execs.max(1));
        let shards = self.config.shards.max(1);
        let dets = self.config.detectors.len();
        let dedup = DedupMap::new(shards);
        let registry = MetricsRegistry::new();
        let skips = Mutex::new(SkipLog::default());
        let mut stats = ReplayStats::default();
        let mut records: Vec<RunRecord>;
        if workers <= 1 {
            let mut arena = self.make_arena();
            let mut cache = UnitCache::new(UNIT_CACHE_CAP);
            records = Vec::new();
            for exec_index in 0..total_execs {
                registry.add_volatile("sched.home_pops", 1);
                let exec = self.exec_spec_at(exec_index);
                match cache.get_or_build(&*self.source, exec.unit) {
                    Ok(unit) => records.extend(self.execute_replay(
                        exec,
                        &unit,
                        0,
                        exec.exec_index % shards,
                        &dedup,
                        &mut arena,
                        &mut stats,
                        &registry,
                    )),
                    Err(e) => self.record_skip(&skips, &registry, e, dets as u64),
                }
            }
        } else {
            let queues = IndexQueues::new(shards, total_execs);
            let collected: Mutex<Vec<RunRecord>> = Mutex::new(Vec::new());
            let merged: Mutex<ReplayStats> = Mutex::new(ReplayStats::default());
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let queues = &queues;
                    let dedup = &dedup;
                    let collected = &collected;
                    let merged = &merged;
                    let registry = &registry;
                    let skips = &skips;
                    scope.spawn(move || {
                        let mut arena = self.make_arena();
                        let mut cache = UnitCache::new(UNIT_CACHE_CAP);
                        let mut local = Vec::new();
                        let mut local_stats = ReplayStats::default();
                        while let Some((exec_index, shard)) = queues.pop(w) {
                            registry.add_volatile(
                                if shard == w % shards { "sched.home_pops" } else { "sched.steals" },
                                1,
                            );
                            let exec = self.exec_spec_at(exec_index);
                            match cache.get_or_build(&*self.source, exec.unit) {
                                Ok(unit) => local.extend(self.execute_replay(
                                    exec,
                                    &unit,
                                    w,
                                    shard,
                                    dedup,
                                    &mut arena,
                                    &mut local_stats,
                                    registry,
                                )),
                                Err(e) => self.record_skip(skips, registry, e, dets as u64),
                            }
                        }
                        collected
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .extend(local);
                        merged
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .merge(&local_stats);
                    });
                }
            });
            records = collected
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            records.sort_by_key(|r| r.spec.index);
            stats = merged
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        registry.observe("campaign.wall", started.elapsed());
        let obs = self.build_obs("campaign/replay", &registry, &records);
        let skips = skips
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        CampaignResult {
            records,
            batch: dedup.into_batch(),
            units: self.unit_names(),
            units_skipped: skips.units.len(),
            skip_reasons: skips.reasons,
            workers,
            shards,
            wall: started.elapsed(),
            replay: Some(stats),
            obs,
        }
    }

    /// Runs the campaign with `config.workers` threads (serial when 1).
    #[must_use]
    pub fn run(&self) -> CampaignResult {
        let started = Instant::now();
        let total = self.matrix_len();
        let workers = self.config.workers.max(1).min(total.max(1));
        let shards = self.config.shards.max(1);
        let dedup = DedupMap::new(shards);
        let registry = MetricsRegistry::new();
        let skips = Mutex::new(SkipLog::default());
        let mut records: Vec<RunRecord>;
        if workers <= 1 {
            // Serial path: same execute + dedup machinery, no threads. One
            // arena serves every run, so shadow state warms up once.
            let mut arena = self.make_arena();
            let mut cache = UnitCache::new(UNIT_CACHE_CAP);
            records = Vec::new();
            for index in 0..total {
                registry.add_volatile("sched.home_pops", 1);
                let spec = self.spec_at(index);
                match cache.get_or_build(&*self.source, spec.unit) {
                    Ok(unit) => records.push(self.execute(
                        spec,
                        &unit,
                        0,
                        index % shards,
                        &dedup,
                        &mut arena,
                        &registry,
                    )),
                    Err(e) => self.record_skip(&skips, &registry, e, 1),
                }
            }
        } else {
            let queues = IndexQueues::new(shards, total);
            let collected: Mutex<Vec<RunRecord>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let queues = &queues;
                    let dedup = &dedup;
                    let collected = &collected;
                    let registry = &registry;
                    let skips = &skips;
                    scope.spawn(move || {
                        // One depot + detector arena per worker, reused for
                        // every spec the worker pops; per-run state resets
                        // on run start, so placement stays invisible in the
                        // deterministic outputs.
                        let mut arena = self.make_arena();
                        let mut cache = UnitCache::new(UNIT_CACHE_CAP);
                        let mut local = Vec::new();
                        while let Some((index, shard)) = queues.pop(w) {
                            registry.add_volatile(
                                if shard == w % shards { "sched.home_pops" } else { "sched.steals" },
                                1,
                            );
                            let spec = self.spec_at(index);
                            match cache.get_or_build(&*self.source, spec.unit) {
                                Ok(unit) => local.push(self.execute(
                                    spec, &unit, w, shard, dedup, &mut arena, registry,
                                )),
                                Err(e) => self.record_skip(skips, registry, e, 1),
                            }
                        }
                        collected
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .extend(local);
                    });
                }
            });
            records = collected
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            records.sort_by_key(|r| r.spec.index);
        }
        registry.observe("campaign.wall", started.elapsed());
        let obs = self.build_obs("campaign/live", &registry, &records);
        let skips = skips
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        CampaignResult {
            records,
            batch: dedup.into_batch(),
            units: self.unit_names(),
            units_skipped: skips.units.len(),
            skip_reasons: skips.reasons,
            workers,
            shards,
            wall: started.elapsed(),
            replay: None,
            obs,
        }
    }

    /// Executions the adaptive mode spends per unit — the same budget the
    /// static matrix spends (`seeds × strategies` schedules per unit), so
    /// [`Campaign::run`] and [`Campaign::run_adaptive`] are directly
    /// comparable at equal cost.
    #[must_use]
    pub fn adaptive_execs_per_unit(&self) -> usize {
        self.config.seeds_per_unit * self.config.strategies.len()
    }

    /// The base strategy adaptive exploration falls back to after a
    /// mutated prefix is exhausted: the first configured strategy.
    #[must_use]
    pub fn adaptive_strategy(&self) -> Strategy {
        self.config.strategies.first().copied().unwrap_or_default()
    }

    /// Runs one unit's full adaptive exploration budget: a
    /// [`ScheduleFrontier`] seeded purely from `(base_seed, unit)` drives
    /// the propose/observe loop, and every execution is analyzed under
    /// every configured detector (monitors never influence the schedule,
    /// so all detectors of an execution observe the same interleaving and
    /// coverage). Spec `(unit, exec, det)` lands on index
    /// `(unit * execs + exec) * dets + det` — the same dense, disjoint
    /// index space shape as the static matrix, so dedup representatives,
    /// timeline bucketing, and the digest stay worker-count invariant.
    #[allow(clippy::too_many_arguments)]
    fn execute_adaptive_unit(
        &self,
        unit_index: usize,
        unit: &CampaignUnit,
        worker: usize,
        shard: usize,
        dedup: &DedupMap,
        arena: &mut DetectorArena,
        sink: &dyn ObsSink,
    ) -> Vec<RunRecord> {
        let execs = self.adaptive_execs_per_unit();
        let dets = self.config.detectors.len();
        let strategy = self.adaptive_strategy();
        // PCT change points are placed against the unit's observed length,
        // not the default hint — the adaptive mode always runs calibrated.
        let pct_horizon = match strategy {
            Strategy::Pct { .. } => calibrate_steps(&unit.program, self.config.max_steps),
            _ => 1_000,
        };
        let mut frontier = ScheduleFrontier::new(
            self.config
                .base_seed
                .wrapping_add((unit_index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            (execs / 8).clamp(1, 16),
            32,
        );
        let mut records = Vec::with_capacity(execs * dets);
        for exec in 0..execs {
            let seed = self.config.base_seed + exec as u64;
            let prefix = frontier.propose(exec);
            for (det_pos, &detector) in self.config.detectors.iter().enumerate() {
                let started = Instant::now();
                let mut run_cfg = RunConfig {
                    seed,
                    strategy,
                    max_steps: self.config.max_steps,
                    ..RunConfig::default()
                }
                .pct_horizon(pct_horizon);
                if let Some(p) = &prefix {
                    run_cfg = run_cfg.schedule_prefix(p.clone());
                }
                let (outcome, reports) = {
                    let _span = SpanGuard::enter(sink, "shard.execute");
                    arena.run_observed(detector, &unit.program, run_cfg, sink)
                };
                if det_pos == 0 {
                    // Deterministic exploration counters: how many runs ran
                    // a mutated prefix, and how many produced a coverage
                    // signature the frontier had not seen. Per-unit sums,
                    // so worker-count invariant like every other counter.
                    sink.add("explore.mutated_runs", u64::from(prefix.is_some()));
                    let novel = frontier.observe(outcome.coverage, outcome.schedule);
                    sink.add("explore.novel_signatures", u64::from(novel));
                }
                let spec = RunSpec {
                    index: (unit_index * execs + exec) * dets + det_pos,
                    unit: unit_index,
                    seed,
                    strategy,
                    detector,
                };
                let duration = started.elapsed();
                sink.observe("campaign.run_wall", duration);
                let racy = !reports.is_empty();
                sink.add("campaign.runs", 1);
                sink.add("campaign.racy_runs", u64::from(racy));
                sink.add("campaign.reports", reports.len() as u64);
                let mut fingerprints = Vec::with_capacity(reports.len());
                for mut r in reports {
                    r.program = Some(std::sync::Arc::from(unit.name.as_str()));
                    r.repro_seed = Some(seed);
                    r.repro = Some(match &prefix {
                        Some(p) => ReproArtifact::guided(seed, strategy, p.clone()),
                        None => ReproArtifact::seeded(seed, strategy),
                    });
                    let fp = race_fingerprint(&r);
                    fingerprints.push(fp);
                    dedup.insert(fp, spec.index, r);
                }
                fingerprints.sort_unstable();
                fingerprints.dedup();
                records.push(RunRecord {
                    spec,
                    unit_name: unit.name.clone(),
                    racy,
                    fingerprints,
                    steps: outcome.steps,
                    events: outcome.stats.events_dispatched,
                    depot_stacks: outcome.stats.depot.stacks,
                    peak_shadow_words: outcome.stats.peak_shadow_words,
                    worker,
                    shard,
                    duration,
                });
            }
        }
        records
    }

    /// Runs the campaign in adaptive (coverage-guided) mode: instead of
    /// enumerating the static `(unit × seed × strategy × detector)`
    /// matrix, each unit spends the same execution budget on a feedback
    /// loop that mutates novel schedules toward unexplored interleavings
    /// (see [`ScheduleFrontier`]). The work unit of the fan-out is the
    /// *unit*, not the spec — exploration is sequential within a unit by
    /// nature (run N's schedule feeds run N+1's mutation) and units are
    /// independent, so the result is identical for any worker count.
    /// Races found on a mutated schedule carry their `(seed, prefix)`
    /// [`ReproArtifact`]; everything else (dedup, skip accounting,
    /// timeline, digest) behaves exactly as in [`Campaign::run`].
    #[must_use]
    pub fn run_adaptive(&self) -> CampaignResult {
        let started = Instant::now();
        let units = self.source.len();
        let workers = self.config.workers.max(1).min(units.max(1));
        let shards = self.config.shards.max(1);
        let specs_per_unit =
            (self.adaptive_execs_per_unit() * self.config.detectors.len()) as u64;
        let dedup = DedupMap::new(shards);
        let registry = MetricsRegistry::new();
        let skips = Mutex::new(SkipLog::default());
        let mut records: Vec<RunRecord>;
        if workers <= 1 {
            let mut arena = self.make_arena();
            let mut cache = UnitCache::new(UNIT_CACHE_CAP);
            records = Vec::new();
            for unit_index in 0..units {
                registry.add_volatile("sched.home_pops", 1);
                match cache.get_or_build(&*self.source, unit_index) {
                    Ok(unit) => records.extend(self.execute_adaptive_unit(
                        unit_index,
                        &unit,
                        0,
                        unit_index % shards,
                        &dedup,
                        &mut arena,
                        &registry,
                    )),
                    Err(e) => self.record_skip(&skips, &registry, e, specs_per_unit),
                }
            }
        } else {
            let queues = IndexQueues::new(shards, units);
            let collected: Mutex<Vec<RunRecord>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let queues = &queues;
                    let dedup = &dedup;
                    let collected = &collected;
                    let registry = &registry;
                    let skips = &skips;
                    scope.spawn(move || {
                        let mut arena = self.make_arena();
                        let mut cache = UnitCache::new(UNIT_CACHE_CAP);
                        let mut local = Vec::new();
                        while let Some((unit_index, shard)) = queues.pop(w) {
                            registry.add_volatile(
                                if shard == w % shards { "sched.home_pops" } else { "sched.steals" },
                                1,
                            );
                            match cache.get_or_build(&*self.source, unit_index) {
                                Ok(unit) => local.extend(self.execute_adaptive_unit(
                                    unit_index,
                                    &unit,
                                    w,
                                    shard,
                                    dedup,
                                    &mut arena,
                                    registry,
                                )),
                                Err(e) => {
                                    self.record_skip(skips, registry, e, specs_per_unit);
                                }
                            }
                        }
                        collected
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .extend(local);
                    });
                }
            });
            records = collected
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            records.sort_by_key(|r| r.spec.index);
        }
        registry.observe("campaign.wall", started.elapsed());
        let obs = self.build_obs("campaign/adaptive", &registry, &records);
        let skips = skips
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        CampaignResult {
            records,
            batch: dedup.into_batch(),
            units: self.unit_names(),
            units_skipped: skips.units.len(),
            skip_reasons: skips.reasons,
            workers,
            shards,
            wall: started.elapsed(),
            replay: None,
            obs,
        }
    }

    /// Logs a unit whose lowering failed and bumps the stable
    /// `campaign.skipped_runs` counter by the number of matrix specs the
    /// failed work item covered. Both are deterministic: which units fail
    /// and how many specs they cover depend only on the source and the
    /// config, never on scheduling.
    fn record_skip(&self, skips: &Mutex<SkipLog>, sink: &dyn ObsSink, err: UnitError, specs: u64) {
        sink.add("campaign.skipped_runs", specs);
        skips
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .record(err);
    }

    /// Runs the campaign serially regardless of the configured worker
    /// count — the reference output for differential tests.
    #[must_use]
    pub fn run_serial(&self) -> CampaignResult {
        self.with_config(self.config.clone().workers(1)).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_units() -> Vec<CampaignUnit> {
        pattern_suite(true)
            .into_iter()
            .filter(|u| u.name.starts_with("loop_index_capture") || u.name.starts_with("missing_lock"))
            .collect()
    }

    #[test]
    fn matrix_enumeration_is_dense_and_ordered() {
        let c = Campaign::over_units(
            CampaignConfig::smoke().seeds_per_unit(3),
            tiny_units(),
        );
        let specs = c.specs();
        assert_eq!(specs.len(), c.matrix_len());
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.index, i);
            // The arithmetic recovery is the enumeration.
            assert_eq!(*s, c.spec_at(i));
        }
    }

    #[test]
    fn parallel_campaign_equals_serial_campaign() {
        let config = CampaignConfig::smoke().seeds_per_unit(4).shards(4);
        let c = Campaign::over_units(config, tiny_units());
        let serial = c.run_serial();
        for workers in [2, 4] {
            let par = c.with_config(c.config().clone().workers(workers)).run();
            assert_eq!(par.deterministic_digest(), serial.deterministic_digest());
            assert_eq!(par.digest64(), serial.digest64());
            assert_eq!(par.batch.fingerprints(), serial.batch.fingerprints());
            let pr: Vec<_> = par
                .batch
                .iter()
                .map(|(fp, r)| (fp, r.repro_seed))
                .collect();
            let sr: Vec<_> = serial
                .batch
                .iter()
                .map(|(fp, r)| (fp, r.repro_seed))
                .collect();
            assert_eq!(pr, sr, "dedup representatives must match");
        }
    }

    #[test]
    fn racy_units_detected_fixed_units_clean() {
        let c = Campaign::over_units(
            CampaignConfig::smoke().seeds_per_unit(12),
            tiny_units(),
        );
        let r = c.run();
        for i in 0..c.unit_count() {
            let unit = c.unit(i).expect("pattern units always build");
            let unit_racy = r
                .records
                .iter()
                .filter(|rec| rec.unit_name == unit.name)
                .any(|rec| rec.racy);
            assert_eq!(
                Some(unit_racy),
                unit.expected_racy,
                "unit {}",
                unit.name
            );
        }
        assert!(r.detection_rate() > 0.0);
        assert!(!r.batch.is_empty());
    }

    /// `detection_rate` and `events_per_sec` draw from the monotonic
    /// counters; the run records are the ground truth. This pins the two
    /// sources equal — in live and execute-once replay mode — so every
    /// exported benchmark rate shares one consistent numerator.
    #[test]
    fn counters_agree_with_records() {
        let c = Campaign::over_units(
            CampaignConfig::smoke().seeds_per_unit(6).shards(2),
            tiny_units(),
        );
        for (mode, r) in [("live", c.run()), ("replay", c.run_replay())] {
            let counter = |name: &str| r.obs.snapshot.counter(name);
            assert_eq!(
                counter("campaign.runs"),
                r.records.len() as u64,
                "{mode}: campaign.runs"
            );
            assert_eq!(
                counter("campaign.racy_runs"),
                r.racy_runs() as u64,
                "{mode}: campaign.racy_runs"
            );
            assert_eq!(
                counter("runtime.events"),
                r.total_events(),
                "{mode}: runtime.events"
            );
            let record_rate = r.racy_runs() as f64 / r.records.len() as f64;
            assert!(
                (r.detection_rate() - record_rate).abs() < f64::EPSILON,
                "{mode}: detection_rate {} != record-derived {record_rate}",
                r.detection_rate()
            );
            assert!(r.detection_rate() > 0.0, "{mode}: corpus must detect");
        }
    }

    #[test]
    fn corpus_suite_compiles_and_campaigns() {
        let c = Campaign::over_units(
            CampaignConfig::smoke().seeds_per_unit(6),
            corpus_suite(),
        );
        let r = c.run();
        assert_eq!(r.total_runs(), c.matrix_len());
        assert_eq!(r.units_skipped, 0);
        // The racy Go sources must be caught; fixed must stay silent.
        for i in 0..c.unit_count() {
            let unit = c.unit(i).expect("embedded snippets always build");
            if unit.expected_racy == Some(false) {
                assert!(
                    r.records
                        .iter()
                        .filter(|rec| rec.unit_name == unit.name)
                        .all(|rec| !rec.racy),
                    "false positive in {}",
                    unit.name
                );
            }
        }
        assert!(r.racy_runs() > 0);
    }

    #[test]
    #[allow(deprecated)]
    fn filing_the_batch_dedups_into_the_pipeline() {
        let c = Campaign::over_units(
            CampaignConfig::smoke().seeds_per_unit(6),
            tiny_units(),
        );
        let r = c.run();
        let mut pipeline = Pipeline::new(grs_deploy::OwnerDb::new());
        let outcomes = r.file_into(&mut pipeline, 0);
        assert_eq!(outcomes.len(), r.batch.len());
        assert!(outcomes
            .iter()
            .all(|(_, o)| matches!(o, FileOutcome::Filed { .. })));
        // Day two: all duplicates.
        let again = r.file_into(&mut pipeline, 1);
        assert!(again.iter().all(|(_, o)| *o == FileOutcome::Duplicate));
    }

    #[test]
    fn filing_through_the_service_matches_the_pipeline_shim() {
        let c = Campaign::over_units(
            CampaignConfig::smoke().seeds_per_unit(6),
            tiny_units(),
        );
        let r = c.run();
        let service = grs_deploy::IntakeService::builder().workers(1).start().unwrap();
        let outcomes = r.file_into_service(&service, 0).unwrap();
        assert_eq!(outcomes.len(), r.batch.len());
        let again = r.file_into_service(&service, 1).unwrap();
        assert!(again.iter().all(|(_, o)| *o == FileOutcome::Duplicate));
    }

    #[test]
    fn replay_campaign_equals_live_campaign() {
        // The execute-once path must cover the same matrix with the same
        // deterministic outputs as the execute-per-detector path, for a
        // multi-detector, multi-strategy configuration.
        let config = CampaignConfig::smoke()
            .seeds_per_unit(4)
            .detectors(DetectorChoice::all().to_vec())
            .strategies(vec![Strategy::Random, Strategy::Pct { depth: 2 }])
            .workers(1);
        let c = Campaign::over_units(config, tiny_units());
        let live = c.run();
        let replayed = c.run_replay();
        assert_eq!(replayed.deterministic_digest(), live.deterministic_digest());
        assert_eq!(replayed.batch.fingerprints(), live.batch.fingerprints());
        let stats = replayed.replay.expect("replay stats present");
        assert_eq!(stats.executions * 3, stats.replays);
        assert_eq!(stats.executions, c.exec_specs().len());
        assert!(stats.trace_bytes_total > 0);
        assert!(stats.trace_bytes_max > 0);
        assert!(live.replay.is_none());
        // Peak shadow words are per-detector and must survive the replay
        // path bit-identically.
        for (a, b) in replayed.records.iter().zip(live.records.iter()) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.peak_shadow_words, b.peak_shadow_words, "{:?}", a.spec);
            assert_eq!(a.events, b.events, "{:?}", a.spec);
            assert_eq!(a.depot_stacks, b.depot_stacks, "{:?}", a.spec);
        }
        // Replay-path representatives carry the full repro artifact,
        // trace digest included.
        for (_, r) in replayed.batch.iter() {
            let repro = r.repro.as_ref().expect("replay reports carry repro");
            assert_eq!(Some(repro.seed), r.repro_seed);
            assert!(repro.trace_digest.is_some());
        }
    }

    #[test]
    fn parallel_replay_campaign_equals_serial_replay_campaign() {
        let config = CampaignConfig::smoke()
            .seeds_per_unit(4)
            .detectors(DetectorChoice::all().to_vec())
            .shards(4);
        let c = Campaign::over_units(config, tiny_units());
        let serial = c.with_config(c.config().clone().workers(1)).run_replay();
        for workers in [2, 4] {
            let par = c.with_config(c.config().clone().workers(workers)).run_replay();
            assert_eq!(par.deterministic_digest(), serial.deterministic_digest());
            assert_eq!(par.batch.fingerprints(), serial.batch.fingerprints());
            let (ps, ss) = (par.replay.unwrap(), serial.replay.unwrap());
            assert_eq!(ps.executions, ss.executions);
            assert_eq!(ps.replays, ss.replays);
            assert_eq!(ps.trace_events, ss.trace_events);
            assert_eq!(ps.trace_bytes_total, ss.trace_bytes_total);
        }
    }

    #[test]
    fn exec_specs_tile_the_run_matrix() {
        let config = CampaignConfig::smoke()
            .seeds_per_unit(3)
            .detectors(DetectorChoice::all().to_vec())
            .strategies(vec![Strategy::Random, Strategy::RoundRobin]);
        let c = Campaign::over_units(config, tiny_units());
        let specs = c.specs();
        let execs = c.exec_specs();
        assert_eq!(execs.len() * 3, specs.len());
        for e in &execs {
            for (pos, &d) in c.config().detectors.iter().enumerate() {
                let s = specs[e.base_index + pos];
                assert_eq!(s.unit, e.unit);
                assert_eq!(s.seed, e.seed);
                assert_eq!(s.strategy, e.strategy);
                assert_eq!(s.detector, d);
            }
        }
    }

    #[test]
    fn convergence_is_monotone_and_bounded() {
        let c = Campaign::over_units(CampaignConfig::smoke(), tiny_units());
        let r = c.run();
        let conv = r.convergence();
        assert!(!conv.is_empty());
        assert!(conv.len() <= MAX_CONVERGENCE_POINTS);
        for w in conv.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        // The final point always covers the whole campaign.
        assert_eq!(*conv.last().unwrap(), (r.total_runs(), r.batch.len()));
    }

    /// The adaptive mode's work unit is the whole per-unit exploration
    /// loop, so its determinism story is the same as the static matrix:
    /// identical records, digest, and dedup batch at any worker count.
    #[test]
    fn adaptive_campaign_is_worker_count_invariant() {
        let config = CampaignConfig::smoke()
            .seeds_per_unit(6)
            .shards(4)
            .detectors(vec![DetectorChoice::Hybrid, DetectorChoice::FastTrack]);
        let c = Campaign::over_units(config, tiny_units());
        let serial = c.with_config(c.config().clone().workers(1)).run_adaptive();
        // Adaptive spends exactly the static matrix's budget, densely
        // indexed.
        assert_eq!(serial.total_runs(), c.matrix_len());
        for (i, r) in serial.records.iter().enumerate() {
            assert_eq!(r.spec.index, i);
        }
        assert!(serial.detection_rate() > 0.0);
        for workers in [4, 8] {
            let par = c.with_config(c.config().clone().workers(workers)).run_adaptive();
            assert_eq!(par.deterministic_digest(), serial.deterministic_digest());
            assert_eq!(par.digest64(), serial.digest64(), "workers={workers}");
            assert_eq!(par.batch.fingerprints(), serial.batch.fingerprints());
        }
    }

    /// Every prefix-carrying artifact the adaptive campaign files must
    /// re-trigger its race when replayed, and corpus-run artifacts must
    /// carry no prefix.
    #[test]
    fn adaptive_batch_artifacts_reproduce() {
        let c = Campaign::over_units(
            CampaignConfig::smoke().seeds_per_unit(16),
            tiny_units(),
        );
        let r = c.run_adaptive();
        assert!(!r.batch.is_empty());
        let unit_by_name = |name: &str| {
            (0..c.unit_count())
                .map(|i| c.unit(i).unwrap())
                .find(|u| u.name == name)
                .expect("batch report names a campaign unit")
        };
        for (_, rep) in r.batch.iter() {
            let artifact = rep.repro.as_ref().expect("campaign reports carry repro");
            let unit = unit_by_name(rep.program.as_deref().expect("program set"));
            let mut cfg = RunConfig {
                seed: artifact.seed,
                strategy: artifact.strategy,
                max_steps: c.config().max_steps,
                ..RunConfig::default()
            };
            if let Some(prefix) = &artifact.schedule_prefix {
                cfg = cfg.schedule_prefix(prefix.clone());
            }
            let (_, reports) = DetectorChoice::Hybrid.run(&unit.program, cfg);
            assert!(
                reports.iter().any(|rr| rr.site_key() == rep.site_key()),
                "replaying {artifact} of {} did not re-trigger the race",
                unit.name
            );
        }
    }

    /// A source whose odd units refuse to lower: the campaign must skip
    /// them (counted, first reasons kept), run everything else, and stay
    /// deterministic across worker counts.
    #[derive(Debug)]
    struct HalfBroken {
        inner: UnitList,
    }

    impl UnitSource for HalfBroken {
        fn len(&self) -> usize {
            self.inner.len()
        }

        fn name(&self, unit: usize) -> String {
            self.inner.name(unit)
        }

        fn build(&self, unit: usize) -> Result<CampaignUnit, UnitError> {
            if unit % 2 == 1 {
                return Err(UnitError {
                    unit,
                    name: self.inner.name(unit),
                    error: "parse: synthetic failure".to_string(),
                });
            }
            self.inner.build(unit)
        }
    }

    #[test]
    fn broken_units_are_skipped_not_fatal() {
        let source = std::sync::Arc::new(HalfBroken {
            inner: UnitList::new(tiny_units()),
        });
        let units = source.len();
        let c = Campaign::over_source(
            CampaignConfig::smoke().seeds_per_unit(3).shards(3),
            source,
        );
        let serial = c.run_serial();
        let skipped_units = units / 2;
        assert_eq!(serial.units_skipped, skipped_units);
        assert_eq!(serial.skip_reasons.len(), skipped_units.min(MAX_SKIP_REASONS));
        assert!(serial.skip_reasons[0].error.contains("synthetic failure"));
        // Every spec of a broken unit is skipped; every other spec ran.
        let specs_per_unit = c.matrix_len() / units;
        assert_eq!(
            serial.total_runs(),
            (units - skipped_units) * specs_per_unit
        );
        assert_eq!(
            serial.obs.snapshot.counter("campaign.skipped_runs"),
            (skipped_units * specs_per_unit) as u64
        );
        assert!(serial
            .records
            .iter()
            .all(|r| r.spec.unit % 2 == 0), "odd units must not produce records");
        // Skips are deterministic: parallel live and replay campaigns see
        // the same skip set and the same surviving records.
        for workers in [2, 4] {
            let par = c.with_config(c.config().clone().workers(workers)).run();
            assert_eq!(par.units_skipped, serial.units_skipped);
            assert_eq!(par.deterministic_digest(), serial.deterministic_digest());
            assert_eq!(par.digest64(), serial.digest64());
            assert_eq!(
                par.obs.snapshot.counter("campaign.skipped_runs"),
                serial.obs.snapshot.counter("campaign.skipped_runs")
            );
        }
        let replayed = c.with_config(c.config().clone().workers(2)).run_replay();
        assert_eq!(replayed.units_skipped, serial.units_skipped);
        assert_eq!(replayed.deterministic_digest(), serial.deterministic_digest());
        assert_eq!(
            replayed.obs.snapshot.counter("campaign.skipped_runs"),
            serial.obs.snapshot.counter("campaign.skipped_runs")
        );
        // Adaptive mode schedules different runs but charges broken units
        // for the same spec count, so skip accounting lines up exactly.
        let adaptive = c.with_config(c.config().clone().workers(2)).run_adaptive();
        assert_eq!(adaptive.units_skipped, serial.units_skipped);
        assert_eq!(adaptive.total_runs(), serial.total_runs());
        assert_eq!(
            adaptive.obs.snapshot.counter("campaign.skipped_runs"),
            serial.obs.snapshot.counter("campaign.skipped_runs")
        );
    }

    #[test]
    fn generated_go_corpus_campaigns_lazily_and_deterministically() {
        use crate::source::GoCorpusSource;
        use grs_corpus::GoTestSpec;

        // A source-level campaign straight from the generator: no unit is
        // materialized up front, ground truth comes from emission.
        let source = std::sync::Arc::new(GoCorpusSource::new(
            GoTestSpec::default_mix().racy_per_mille(400),
            11,
            24,
        ));
        let c = Campaign::over_source(
            CampaignConfig::smoke().seeds_per_unit(2).shards(4),
            source.clone(),
        );
        let serial = c.run_serial();
        assert_eq!(serial.units_skipped, 0, "{:?}", serial.skip_reasons);
        assert_eq!(serial.total_runs(), c.matrix_len());
        // Expected-racy units must be detected (the racy templates are
        // schedule-independent); clean units must stay silent.
        for i in 0..c.unit_count() {
            let unit = c.unit(i).unwrap();
            let unit_racy = serial
                .records
                .iter()
                .filter(|r| r.unit_name == unit.name)
                .any(|r| r.racy);
            assert_eq!(Some(unit_racy), unit.expected_racy, "unit {}", unit.name);
        }
        for workers in [2, 4, 8] {
            let par = c.with_config(c.config().clone().workers(workers)).run();
            assert_eq!(par.digest64(), serial.digest64());
            assert_eq!(par.deterministic_digest(), serial.deterministic_digest());
            assert_eq!(par.batch.fingerprints(), serial.batch.fingerprints());
        }
    }

    #[test]
    fn shard_stats_cover_every_run() {
        let c = Campaign::over_units(
            CampaignConfig::smoke().seeds_per_unit(4).workers(2).shards(3),
            tiny_units(),
        );
        let r = c.run();
        let stats = r.shard_stats();
        assert_eq!(stats.len(), 3);
        assert_eq!(
            stats.iter().map(|s| s.runs).sum::<usize>(),
            r.total_runs()
        );
    }
}
