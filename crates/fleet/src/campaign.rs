//! Campaign orchestration: fan the run matrix over workers, dedup, file.
//!
//! This is the §3.3 nightly run modeled end to end. The paper's deployment
//! SSH-fans ~100K unit tests (each rerun under the race detector) across a
//! datacenter, collects the race reports, deduplicates by fingerprint, and
//! files tasks. Here:
//!
//! * the **matrix** is `(unit × seed × strategy × detector)`, enumerated
//!   deterministically into [`RunSpec`]s;
//! * the **fan-out** is [`ShardQueues`]: specs dealt over shard queues,
//!   popped by a pool of OS worker threads with work stealing;
//! * the **dedup stage** is [`DedupMap`]: fingerprint-sharded concurrent
//!   aggregation with deterministic representatives;
//! * the **filing** is [`grs_deploy::Pipeline`] via
//!   [`RaceBatch`](grs_deploy::RaceBatch) batched intake.
//!
//! Every run is a self-contained deterministic `Runtime` instance, so the
//! campaign's deterministic output — run records and the deduped batch — is
//! identical for any worker count, including 1 (the serial path). Only
//! wall-clock changes.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use grs_deploy::{race_fingerprint, FileOutcome, Fingerprint, Pipeline, RaceBatch};
use grs_detector::{default_workers, DetectorArena, DetectorChoice};
use grs_obs::{CampaignTimeline, MetricsRegistry, ObsReport, ObsSink, SpanGuard, TimelineConfig};
use grs_runtime::{
    record_with_depot, DecodedTrace, Program, ReproArtifact, RunConfig, Strategy,
    DEFAULT_CHUNK_EVENTS,
};

use crate::dedup::DedupMap;
use crate::shard::{ExecSpec, RunSpec, ShardQueues};

/// One campaignable program.
#[derive(Debug, Clone)]
pub struct CampaignUnit {
    /// Display name (pattern id or listing name, `/racy` or `/fixed`).
    pub name: String,
    /// The executable program.
    pub program: Program,
    /// Ground truth, when known: does the unit contain a race?
    pub expected_racy: Option<bool>,
}

/// The full §4 pattern corpus as campaign units.
///
/// Racy variants always; fixed variants too when `include_fixed` — the
/// fixed twins are the campaign's false-positive control group.
#[must_use]
pub fn pattern_suite(include_fixed: bool) -> Vec<CampaignUnit> {
    let mut units = Vec::new();
    for p in grs_patterns::registry() {
        units.push(CampaignUnit {
            name: format!("{}/racy", p.id),
            program: p.racy_program(),
            expected_racy: Some(true),
        });
        if include_fixed {
            units.push(CampaignUnit {
                name: format!("{}/fixed", p.id),
                program: p.fixed_program(),
                expected_racy: Some(false),
            });
        }
    }
    units
}

/// Go-source units compiled through the `grs-interp` frontend — the
/// campaign's "run the real test corpus" modality, next to the Rust-closure
/// pattern suite. Adapted from the paper's listings.
#[must_use]
pub fn corpus_suite() -> Vec<CampaignUnit> {
    const SOURCES: &[(&str, bool, &str)] = &[
        (
            "go/loop_capture/racy",
            true,
            r#"
package main

func processJob(j int) int {
    return j * 2
}

func main() {
    jobs := []int{10, 20, 30}
    done := make(chan bool, 3)
    for _, job := range jobs {
        go func() {
            processJob(job)
            done <- true
        }()
    }
    <-done
    <-done
    <-done
}
"#,
        ),
        (
            "go/loop_capture/fixed",
            false,
            r#"
package main

func processJob(j int) int {
    return j * 2
}

func main() {
    jobs := []int{10, 20, 30}
    done := make(chan bool, 3)
    for _, job := range jobs {
        go func(job int) {
            processJob(job)
            done <- true
        }(job)
    }
    <-done
    <-done
    <-done
}
"#,
        ),
        (
            "go/mutex_by_value/racy",
            true,
            r#"
package main

var a int

func criticalSection(m sync.Mutex) {
    m.Lock()
    a = a + 1
    m.Unlock()
}

func main() {
    var mutex sync.Mutex
    done := make(chan bool, 2)
    go func(m sync.Mutex) {
        criticalSection(m)
        done <- true
    }(mutex)
    go func(m sync.Mutex) {
        criticalSection(m)
        done <- true
    }(mutex)
    <-done
    <-done
}
"#,
        ),
        (
            "go/mutex_by_value/fixed",
            false,
            r#"
package main

var a int

func criticalSection(m *sync.Mutex) {
    m.Lock()
    a = a + 1
    m.Unlock()
}

func main() {
    var mutex sync.Mutex
    done := make(chan bool, 2)
    go func() {
        criticalSection(&mutex)
        done <- true
    }()
    go func() {
        criticalSection(&mutex)
        done <- true
    }()
    <-done
    <-done
}
"#,
        ),
        (
            "go/concurrent_map/racy",
            true,
            r#"
package main

func getOrder(uuid int) string {
    if uuid > 1 {
        return "failed"
    }
    return ""
}

func main() {
    uuids := []int{1, 2, 3}
    errMap := make(map[int]string)
    done := make(chan bool, 3)
    for _, uuid := range uuids {
        go func(uuid int) {
            err := getOrder(uuid)
            if err != "" {
                errMap[uuid] = err
            }
            done <- true
        }(uuid)
    }
    <-done
    <-done
    <-done
    _ = len(errMap)
}
"#,
        ),
    ];
    SOURCES
        .iter()
        .map(|&(name, racy, src)| {
            let interp = grs_interp::Interp::from_source(src)
                .unwrap_or_else(|e| panic!("{name}: corpus source must parse: {e}"));
            CampaignUnit {
                name: name.to_string(),
                program: interp.program(name, "main"),
                expected_racy: Some(racy),
            }
        })
        .collect()
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds per `(unit, strategy, detector)` combination; seed `s` of a
    /// unit is `base_seed + s`.
    pub seeds_per_unit: usize,
    /// First seed.
    pub base_seed: u64,
    /// Scheduling strategies to cross in.
    pub strategies: Vec<Strategy>,
    /// Detection algorithms to cross in.
    pub detectors: Vec<DetectorChoice>,
    /// OS worker threads (1 = serial).
    pub workers: usize,
    /// Shard queues for the scheduler and the dedup map.
    pub shards: usize,
    /// Per-run step budget.
    pub max_steps: u64,
    /// Virtual campaign days the timeline section buckets the spec axis
    /// into (see [`grs_obs::CampaignTimeline`]).
    pub timeline_days: u32,
    /// Route every run/replay through the **legacy** HashMap-shadow
    /// detectors instead of the flat ones. The field always exists so
    /// configs serialize/compare uniformly, but flipping it on requires the
    /// test-only `oracle` feature — without it the campaign panics at
    /// arena construction. Used by the flat-shadow equivalence suite and
    /// the `bench_events --mode oracle` runs.
    pub oracle_shadow: bool,
}

impl CampaignConfig {
    /// The smoke defaults — the entry point of the builder API, which is
    /// the **stable** way to construct a config:
    ///
    /// ```
    /// use grs_fleet::CampaignConfig;
    ///
    /// let cfg = CampaignConfig::new().seeds_per_unit(16).workers(4);
    /// assert_eq!(cfg.seeds_per_unit, 16);
    /// ```
    ///
    /// The fields stay `pub` for matching and ad-hoc tweaks, but new knobs
    /// are only guaranteed to get builder methods; struct-literal
    /// construction may break when fields are added.
    #[must_use]
    pub fn new() -> Self {
        Self::smoke()
    }

    /// A small smoke campaign: 8 seeds, random walks, hybrid detector.
    #[must_use]
    pub fn smoke() -> Self {
        CampaignConfig {
            seeds_per_unit: 8,
            base_seed: 1,
            strategies: vec![Strategy::Random],
            detectors: vec![DetectorChoice::Hybrid],
            workers: default_workers(),
            shards: 2 * default_workers(),
            max_steps: 1_000_000,
            timeline_days: 30,
            oracle_shadow: false,
        }
    }

    /// The nightly-scale configuration: 32 seeds, random + PCT walks,
    /// hybrid detector.
    #[must_use]
    pub fn nightly() -> Self {
        CampaignConfig {
            seeds_per_unit: 32,
            strategies: vec![Strategy::Random, Strategy::Pct { depth: 2 }],
            ..CampaignConfig::smoke()
        }
    }

    /// Sets the seed count (builder style).
    #[must_use]
    pub fn seeds_per_unit(mut self, n: usize) -> Self {
        self.seeds_per_unit = n;
        self
    }

    /// Sets the worker count, clamped to at least 1 (builder style).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Sets the shard count, clamped to at least 1 (builder style).
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Sets the base seed (builder style).
    #[must_use]
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the detector list (builder style).
    #[must_use]
    pub fn detectors(mut self, detectors: Vec<DetectorChoice>) -> Self {
        self.detectors = detectors;
        self
    }

    /// Sets the strategy list (builder style).
    #[must_use]
    pub fn strategies(mut self, strategies: Vec<Strategy>) -> Self {
        self.strategies = strategies;
        self
    }

    /// Sets the per-run step budget (builder style).
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the timeline day count, clamped to at least 1 (builder style).
    #[must_use]
    pub fn timeline_days(mut self, days: u32) -> Self {
        self.timeline_days = days.max(1);
        self
    }

    /// Routes the campaign through the legacy HashMap-shadow oracle
    /// detectors (builder style). Requires the `oracle` feature at
    /// execution time; see [`CampaignConfig::oracle_shadow`].
    #[must_use]
    pub fn oracle_shadow(mut self, oracle: bool) -> Self {
        self.oracle_shadow = oracle;
        self
    }

    /// Total runs this configuration produces over `units` units.
    #[must_use]
    pub fn matrix_size(&self, units: usize) -> usize {
        units * self.seeds_per_unit * self.strategies.len() * self.detectors.len()
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self::smoke()
    }
}

/// The deterministic outcome of one run, tagged with nondeterministic
/// placement/timing metadata (worker, shard, duration).
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The spec that produced this record.
    pub spec: RunSpec,
    /// Name of the unit executed.
    pub unit_name: String,
    /// True when the run reported at least one race.
    pub racy: bool,
    /// Sorted, deduplicated fingerprints of the run's reports.
    pub fingerprints: Vec<Fingerprint>,
    /// Scheduler steps executed.
    pub steps: u64,
    /// Monitor events dispatched during the run (deterministic).
    pub events: u64,
    /// Distinct interned stacks in the run's depot at run end
    /// (deterministic).
    pub depot_stacks: usize,
    /// Peak shadow-word footprint of the run's detector (deterministic).
    pub peak_shadow_words: usize,
    /// Which worker executed the run (placement metadata; not
    /// deterministic).
    pub worker: usize,
    /// Which shard queue the spec was popped from (not deterministic).
    pub shard: usize,
    /// Run duration (not deterministic).
    pub duration: Duration,
}

impl RunRecord {
    /// The deterministic projection of the record — equal across campaigns
    /// with any worker/shard configuration.
    #[must_use]
    pub fn key(&self) -> (usize, &str, u64, bool, &[Fingerprint], u64) {
        (
            self.spec.index,
            &self.unit_name,
            self.spec.seed,
            self.racy,
            &self.fingerprints,
            self.steps,
        )
    }
}

/// Per-shard aggregate latency (how balanced the stealing kept the load).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Shard id.
    pub shard: usize,
    /// Runs popped from this shard.
    pub runs: usize,
    /// Total time spent executing them.
    pub total: Duration,
    /// The slowest single run.
    pub max: Duration,
}

/// Aggregate counters of an execute-once replay campaign
/// ([`Campaign::run_replay`]): how many schedule executions were recorded,
/// how many offline detector analyses they fanned into, and how big the
/// trace artifacts were. Wall figures are summed across workers (CPU-time
/// style), so they compare record cost against replay cost directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Schedule executions recorded (one per `(unit, seed, strategy)`).
    pub executions: usize,
    /// Offline detector analyses fanned out from those traces.
    pub replays: usize,
    /// Total events across all recorded traces.
    pub trace_events: u64,
    /// Total encoded `.grtrace` bytes across all traces.
    pub trace_bytes_total: u64,
    /// Largest single encoded trace, in bytes.
    pub trace_bytes_max: usize,
    /// Time spent executing + recording + encoding, summed across workers.
    pub record_wall: Duration,
    /// Time spent in offline detector replays, summed across workers.
    pub replay_wall: Duration,
    /// SoA chunks the batch decoder produced across all traces (one decode
    /// per execution, shared by every analysis fanned from it).
    pub decode_batches: u64,
    /// Events decoded through the batch path (equals `trace_events` — the
    /// whole stream goes through chunks; kept separate so the invariant is
    /// checkable in exports).
    pub batch_events: u64,
}

impl ReplayStats {
    fn merge(&mut self, other: &ReplayStats) {
        self.executions += other.executions;
        self.replays += other.replays;
        self.trace_events += other.trace_events;
        self.trace_bytes_total += other.trace_bytes_total;
        self.trace_bytes_max = self.trace_bytes_max.max(other.trace_bytes_max);
        self.record_wall += other.record_wall;
        self.replay_wall += other.replay_wall;
        self.decode_batches += other.decode_batches;
        self.batch_events += other.batch_events;
    }

    /// Mean batch fill rate: events per produced chunk, as a fraction of
    /// the chunk capacity used for decoding (1.0 = every chunk full).
    #[must_use]
    pub fn batch_fill_rate(&self, chunk_capacity: usize) -> f64 {
        if self.decode_batches == 0 || chunk_capacity == 0 {
            return 0.0;
        }
        self.batch_events as f64 / (self.decode_batches * chunk_capacity as u64) as f64
    }

    /// Mean encoded trace size in bytes (0 when nothing was recorded).
    #[must_use]
    pub fn avg_trace_bytes(&self) -> u64 {
        if self.executions == 0 {
            0
        } else {
            self.trace_bytes_total / self.executions as u64
        }
    }
}

/// A finished campaign.
#[derive(Debug)]
pub struct CampaignResult {
    /// One record per run, sorted by spec index (deterministic order).
    pub records: Vec<RunRecord>,
    /// The deduplicated race batch (deterministic).
    pub batch: RaceBatch,
    /// Unit names, in matrix order.
    pub units: Vec<String>,
    /// Worker threads used.
    pub workers: usize,
    /// Shard count used.
    pub shards: usize,
    /// End-to-end wall-clock time.
    pub wall: Duration,
    /// Record/replay counters when the campaign ran execute-once
    /// ([`Campaign::run_replay`]); `None` for execute-per-detector runs.
    pub replay: Option<ReplayStats>,
    /// The campaign's observability report: stable metrics, span/latency
    /// timing, and the §3.5 campaign-dynamics timeline — ready to export
    /// as `BENCH_obs.json` ([`ObsReport::to_json`]) or render as a text
    /// dashboard ([`ObsReport::dashboard`]).
    pub obs: ObsReport,
}

impl CampaignResult {
    /// Total runs executed.
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.records.len()
    }

    /// Runs that reported at least one race.
    #[must_use]
    pub fn racy_runs(&self) -> usize {
        self.records.iter().filter(|r| r.racy).count()
    }

    /// Fraction of runs that reported a race (0 when no runs executed).
    ///
    /// Derived from the campaign's monotonic counters (`campaign.runs`,
    /// `campaign.racy_runs`) rather than re-counting records, so this rate
    /// and [`CampaignResult::events_per_sec`] share one counter source and
    /// every exported benchmark agrees on the denominator. The counters
    /// are stable (identical across worker counts and live/replay); the
    /// record-derived figures equal them by construction, which
    /// `counters_agree_with_records` pins.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        let runs = self.obs.snapshot.counter("campaign.runs");
        if runs == 0 {
            0.0
        } else {
            self.obs.snapshot.counter("campaign.racy_runs") as f64 / runs as f64
        }
    }

    /// Runs per second of wall-clock time.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.records.len() as f64 / secs
        }
    }

    /// Total monitor events dispatched across all runs (deterministic).
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.records.iter().map(|r| r.events).sum()
    }

    /// Monitor events per second of wall-clock time — the hot-path
    /// throughput figure the interned-stack event model optimizes.
    ///
    /// The numerator is the `runtime.events` monotonic counter — the same
    /// source [`CampaignResult::detection_rate`] draws its denominator
    /// family from — so `BENCH_replay.json` and `BENCH_overhead.json`
    /// report rates over one consistent event count.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.obs.snapshot.counter("runtime.events") as f64 / secs
        }
    }

    /// The largest per-run depot (distinct interned stacks) in the
    /// campaign.
    #[must_use]
    pub fn max_depot_stacks(&self) -> usize {
        self.records.iter().map(|r| r.depot_stacks).max().unwrap_or(0)
    }

    /// The largest per-run shadow-word footprint in the campaign.
    #[must_use]
    pub fn peak_shadow_words(&self) -> usize {
        self.records
            .iter()
            .map(|r| r.peak_shadow_words)
            .max()
            .unwrap_or(0)
    }

    /// Per-shard latency aggregates, by shard id.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let mut stats: Vec<ShardStats> = (0..self.shards)
            .map(|shard| ShardStats {
                shard,
                runs: 0,
                total: Duration::ZERO,
                max: Duration::ZERO,
            })
            .collect();
        for r in &self.records {
            let s = &mut stats[r.shard];
            s.runs += 1;
            s.total += r.duration;
            s.max = s.max.max(r.duration);
        }
        stats
    }

    /// Detection-rate convergence: after each run (in spec order), the
    /// cumulative number of distinct fingerprints seen. The §3.2 story in
    /// one curve — more reruns keep exposing new schedule-dependent races
    /// until the campaign saturates.
    #[must_use]
    pub fn convergence(&self) -> Vec<(usize, usize)> {
        let mut seen = std::collections::BTreeSet::new();
        let mut points = Vec::with_capacity(self.records.len());
        for (i, r) in self.records.iter().enumerate() {
            seen.extend(r.fingerprints.iter().copied());
            points.push((i + 1, seen.len()));
        }
        points
    }

    /// The deterministic projection of the whole campaign — byte-equal
    /// across worker counts for the same config matrix.
    #[must_use]
    pub fn deterministic_digest(&self) -> Vec<(usize, String, u64, bool, Vec<Fingerprint>, u64)> {
        self.records
            .iter()
            .map(|r| {
                (
                    r.spec.index,
                    r.unit_name.clone(),
                    r.spec.seed,
                    r.racy,
                    r.fingerprints.clone(),
                    r.steps,
                )
            })
            .collect()
    }

    /// Files the deduplicated batch into a deployment pipeline.
    pub fn file_into(&self, pipeline: &mut Pipeline, day: u32) -> Vec<(Fingerprint, FileOutcome)> {
        pipeline.submit_batch(&self.batch, day)
    }
}

/// The campaign engine.
#[derive(Debug)]
pub struct Campaign {
    config: CampaignConfig,
    units: Vec<CampaignUnit>,
}

impl Campaign {
    /// A campaign over an explicit unit list.
    #[must_use]
    pub fn over_units(config: CampaignConfig, units: Vec<CampaignUnit>) -> Self {
        Campaign { config, units }
    }

    /// A campaign over the §4 pattern corpus (racy + fixed variants).
    #[must_use]
    pub fn over_patterns(config: CampaignConfig) -> Self {
        Self::over_units(config, pattern_suite(true))
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The units.
    #[must_use]
    pub fn units(&self) -> &[CampaignUnit] {
        &self.units
    }

    /// Enumerates the full spec matrix in deterministic order:
    /// units → seeds → strategies → detectors.
    #[must_use]
    pub fn specs(&self) -> Vec<RunSpec> {
        let mut specs =
            Vec::with_capacity(self.config.matrix_size(self.units.len()));
        let mut index = 0;
        for unit in 0..self.units.len() {
            for s in 0..self.config.seeds_per_unit {
                for &strategy in &self.config.strategies {
                    for &detector in &self.config.detectors {
                        specs.push(RunSpec {
                            index,
                            unit,
                            seed: self.config.base_seed + s as u64,
                            strategy,
                            detector,
                        });
                        index += 1;
                    }
                }
            }
        }
        specs
    }

    /// Enumerates the execute-once work list: one [`ExecSpec`] per
    /// `(unit, seed, strategy)`, in the same outer order as [`Campaign::specs`].
    /// Because detectors iterate innermost there, execution `e` covers the
    /// contiguous spec-index block `e.base_index .. e.base_index +
    /// detectors.len()`.
    #[must_use]
    pub fn exec_specs(&self) -> Vec<ExecSpec> {
        let detectors = self.config.detectors.len();
        let mut execs = Vec::with_capacity(
            self.units.len() * self.config.seeds_per_unit * self.config.strategies.len(),
        );
        let mut exec_index = 0;
        for unit in 0..self.units.len() {
            for s in 0..self.config.seeds_per_unit {
                for &strategy in &self.config.strategies {
                    execs.push(ExecSpec {
                        exec_index,
                        base_index: exec_index * detectors,
                        unit,
                        seed: self.config.base_seed + s as u64,
                        strategy,
                    });
                    exec_index += 1;
                }
            }
        }
        execs
    }

    /// One detector arena per worker, honoring the config's shadow
    /// implementation choice. `oracle_shadow` is a differential-testing
    /// knob: it needs the legacy detectors compiled in, which only test
    /// and bench builds do (the `oracle` feature).
    fn make_arena(&self) -> DetectorArena {
        if self.config.oracle_shadow {
            #[cfg(feature = "oracle")]
            return DetectorArena::new_oracle();
            #[cfg(not(feature = "oracle"))]
            panic!(
                "CampaignConfig::oracle_shadow(true) requires the test-only `oracle` feature"
            );
        }
        DetectorArena::new()
    }

    /// Executes one spec: run the program (through the worker's reusable
    /// detector arena), fingerprint the reports, feed the dedup stage, and
    /// emit the record.
    fn execute(
        &self,
        spec: RunSpec,
        worker: usize,
        shard: usize,
        dedup: &DedupMap,
        arena: &mut DetectorArena,
        sink: &dyn ObsSink,
    ) -> RunRecord {
        let unit = &self.units[spec.unit];
        let started = Instant::now();
        let (outcome, reports) = {
            let _span = SpanGuard::enter(sink, "shard.execute");
            arena.run_observed(
                spec.detector,
                &unit.program,
                RunConfig {
                    seed: spec.seed,
                    strategy: spec.strategy,
                    max_steps: self.config.max_steps,
                    ..RunConfig::default()
                },
                sink,
            )
        };
        let duration = started.elapsed();
        sink.observe("campaign.run_wall", duration);
        let racy = !reports.is_empty();
        sink.add("campaign.runs", 1);
        sink.add("campaign.racy_runs", u64::from(racy));
        sink.add("campaign.reports", reports.len() as u64);
        let mut fingerprints = Vec::with_capacity(reports.len());
        for mut r in reports {
            r.program = Some(std::sync::Arc::from(unit.name.as_str()));
            r.repro_seed = Some(spec.seed);
            r.repro = Some(ReproArtifact::seeded(spec.seed, spec.strategy));
            let fp = race_fingerprint(&r);
            fingerprints.push(fp);
            dedup.insert(fp, spec.index, r);
        }
        fingerprints.sort_unstable();
        fingerprints.dedup();
        RunRecord {
            spec,
            unit_name: unit.name.clone(),
            racy,
            fingerprints,
            steps: outcome.steps,
            events: outcome.stats.events_dispatched,
            depot_stacks: outcome.stats.depot.stacks,
            peak_shadow_words: outcome.stats.peak_shadow_words,
            worker,
            shard,
            duration,
        }
    }

    /// Executes one [`ExecSpec`] the execute-once way: run the program
    /// *once* under a [`TraceRecorder`](grs_runtime::TraceRecorder)
    /// (through the worker arena's depot), then fan the recorded trace
    /// through every configured detector offline. Emits one [`RunRecord`]
    /// per detector on the same spec-index space as [`Campaign::execute`],
    /// with identical deterministic fields — the replay-fidelity guarantee.
    #[allow(clippy::too_many_arguments)]
    fn execute_replay(
        &self,
        exec: ExecSpec,
        worker: usize,
        shard: usize,
        dedup: &DedupMap,
        arena: &mut DetectorArena,
        stats: &mut ReplayStats,
        sink: &dyn ObsSink,
    ) -> Vec<RunRecord> {
        let unit = &self.units[exec.unit];
        let record_started = Instant::now();
        let (outcome, trace) = {
            let _span = SpanGuard::enter(sink, "shard.execute");
            record_with_depot(
                &unit.program,
                &RunConfig {
                    seed: exec.seed,
                    strategy: exec.strategy,
                    max_steps: self.config.max_steps,
                    ..RunConfig::default()
                },
                arena.depot(),
            )
        };
        // Encoding is part of the record pipeline: it is what a deployment
        // would persist as the `.grtrace` artifact.
        let bytes = trace.encode();
        let trace_bytes = bytes.len();
        let trace_digest = trace.digest();
        stats.executions += 1;
        stats.trace_events += trace.events.len() as u64;
        stats.trace_bytes_total += trace_bytes as u64;
        stats.trace_bytes_max = stats.trace_bytes_max.max(trace_bytes);
        stats.record_wall += record_started.elapsed();
        sink.add("replay.trace_bytes", trace_bytes as u64);
        sink.observe("replay.record_wall", record_started.elapsed());

        // Replay side: decode the persisted bytes back in SoA chunks (the
        // deployment consumer's path — decode is replay cost, not record
        // cost) and fan the decoded lanes through every detector.
        let replay_started = Instant::now();
        let decoded = DecodedTrace::decode_with_chunk(&bytes, DEFAULT_CHUNK_EVENTS)
            .expect("a just-encoded trace always decodes");
        stats.decode_batches += decoded.chunks;
        stats.batch_events += decoded.len() as u64;
        let analyses =
            arena.replay_many_decoded_observed(&decoded, &self.config.detectors, sink);
        let replay_elapsed = replay_started.elapsed();
        stats.replays += analyses.len();
        stats.replay_wall += replay_elapsed;
        let per_replay = replay_elapsed / analyses.len().max(1) as u32;

        let mut records = Vec::with_capacity(analyses.len());
        for (pos, (detector, analysis)) in analyses.into_iter().enumerate() {
            let spec = RunSpec {
                index: exec.base_index + pos,
                unit: exec.unit,
                seed: exec.seed,
                strategy: exec.strategy,
                detector,
            };
            let racy = !analysis.reports.is_empty();
            sink.observe("campaign.run_wall", per_replay);
            sink.add("campaign.runs", 1);
            sink.add("campaign.racy_runs", u64::from(racy));
            sink.add("campaign.reports", analysis.reports.len() as u64);
            let mut fingerprints = Vec::with_capacity(analysis.reports.len());
            for mut r in analysis.reports {
                r.program = Some(std::sync::Arc::from(unit.name.as_str()));
                r.repro_seed = Some(spec.seed);
                r.repro = Some(ReproArtifact {
                    seed: spec.seed,
                    strategy: spec.strategy,
                    trace_digest: Some(trace_digest),
                    trace_path: None,
                });
                let fp = race_fingerprint(&r);
                fingerprints.push(fp);
                dedup.insert(fp, spec.index, r);
            }
            fingerprints.sort_unstable();
            fingerprints.dedup();
            records.push(RunRecord {
                spec,
                unit_name: unit.name.clone(),
                racy,
                fingerprints,
                steps: outcome.steps,
                events: analysis.events,
                depot_stacks: trace.stacks.len(),
                peak_shadow_words: analysis.peak_shadow_words,
                worker,
                shard,
                duration: per_replay,
            });
        }
        records
    }

    /// Runs the campaign execute-once: each `(unit, seed, strategy)` is
    /// executed one time under a trace recorder, and the trace is fanned
    /// through every configured detector offline. The result covers the
    /// *same* run matrix as [`Campaign::run`] — same spec indices, same
    /// [`CampaignResult::deterministic_digest`], same dedup batch — while
    /// executing `detectors.len()`× fewer schedules; the measured speedup
    /// lands in [`CampaignResult::replay`].
    /// Builds the campaign's observability report: snapshots the registry's
    /// metrics and buckets the sorted records' fingerprints into the §3.5
    /// timeline. The timeline is a pure function of deterministic outputs
    /// (spec indices and fingerprints), so it is byte-identical across
    /// worker counts *and* between live and replay execution.
    fn build_obs(
        &self,
        label: &str,
        registry: &MetricsRegistry,
        records: &[RunRecord],
    ) -> ObsReport {
        let mut timeline = CampaignTimeline::new(
            TimelineConfig::default_days().days(self.config.timeline_days),
        );
        let total = records.len();
        for r in records {
            let day = timeline.day_of(r.spec.index, total);
            for fp in &r.fingerprints {
                timeline.observe(day, fp.0);
            }
        }
        ObsReport::new(label, registry.snapshot(), timeline.finish())
    }

    #[must_use]
    pub fn run_replay(&self) -> CampaignResult {
        let started = Instant::now();
        let execs = self.exec_specs();
        let workers = self.config.workers.max(1).min(execs.len().max(1));
        let shards = self.config.shards.max(1);
        let dedup = DedupMap::new(shards);
        let registry = MetricsRegistry::new();
        let mut stats = ReplayStats::default();
        let mut records: Vec<RunRecord>;
        if workers <= 1 {
            let mut arena = self.make_arena();
            records = Vec::with_capacity(execs.len() * self.config.detectors.len());
            for &exec in &execs {
                registry.add_volatile("sched.home_pops", 1);
                records.extend(self.execute_replay(
                    exec,
                    0,
                    exec.exec_index % shards,
                    &dedup,
                    &mut arena,
                    &mut stats,
                    &registry,
                ));
            }
        } else {
            let queues: ShardQueues<ExecSpec> = ShardQueues::deal(shards, &execs);
            let collected: Mutex<Vec<RunRecord>> =
                Mutex::new(Vec::with_capacity(execs.len() * self.config.detectors.len()));
            let merged: Mutex<ReplayStats> = Mutex::new(ReplayStats::default());
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let queues = &queues;
                    let dedup = &dedup;
                    let collected = &collected;
                    let merged = &merged;
                    let registry = &registry;
                    scope.spawn(move || {
                        let mut arena = self.make_arena();
                        let mut local = Vec::new();
                        let mut local_stats = ReplayStats::default();
                        while let Some((exec, shard)) = queues.pop(w) {
                            registry.add_volatile(
                                if shard == w % shards { "sched.home_pops" } else { "sched.steals" },
                                1,
                            );
                            local.extend(self.execute_replay(
                                exec,
                                w,
                                shard,
                                dedup,
                                &mut arena,
                                &mut local_stats,
                                registry,
                            ));
                        }
                        collected
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .extend(local);
                        merged
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .merge(&local_stats);
                    });
                }
            });
            records = collected
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            records.sort_by_key(|r| r.spec.index);
            stats = merged
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        registry.observe("campaign.wall", started.elapsed());
        let obs = self.build_obs("campaign/replay", &registry, &records);
        CampaignResult {
            records,
            batch: dedup.into_batch(),
            units: self.units.iter().map(|u| u.name.clone()).collect(),
            workers,
            shards,
            wall: started.elapsed(),
            replay: Some(stats),
            obs,
        }
    }

    /// Runs the campaign with `config.workers` threads (serial when 1).
    #[must_use]
    pub fn run(&self) -> CampaignResult {
        let started = Instant::now();
        let specs = self.specs();
        let workers = self.config.workers.max(1).min(specs.len().max(1));
        let shards = self.config.shards.max(1);
        let dedup = DedupMap::new(shards);
        let registry = MetricsRegistry::new();
        let mut records: Vec<RunRecord>;
        if workers <= 1 {
            // Serial path: same execute + dedup machinery, no threads. One
            // arena serves every run, so shadow state warms up once.
            let mut arena = self.make_arena();
            records = specs
                .iter()
                .map(|&spec| {
                    registry.add_volatile("sched.home_pops", 1);
                    self.execute(spec, 0, spec.index % shards, &dedup, &mut arena, &registry)
                })
                .collect();
        } else {
            let queues = ShardQueues::deal(shards, &specs);
            let collected: Mutex<Vec<RunRecord>> = Mutex::new(Vec::with_capacity(specs.len()));
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let queues = &queues;
                    let dedup = &dedup;
                    let collected = &collected;
                    let registry = &registry;
                    scope.spawn(move || {
                        // One depot + detector arena per worker, reused for
                        // every spec the worker pops; per-run state resets
                        // on run start, so placement stays invisible in the
                        // deterministic outputs.
                        let mut arena = self.make_arena();
                        let mut local = Vec::new();
                        while let Some((spec, shard)) = queues.pop(w) {
                            registry.add_volatile(
                                if shard == w % shards { "sched.home_pops" } else { "sched.steals" },
                                1,
                            );
                            local.push(self.execute(spec, w, shard, dedup, &mut arena, registry));
                        }
                        collected
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .extend(local);
                    });
                }
            });
            records = collected
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            records.sort_by_key(|r| r.spec.index);
        }
        registry.observe("campaign.wall", started.elapsed());
        let obs = self.build_obs("campaign/live", &registry, &records);
        CampaignResult {
            records,
            batch: dedup.into_batch(),
            units: self.units.iter().map(|u| u.name.clone()).collect(),
            workers,
            shards,
            wall: started.elapsed(),
            replay: None,
            obs,
        }
    }

    /// Runs the campaign serially regardless of the configured worker
    /// count — the reference output for differential tests.
    #[must_use]
    pub fn run_serial(&self) -> CampaignResult {
        Campaign {
            config: self.config.clone().workers(1),
            units: self.units.clone(),
        }
        .run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_units() -> Vec<CampaignUnit> {
        pattern_suite(true)
            .into_iter()
            .filter(|u| u.name.starts_with("loop_index_capture") || u.name.starts_with("missing_lock"))
            .collect()
    }

    #[test]
    fn matrix_enumeration_is_dense_and_ordered() {
        let c = Campaign::over_units(
            CampaignConfig::smoke().seeds_per_unit(3),
            tiny_units(),
        );
        let specs = c.specs();
        assert_eq!(specs.len(), c.config().matrix_size(c.units().len()));
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn parallel_campaign_equals_serial_campaign() {
        let config = CampaignConfig::smoke().seeds_per_unit(4).shards(4);
        let c = Campaign::over_units(config, tiny_units());
        let serial = c.run_serial();
        for workers in [2, 4] {
            let par = Campaign::over_units(
                c.config().clone().workers(workers),
                c.units().to_vec(),
            )
            .run();
            assert_eq!(par.deterministic_digest(), serial.deterministic_digest());
            assert_eq!(par.batch.fingerprints(), serial.batch.fingerprints());
            let pr: Vec<_> = par
                .batch
                .iter()
                .map(|(fp, r)| (fp, r.repro_seed))
                .collect();
            let sr: Vec<_> = serial
                .batch
                .iter()
                .map(|(fp, r)| (fp, r.repro_seed))
                .collect();
            assert_eq!(pr, sr, "dedup representatives must match");
        }
    }

    #[test]
    fn racy_units_detected_fixed_units_clean() {
        let c = Campaign::over_units(
            CampaignConfig::smoke().seeds_per_unit(12),
            tiny_units(),
        );
        let r = c.run();
        for unit in c.units() {
            let unit_racy = r
                .records
                .iter()
                .filter(|rec| rec.unit_name == unit.name)
                .any(|rec| rec.racy);
            assert_eq!(
                Some(unit_racy),
                unit.expected_racy,
                "unit {}",
                unit.name
            );
        }
        assert!(r.detection_rate() > 0.0);
        assert!(!r.batch.is_empty());
    }

    /// `detection_rate` and `events_per_sec` draw from the monotonic
    /// counters; the run records are the ground truth. This pins the two
    /// sources equal — in live and execute-once replay mode — so every
    /// exported benchmark rate shares one consistent numerator.
    #[test]
    fn counters_agree_with_records() {
        let c = Campaign::over_units(
            CampaignConfig::smoke().seeds_per_unit(6).shards(2),
            tiny_units(),
        );
        for (mode, r) in [("live", c.run()), ("replay", c.run_replay())] {
            let counter = |name: &str| r.obs.snapshot.counter(name);
            assert_eq!(
                counter("campaign.runs"),
                r.records.len() as u64,
                "{mode}: campaign.runs"
            );
            assert_eq!(
                counter("campaign.racy_runs"),
                r.racy_runs() as u64,
                "{mode}: campaign.racy_runs"
            );
            assert_eq!(
                counter("runtime.events"),
                r.total_events(),
                "{mode}: runtime.events"
            );
            let record_rate = r.racy_runs() as f64 / r.records.len() as f64;
            assert!(
                (r.detection_rate() - record_rate).abs() < f64::EPSILON,
                "{mode}: detection_rate {} != record-derived {record_rate}",
                r.detection_rate()
            );
            assert!(r.detection_rate() > 0.0, "{mode}: corpus must detect");
        }
    }

    #[test]
    fn corpus_suite_compiles_and_campaigns() {
        let c = Campaign::over_units(
            CampaignConfig::smoke().seeds_per_unit(6),
            corpus_suite(),
        );
        let r = c.run();
        assert_eq!(r.total_runs(), c.config().matrix_size(c.units().len()));
        // The racy Go sources must be caught; fixed must stay silent.
        for unit in c.units() {
            if unit.expected_racy == Some(false) {
                assert!(
                    r.records
                        .iter()
                        .filter(|rec| rec.unit_name == unit.name)
                        .all(|rec| !rec.racy),
                    "false positive in {}",
                    unit.name
                );
            }
        }
        assert!(r.racy_runs() > 0);
    }

    #[test]
    fn filing_the_batch_dedups_into_the_pipeline() {
        let c = Campaign::over_units(
            CampaignConfig::smoke().seeds_per_unit(6),
            tiny_units(),
        );
        let r = c.run();
        let mut pipeline = Pipeline::new(grs_deploy::OwnerDb::new());
        let outcomes = r.file_into(&mut pipeline, 0);
        assert_eq!(outcomes.len(), r.batch.len());
        assert!(outcomes
            .iter()
            .all(|(_, o)| matches!(o, FileOutcome::Filed { .. })));
        // Day two: all duplicates.
        let again = r.file_into(&mut pipeline, 1);
        assert!(again.iter().all(|(_, o)| *o == FileOutcome::Duplicate));
    }

    #[test]
    fn replay_campaign_equals_live_campaign() {
        // The execute-once path must cover the same matrix with the same
        // deterministic outputs as the execute-per-detector path, for a
        // multi-detector, multi-strategy configuration.
        let config = CampaignConfig::smoke()
            .seeds_per_unit(4)
            .detectors(DetectorChoice::all().to_vec())
            .strategies(vec![Strategy::Random, Strategy::Pct { depth: 2 }])
            .workers(1);
        let c = Campaign::over_units(config, tiny_units());
        let live = c.run();
        let replayed = c.run_replay();
        assert_eq!(replayed.deterministic_digest(), live.deterministic_digest());
        assert_eq!(replayed.batch.fingerprints(), live.batch.fingerprints());
        let stats = replayed.replay.expect("replay stats present");
        assert_eq!(stats.executions * 3, stats.replays);
        assert_eq!(stats.executions, c.exec_specs().len());
        assert!(stats.trace_bytes_total > 0);
        assert!(stats.trace_bytes_max > 0);
        assert!(live.replay.is_none());
        // Peak shadow words are per-detector and must survive the replay
        // path bit-identically.
        for (a, b) in replayed.records.iter().zip(live.records.iter()) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.peak_shadow_words, b.peak_shadow_words, "{:?}", a.spec);
            assert_eq!(a.events, b.events, "{:?}", a.spec);
            assert_eq!(a.depot_stacks, b.depot_stacks, "{:?}", a.spec);
        }
        // Replay-path representatives carry the full repro artifact,
        // trace digest included.
        for (_, r) in replayed.batch.iter() {
            let repro = r.repro.as_ref().expect("replay reports carry repro");
            assert_eq!(Some(repro.seed), r.repro_seed);
            assert!(repro.trace_digest.is_some());
        }
    }

    #[test]
    fn parallel_replay_campaign_equals_serial_replay_campaign() {
        let config = CampaignConfig::smoke()
            .seeds_per_unit(4)
            .detectors(DetectorChoice::all().to_vec())
            .shards(4);
        let c = Campaign::over_units(config, tiny_units());
        let serial = Campaign::over_units(c.config().clone().workers(1), c.units().to_vec())
            .run_replay();
        for workers in [2, 4] {
            let par = Campaign::over_units(
                c.config().clone().workers(workers),
                c.units().to_vec(),
            )
            .run_replay();
            assert_eq!(par.deterministic_digest(), serial.deterministic_digest());
            assert_eq!(par.batch.fingerprints(), serial.batch.fingerprints());
            let (ps, ss) = (par.replay.unwrap(), serial.replay.unwrap());
            assert_eq!(ps.executions, ss.executions);
            assert_eq!(ps.replays, ss.replays);
            assert_eq!(ps.trace_events, ss.trace_events);
            assert_eq!(ps.trace_bytes_total, ss.trace_bytes_total);
        }
    }

    #[test]
    fn exec_specs_tile_the_run_matrix() {
        let config = CampaignConfig::smoke()
            .seeds_per_unit(3)
            .detectors(DetectorChoice::all().to_vec())
            .strategies(vec![Strategy::Random, Strategy::RoundRobin]);
        let c = Campaign::over_units(config, tiny_units());
        let specs = c.specs();
        let execs = c.exec_specs();
        assert_eq!(execs.len() * 3, specs.len());
        for e in &execs {
            for (pos, &d) in c.config().detectors.iter().enumerate() {
                let s = specs[e.base_index + pos];
                assert_eq!(s.unit, e.unit);
                assert_eq!(s.seed, e.seed);
                assert_eq!(s.strategy, e.strategy);
                assert_eq!(s.detector, d);
            }
        }
    }

    #[test]
    fn convergence_is_monotone() {
        let c = Campaign::over_units(CampaignConfig::smoke(), tiny_units());
        let r = c.run();
        let conv = r.convergence();
        assert_eq!(conv.len(), r.total_runs());
        for w in conv.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(conv.last().unwrap().1, r.batch.len());
    }

    #[test]
    fn shard_stats_cover_every_run() {
        let c = Campaign::over_units(
            CampaignConfig::smoke().seeds_per_unit(4).workers(2).shards(3),
            tiny_units(),
        );
        let r = c.run();
        let stats = r.shard_stats();
        assert_eq!(stats.len(), 3);
        assert_eq!(
            stats.iter().map(|s| s.runs).sum::<usize>(),
            r.total_runs()
        );
    }
}
