//! The concurrent dedup stage: fingerprint-sharded race aggregation.
//!
//! Every worker that finds a race inserts it here keyed by its
//! [`race_fingerprint`](grs_deploy::race_fingerprint) hash (§3.3.1's
//! line-insensitive, orientation-insensitive identity). The map is sharded
//! by fingerprint so concurrent inserts from different workers rarely
//! contend on the same lock, and the representative kept per fingerprint is
//! chosen deterministically — the report from the *lowest spec index* wins,
//! regardless of which worker got there first — so a parallel campaign's
//! dedup output is byte-identical to the serial one.

use std::collections::HashMap;
use std::sync::Mutex;

use grs_deploy::{Fingerprint, RaceBatch};
use grs_detector::RaceReport;

/// A fingerprint-sharded concurrent dedup map.
#[derive(Debug)]
pub struct DedupMap {
    shards: Vec<Mutex<HashMap<Fingerprint, (usize, RaceReport)>>>,
    raw: std::sync::atomic::AtomicU64,
}

impl DedupMap {
    /// A map with `shards` lock shards (clamped to at least 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        DedupMap {
            shards: (0..shards.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
            raw: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Total raw reports inserted (before dedup).
    #[must_use]
    pub fn raw_reports(&self) -> u64 {
        self.raw.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<HashMap<Fingerprint, (usize, RaceReport)>> {
        let i = (fp.0 % self.shards.len() as u64) as usize;
        &self.shards[i]
    }

    /// Records `report` (found by spec `spec_index`) under `fp`. Returns
    /// `true` when the fingerprint was new. On a collision the lower spec
    /// index keeps (or takes) the representative slot.
    pub fn insert(&self, fp: Fingerprint, spec_index: usize, report: RaceReport) -> bool {
        self.raw.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut shard = self
            .shard(fp)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match shard.entry(fp) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((spec_index, report));
                true
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if spec_index < o.get().0 {
                    o.insert((spec_index, report));
                }
                false
            }
        }
    }

    /// Number of distinct fingerprints recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len())
            .sum()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the map into a deterministically ordered [`RaceBatch`]
    /// (fingerprint-ascending, lowest-spec-index representatives).
    #[must_use]
    pub fn into_batch(self) -> RaceBatch {
        let raw = self.raw_reports();
        let mut batch = RaceBatch::new();
        for shard in self.shards {
            let map = shard
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (_, (spec_index, report)) in map {
                batch.add(report, spec_index as u64);
            }
        }
        // `add` counted one raw report per representative; top up to the
        // true pre-dedup volume seen by the concurrent stage.
        batch.note_raw_reports(raw.saturating_sub(batch.raw_reports()));
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_clock::Lockset;
    use grs_detector::{DetectorKind, RaceAccess};
    use grs_runtime::{AccessKind, Addr, Frame, Gid, SourceLoc, Stack};
    use std::sync::Arc;

    fn report(func: &str, seed: u64) -> RaceReport {
        let mk = |gid: u32, kind: AccessKind| RaceAccess {
            gid: Gid(gid),
            kind,
            stack_id: grs_runtime::StackId::EMPTY,
            stack: Stack::from_frames(vec![Frame {
                func: Arc::from(func),
                call_line: 1,
            }]),
            loc: SourceLoc { file: "f.go", line: 1 },
            locks_held: Lockset::new(),
        };
        RaceReport {
            addr: Addr(1),
            object: Arc::from("x"),
            prior: mk(0, AccessKind::Write),
            current: mk(1, AccessKind::Read),
            detector: DetectorKind::Tsan,
            program: None,
            repro_seed: Some(seed),
            repro: None,
        }
    }

    #[test]
    fn lowest_spec_index_wins_regardless_of_insert_order() {
        let fp = Fingerprint(42);
        let m = DedupMap::new(4);
        assert!(m.insert(fp, 9, report("F", 9)));
        assert!(!m.insert(fp, 2, report("F", 2)));
        assert!(!m.insert(fp, 5, report("F", 5)));
        let reports = m.into_batch().into_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].repro_seed, Some(2));
    }

    #[test]
    fn concurrent_inserts_converge_to_the_serial_result() {
        let m = DedupMap::new(8);
        std::thread::scope(|s| {
            for w in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..100 {
                        let spec = w * 100 + i;
                        m.insert(Fingerprint(i as u64 % 7), spec, report("F", spec as u64));
                    }
                });
            }
        });
        assert_eq!(m.len(), 7);
        for r in m.into_batch().into_reports() {
            // The minimum spec index touching fingerprint k is k (worker 0).
            assert!(r.repro_seed.unwrap() < 7);
        }
    }
}
