//! The datacenter fleet concurrency census (Figure 1, Observation 2).
//!
//! The paper scanned Uber's data centers — 130K Go processes, 39.5K Java,
//! 19K Python, 7K NodeJS — counting threads per process (`pprof` goroutine
//! counts for Go), and plotted a cumulative frequency distribution of
//! per-process concurrency. Headline numbers: median concurrency 16 for
//! NodeJS and Python, 256 for Java, and 2048 for Go (8× Java), with the Go
//! tail reaching ~130K goroutines.
//!
//! We cannot scan Uber's fleet, so this module models each language's
//! per-process concurrency as a categorical distribution over
//! power-of-two buckets calibrated to the figure's reading (the paper
//! itself reports bucketed values: "about 10% of \[Java\] cases have 4096
//! threads, and 7% have 8192"; "about 6% of \[Go\] processes contain 8102
//! goroutines"). Sampling a synthetic fleet and computing the CDF
//! regenerates Figure 1's series.
//!
//! # Example
//!
//! ```
//! use grs_fleet::{census, CensusConfig, Language};
//!
//! let fleet = census(&CensusConfig::paper_scaled(0.01), 7);
//! let go = fleet.cdf(Language::Go);
//! let java = fleet.cdf(Language::Java);
//! assert_eq!(go.median(), 2048);
//! assert_eq!(java.median(), 256);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four languages of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Language {
    /// NodeJS services (7K processes in the paper's scan).
    NodeJs,
    /// Python services (19K processes).
    Python,
    /// Java services (39.5K processes).
    Java,
    /// Go services (130K processes).
    Go,
}

impl Language {
    /// All four languages, in the paper's presentation order.
    #[must_use]
    pub fn all() -> [Language; 4] {
        [
            Language::NodeJs,
            Language::Python,
            Language::Java,
            Language::Go,
        ]
    }

    /// Number of processes the paper scanned for this language.
    #[must_use]
    pub fn paper_process_count(self) -> u64 {
        match self {
            Language::NodeJs => 7_000,
            Language::Python => 19_000,
            Language::Java => 39_500,
            Language::Go => 130_000,
        }
    }

    /// The per-process concurrency distribution, as `(level, weight)`
    /// buckets over powers of two, calibrated to Figure 1.
    #[must_use]
    pub fn concurrency_buckets(self) -> &'static [(u32, f64)] {
        match self {
            // "NodeJS typically has 16 threads."
            Language::NodeJs => &[(8, 0.10), (16, 0.70), (32, 0.15), (64, 0.05)],
            // "Python typically has less than 16-32 threads."
            Language::Python => &[
                (8, 0.15),
                (16, 0.50),
                (32, 0.25),
                (64, 0.08),
                (128, 0.02),
            ],
            // "Java often has between 128-1024 threads; about 10% of cases
            // have 4096 threads, and 7% have 8192." Median 256.
            Language::Java => &[
                (64, 0.03),
                (128, 0.14),
                (256, 0.38),
                (512, 0.16),
                (1024, 0.07),
                (2048, 0.05),
                (4096, 0.10),
                (8192, 0.07),
            ],
            // "Go processes have 1024-4096 goroutines; about 6% contain
            // 8102; the max reaches about 130K." Median 2048.
            Language::Go => &[
                (256, 0.05),
                (512, 0.10),
                (1024, 0.20),
                (2048, 0.25),
                (4096, 0.25),
                (8192, 0.06),
                (16384, 0.04),
                (32768, 0.02),
                (65536, 0.02),
                (131072, 0.01),
            ],
        }
    }
}

impl std::fmt::Display for Language {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Language::NodeJs => "NodeJS",
            Language::Python => "Python",
            Language::Java => "Java",
            Language::Go => "Go",
        };
        f.write_str(s)
    }
}

/// How many processes to sample per language.
#[derive(Debug, Clone)]
pub struct CensusConfig {
    /// `(language, process count)` pairs.
    pub processes: Vec<(Language, u64)>,
}

impl CensusConfig {
    /// The paper's process counts scaled by `scale` (1.0 = full fleet).
    #[must_use]
    pub fn paper_scaled(scale: f64) -> Self {
        CensusConfig {
            processes: Language::all()
                .into_iter()
                .map(|l| {
                    (
                        l,
                        ((l.paper_process_count() as f64 * scale) as u64).max(100),
                    )
                })
                .collect(),
        }
    }
}

impl Default for CensusConfig {
    fn default() -> Self {
        Self::paper_scaled(0.01)
    }
}

/// One language's sampled fleet.
#[derive(Debug, Clone)]
pub struct LanguageSample {
    /// The language.
    pub language: Language,
    /// Per-process concurrency levels.
    pub levels: Vec<u32>,
}

/// The full fleet census.
#[derive(Debug, Clone)]
pub struct Census {
    samples: Vec<LanguageSample>,
}

impl Census {
    /// The per-language samples.
    #[must_use]
    pub fn samples(&self) -> &[LanguageSample] {
        &self.samples
    }

    /// The CDF for one language.
    ///
    /// # Panics
    ///
    /// Panics when the language was not part of the census configuration.
    #[must_use]
    pub fn cdf(&self, language: Language) -> Cdf {
        let sample = self
            .samples
            .iter()
            .find(|s| s.language == language)
            .expect("language was sampled");
        Cdf::from_levels(&sample.levels)
    }

    /// Figure 1's series: for each language, `(level, cumulative fraction)`
    /// points.
    #[must_use]
    pub fn figure1_series(&self) -> Vec<(Language, Vec<(u32, f64)>)> {
        self.samples
            .iter()
            .map(|s| (s.language, Cdf::from_levels(&s.levels).points().to_vec()))
            .collect()
    }
}

/// Samples a synthetic fleet.
#[must_use]
pub fn census(config: &CensusConfig, seed: u64) -> Census {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = config
        .processes
        .iter()
        .map(|&(language, n)| {
            let buckets = language.concurrency_buckets();
            let levels = (0..n).map(|_| sample_bucket(buckets, &mut rng)).collect();
            LanguageSample { language, levels }
        })
        .collect();
    Census { samples }
}

fn sample_bucket(buckets: &[(u32, f64)], rng: &mut StdRng) -> u32 {
    let total: f64 = buckets.iter().map(|(_, w)| w).sum();
    let mut target = rng.gen_range(0.0..total);
    for &(level, w) in buckets {
        if target < w {
            return level;
        }
        target -= w;
    }
    buckets.last().expect("non-empty buckets").0
}

/// An empirical cumulative distribution over concurrency levels.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    points: Vec<(u32, f64)>,
    n: usize,
}

impl Cdf {
    /// Builds the CDF of a sample.
    #[must_use]
    pub fn from_levels(levels: &[u32]) -> Self {
        let mut sorted = levels.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let mut points = Vec::new();
        let mut i = 0;
        while i < n {
            let v = sorted[i];
            let mut j = i;
            while j < n && sorted[j] == v {
                j += 1;
            }
            points.push((v, j as f64 / n as f64));
            i = j;
        }
        Cdf { points, n }
    }

    /// The `(level, cumulative fraction)` step points, ascending.
    #[must_use]
    pub fn points(&self) -> &[(u32, f64)] {
        &self.points
    }

    /// Sample size.
    #[must_use]
    pub fn sample_size(&self) -> usize {
        self.n
    }

    /// The cumulative fraction at (or below) `level`.
    #[must_use]
    pub fn fraction_at(&self, level: u32) -> f64 {
        let mut f = 0.0;
        for &(v, cum) in &self.points {
            if v <= level {
                f = cum;
            } else {
                break;
            }
        }
        f
    }

    /// The `q`-quantile level (e.g. `0.5` = median).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u32 {
        for &(v, cum) in &self.points {
            if cum >= q {
                return v;
            }
        }
        self.points.last().map_or(0, |&(v, _)| v)
    }

    /// The median concurrency level.
    #[must_use]
    pub fn median(&self) -> u32 {
        self.quantile(0.5)
    }

    /// The largest observed level.
    #[must_use]
    pub fn max(&self) -> u32 {
        self.points.last().map_or(0, |&(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Census {
        census(&CensusConfig::paper_scaled(0.02), 11)
    }

    #[test]
    fn medians_match_the_paper() {
        let f = fleet();
        assert_eq!(f.cdf(Language::NodeJs).median(), 16);
        assert_eq!(f.cdf(Language::Python).median(), 16);
        assert_eq!(f.cdf(Language::Java).median(), 256);
        assert_eq!(f.cdf(Language::Go).median(), 2048);
    }

    #[test]
    fn go_has_eight_times_java_concurrency() {
        let f = fleet();
        let ratio =
            f64::from(f.cdf(Language::Go).median()) / f64::from(f.cdf(Language::Java).median());
        assert!((ratio - 8.0).abs() < f64::EPSILON, "ratio {ratio}");
    }

    #[test]
    fn go_tail_reaches_130k() {
        let f = census(&CensusConfig::paper_scaled(0.05), 3);
        assert_eq!(f.cdf(Language::Go).max(), 131_072);
        // NodeJS stays tiny.
        assert!(f.cdf(Language::NodeJs).max() <= 64);
    }

    #[test]
    fn java_heavy_buckets_match_quoted_fractions() {
        let f = census(&CensusConfig::paper_scaled(0.1), 5);
        let cdf = f.cdf(Language::Java);
        let frac_4096 = cdf.fraction_at(4096) - cdf.fraction_at(2048);
        let frac_8192 = cdf.fraction_at(8192) - cdf.fraction_at(4096);
        assert!((frac_4096 - 0.10).abs() < 0.02, "4096 bucket {frac_4096}");
        assert!((frac_8192 - 0.07).abs() < 0.02, "8192 bucket {frac_8192}");
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let f = fleet();
        for lang in Language::all() {
            let cdf = f.cdf(lang);
            let pts = cdf.points();
            for w in pts.windows(2) {
                assert!(w[0].0 < w[1].0);
                assert!(w[0].1 <= w[1].1);
            }
            let last = pts.last().expect("non-empty").1;
            assert!((last - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn census_is_deterministic() {
        let a = census(&CensusConfig::default(), 9);
        let b = census(&CensusConfig::default(), 9);
        assert_eq!(a.figure1_series(), b.figure1_series());
    }

    #[test]
    fn quantiles_are_ordered() {
        let cdf = fleet().cdf(Language::Go);
        assert!(cdf.quantile(0.25) <= cdf.quantile(0.5));
        assert!(cdf.quantile(0.5) <= cdf.quantile(0.9));
        assert!(cdf.quantile(0.9) <= cdf.max());
    }
}
