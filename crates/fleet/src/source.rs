//! Lazy campaign-unit sources — the paper-scale workload abstraction.
//!
//! The §3.3 deployment reruns ~100K unit tests nightly. Materializing that
//! many [`CampaignUnit`]s up front would hold every lowered program in
//! memory at once; a [`UnitSource`] instead exposes the unit axis as
//! `(len, build(index))`, so the campaign engine enumerates specs
//! arithmetically and workers lower units **on demand** — each worker keeps
//! a small [`UnitCache`] of recently built programs and the rest of the
//! corpus exists only as generator state.
//!
//! Three sources cover the campaign modalities:
//!
//! * [`UnitList`] — an eager, pre-built list (the Rust-closure pattern
//!   suite and ad-hoc test units);
//! * [`GoSnippetSuite`] — the embedded paper-listing Go sources from
//!   [`grs_corpus::go_snippets`], lowered through the shared path;
//! * [`GoCorpusSource`] — the per-test generator
//!   ([`grs_corpus::GoTestGen`]): a 100K-unit corpus weighs a few dozen
//!   bytes until a worker asks for a unit.
//!
//! All Go source, embedded or generated, funnels through one lowering
//! function, [`lower_source_unit`] — parse failures become structured
//! [`UnitError`]s (skip records), never panics.

use std::fmt;

use grs_corpus::{go_snippets, GoTestGen, GoTestSpec};

use crate::campaign::CampaignUnit;

/// A unit that failed to lower: the campaign counts it, keeps the first
/// few as evidence, and runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitError {
    /// Index of the unit in its source's enumeration.
    pub unit: usize,
    /// The unit's display name.
    pub name: String,
    /// Human-readable failure (compile phase + position + message).
    pub error: String,
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unit {} ({}): {}", self.unit, self.name, self.error)
    }
}

impl std::error::Error for UnitError {}

/// A lazily enumerable corpus of campaign units.
///
/// Implementations must be deterministic: `build(i)` returns the same
/// program for the same `i` on every call, from any thread — that is what
/// keeps [`CampaignResult::deterministic_digest`] invariant across worker
/// counts when units are built on demand.
///
/// [`CampaignResult::deterministic_digest`]:
///     crate::campaign::CampaignResult::deterministic_digest
pub trait UnitSource: Send + Sync {
    /// Number of units in the corpus.
    fn len(&self) -> usize;

    /// True when the corpus is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unit's display name, without building its program.
    fn name(&self, unit: usize) -> String;

    /// Builds (lowers) unit `unit`. A failure is a skip record, not a
    /// panic.
    fn build(&self, unit: usize) -> Result<CampaignUnit, UnitError>;
}

/// The one place Go source becomes a campaign unit: compile under the
/// `grs-interp` frontend, check the entry point, wrap the program.
/// Embedded snippets and generated tests both go through here.
pub fn lower_source_unit(
    index: usize,
    name: &str,
    source: &str,
    expected_racy: Option<bool>,
) -> Result<CampaignUnit, UnitError> {
    let fail = |e: grs_interp::CompileError| UnitError {
        unit: index,
        name: name.to_string(),
        error: e.to_string(),
    };
    let interp = grs_interp::Interp::compile(source).map_err(fail)?;
    let program = interp.program_checked(name, "main").map_err(fail)?;
    Ok(CampaignUnit {
        name: name.to_string(),
        program,
        expected_racy,
    })
}

/// An eager, pre-built unit list behind the [`UnitSource`] interface.
#[derive(Debug, Clone)]
pub struct UnitList {
    units: Vec<CampaignUnit>,
}

impl UnitList {
    /// Wraps an explicit unit list.
    #[must_use]
    pub fn new(units: Vec<CampaignUnit>) -> Self {
        UnitList { units }
    }
}

impl UnitSource for UnitList {
    fn len(&self) -> usize {
        self.units.len()
    }

    fn name(&self, unit: usize) -> String {
        self.units[unit].name.clone()
    }

    fn build(&self, unit: usize) -> Result<CampaignUnit, UnitError> {
        Ok(self.units[unit].clone())
    }
}

/// The embedded paper-listing Go snippets as a lazy source.
#[derive(Debug, Clone, Copy, Default)]
pub struct GoSnippetSuite;

impl GoSnippetSuite {
    /// The suite over [`grs_corpus::go_snippets`].
    #[must_use]
    pub fn new() -> Self {
        GoSnippetSuite
    }
}

impl UnitSource for GoSnippetSuite {
    fn len(&self) -> usize {
        go_snippets().len()
    }

    fn name(&self, unit: usize) -> String {
        go_snippets()[unit].name.to_string()
    }

    fn build(&self, unit: usize) -> Result<CampaignUnit, UnitError> {
        let s = &go_snippets()[unit];
        lower_source_unit(unit, s.name, s.source, Some(s.expected_racy))
    }
}

/// The generated per-test Go corpus as a lazy source: unit `i` is
/// [`GoTestGen::emit`]`(i)` lowered on demand. This is the paper-scale
/// modality — `count` can be 100,000 and the source still holds no unit
/// state at all.
#[derive(Debug, Clone, Copy)]
pub struct GoCorpusSource {
    gen: GoTestGen,
    count: usize,
}

impl GoCorpusSource {
    /// A corpus of `count` generated tests under `(spec, seed)`.
    #[must_use]
    pub fn new(spec: GoTestSpec, seed: u64, count: usize) -> Self {
        GoCorpusSource {
            gen: GoTestGen::new(spec, seed),
            count,
        }
    }

    /// The underlying generator.
    #[must_use]
    pub fn generator(&self) -> &GoTestGen {
        &self.gen
    }
}

impl UnitSource for GoCorpusSource {
    fn len(&self) -> usize {
        self.count
    }

    fn name(&self, unit: usize) -> String {
        self.gen.emit(unit as u64).name
    }

    fn build(&self, unit: usize) -> Result<CampaignUnit, UnitError> {
        let t = self.gen.emit(unit as u64);
        lower_source_unit(unit, &t.name, &t.source, Some(t.expected_racy))
    }
}

/// A small per-worker MRU cache of built units.
///
/// The spec matrix enumerates detectors/strategies/seeds innermost, so a
/// worker popping its home shard revisits the same unit many times in a
/// short window; a handful of entries absorbs nearly all rebuilds while
/// keeping per-worker memory constant (programs are `Arc`-backed, so a
/// cached clone is cheap).
#[derive(Debug)]
pub struct UnitCache {
    entries: Vec<(usize, CampaignUnit)>,
    cap: usize,
}

/// Default per-worker cache capacity.
pub const UNIT_CACHE_CAP: usize = 8;

impl UnitCache {
    /// An empty cache holding at most `cap` units.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        UnitCache {
            entries: Vec::with_capacity(cap.max(1)),
            cap: cap.max(1),
        }
    }

    /// The cached unit for `unit`, building (and caching) it on a miss.
    pub fn get_or_build(
        &mut self,
        source: &dyn UnitSource,
        unit: usize,
    ) -> Result<CampaignUnit, UnitError> {
        if let Some(pos) = self.entries.iter().position(|(u, _)| *u == unit) {
            let entry = self.entries.remove(pos);
            let built = entry.1.clone();
            self.entries.push(entry);
            return Ok(built);
        }
        let built = source.build(unit)?;
        if self.entries.len() == self.cap {
            self.entries.remove(0);
        }
        self.entries.push((unit, built.clone()));
        Ok(built)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snippet_suite_builds_every_unit() {
        let suite = GoSnippetSuite::new();
        assert!(!suite.is_empty());
        for i in 0..suite.len() {
            let unit = suite.build(i).expect("embedded snippets must lower");
            assert_eq!(unit.name, suite.name(i));
            assert!(unit.expected_racy.is_some());
        }
    }

    #[test]
    fn corpus_source_is_lazy_and_deterministic() {
        let src = GoCorpusSource::new(GoTestSpec::default_mix(), 7, 100_000);
        assert_eq!(src.len(), 100_000);
        // Building unit i twice yields the same name and ground truth —
        // and touches none of the other 99_999 units.
        for i in [0usize, 41_337, 99_999] {
            let a = src.build(i).expect("generated tests must lower");
            let b = src.build(i).expect("generated tests must lower");
            assert_eq!(a.name, b.name);
            assert_eq!(a.expected_racy, b.expected_racy);
            assert_eq!(a.name, src.name(i));
        }
    }

    #[test]
    fn lowering_failures_are_skip_records() {
        let err = lower_source_unit(3, "bad/unit", "package main\n\nfunc main() {", None)
            .expect_err("truncated source must not lower");
        assert_eq!(err.unit, 3);
        assert_eq!(err.name, "bad/unit");
        assert!(err.error.contains("parse"), "{err}");
    }

    #[test]
    fn unit_cache_caps_and_serves_hits() {
        let suite = GoSnippetSuite::new();
        let mut cache = UnitCache::new(2);
        let a = cache.get_or_build(&suite, 0).unwrap();
        let _b = cache.get_or_build(&suite, 1).unwrap();
        // Hit: same name back without rebuilding through a new index.
        let a2 = cache.get_or_build(&suite, 0).unwrap();
        assert_eq!(a.name, a2.name);
        // Third distinct unit evicts the LRU entry; capacity stays 2.
        let _c = cache.get_or_build(&suite, 2).unwrap();
        assert_eq!(cache.entries.len(), 2);
    }
}
