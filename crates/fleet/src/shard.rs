//! The sharded work-stealing run scheduler.
//!
//! A campaign's unit of work is either one [`RunSpec`] — execute one
//! program under one `(seed, strategy, detector)` combination — or, in the
//! execute-once replay campaign, one [`ExecSpec`] — execute one `(program,
//! seed, strategy)` under a trace recorder and fan the trace through every
//! configured detector. Work items are enumerated deterministically up
//! front and dealt round-robin across `S` shard queues; each of `N`
//! workers owns a home shard (worker `w` → shard `w % S`) and pops from it
//! until empty, then *steals* from the other shards' tails. Stealing keeps
//! every core busy through the campaign tail — pattern programs differ in
//! length by orders of magnitude, so static partitioning would leave
//! workers idle behind the shard that drew the long programs (the §3.2
//! nightly-campaign analogue: test shards are rebalanced because test
//! durations are wildly skewed).
//!
//! Which worker executes an item never affects its result: every run is a
//! self-contained deterministic `Runtime` instance, and the campaign
//! aggregates by spec index, not by completion order.

use std::collections::VecDeque;
use std::sync::Mutex;

use grs_detector::DetectorChoice;
use grs_runtime::Strategy;

/// One schedulable run: `(program × seed × strategy × detector)`, tagged
/// with its position in the campaign's deterministic enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Position in the campaign's spec enumeration — the deterministic
    /// tie-breaker for dedup representatives and record ordering.
    pub index: usize,
    /// Index of the unit (program) in the campaign's unit list.
    pub unit: usize,
    /// Scheduler seed for the run.
    pub seed: u64,
    /// Scheduling strategy for the run.
    pub strategy: Strategy,
    /// Detection algorithm monitoring the run.
    pub detector: DetectorChoice,
}

/// One schedulable *execution* of the replay campaign: `(program × seed ×
/// strategy)`, executed once under a trace recorder; the recorded trace is
/// then fanned through every configured detector offline.
///
/// Because the full matrix enumerates detectors innermost, the detector
/// runs this execution covers occupy the contiguous [`RunSpec::index`]
/// block `base_index .. base_index + detectors.len()` — which is how the
/// replay campaign produces records (and dedup representatives) on exactly
/// the same index space as the execute-per-detector campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecSpec {
    /// Position in the execution enumeration (units → seeds → strategies).
    pub exec_index: usize,
    /// Spec index of this execution's first detector run in the full
    /// matrix enumeration.
    pub base_index: usize,
    /// Index of the unit (program) in the campaign's unit list.
    pub unit: usize,
    /// Scheduler seed for the execution.
    pub seed: u64,
    /// Scheduling strategy for the execution.
    pub strategy: Strategy,
}

/// Fixed-size set of work queues with lock-per-shard stealing, generic
/// over the campaign's work item ([`RunSpec`] or [`ExecSpec`]).
#[derive(Debug)]
pub struct ShardQueues<T = RunSpec> {
    shards: Vec<Mutex<VecDeque<T>>>,
}

impl<T: Copy> ShardQueues<T> {
    /// Deals `specs` round-robin over `shards` queues (spec `i` → shard
    /// `i % shards`), preserving enumeration order within each shard.
    #[must_use]
    pub fn deal(shards: usize, specs: &[T]) -> Self {
        let n = shards.max(1);
        let mut queues: Vec<VecDeque<T>> = (0..n).map(|_| VecDeque::new()).collect();
        for (i, spec) in specs.iter().enumerate() {
            queues[i % n].push_back(*spec);
        }
        ShardQueues {
            shards: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Remaining specs across all shards (racy snapshot; exact only when
    /// no worker is running).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len())
            .sum()
    }

    /// Pops the next spec for `worker`: front of its home shard, else the
    /// *back* of the first non-empty victim shard (scanning from the home
    /// shard upward). Returns the spec and the shard it came from, or
    /// `None` when the campaign is drained.
    pub fn pop(&self, worker: usize) -> Option<(T, usize)> {
        let n = self.shards.len();
        let home = worker % n;
        {
            let mut q = self.shards[home]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(spec) = q.pop_front() {
                return Some((spec, home));
            }
        }
        for off in 1..n {
            let victim = (home + off) % n;
            let mut q = self.shards[victim]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(spec) = q.pop_back() {
                return Some((spec, victim));
            }
        }
        None
    }
}

/// The lazy replacement for dealing a materialized spec vector: shard
/// queues over the *index space* `0..total`, with the exact distribution
/// and pop order of [`ShardQueues::deal`] — global index `i` lives on
/// shard `i % shards` at within-shard position `i / shards` — but O(shards)
/// memory instead of O(total). This is what lets a 100K-spec campaign
/// enumerate its matrix arithmetically while keeping the work-stealing
/// schedule (and therefore the shard/steal metrics) identical.
#[derive(Debug)]
pub struct IndexQueues {
    /// Per-shard remaining positions `[front, back)`; position `p` of
    /// shard `s` is global index `p * shards + s`.
    shards: Vec<Mutex<(usize, usize)>>,
}

impl IndexQueues {
    /// Queues over `0..total`, index `i` on shard `i % shards`.
    #[must_use]
    pub fn new(shards: usize, total: usize) -> Self {
        let n = shards.max(1);
        IndexQueues {
            shards: (0..n)
                .map(|s| {
                    // Positions p with p * n + s < total.
                    let len = (total + n - 1 - s) / n;
                    Mutex::new((0, len))
                })
                .collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Remaining indices across all shards (racy snapshot; exact only
    /// when no worker is running).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let (front, back) = *s.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                back - front
            })
            .sum()
    }

    /// Pops the next global index for `worker`: front of its home shard,
    /// else the *back* of the first non-empty victim shard (scanning from
    /// the home shard upward) — the same discipline as
    /// [`ShardQueues::pop`]. Returns the index and the shard it came from.
    pub fn pop(&self, worker: usize) -> Option<(usize, usize)> {
        let n = self.shards.len();
        let home = worker % n;
        {
            let mut q = self.shards[home]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if q.0 < q.1 {
                let p = q.0;
                q.0 += 1;
                return Some((p * n + home, home));
            }
        }
        for off in 1..n {
            let victim = (home + off) % n;
            let mut q = self.shards[victim]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if q.0 < q.1 {
                q.1 -= 1;
                return Some((q.1 * n + victim, victim));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(n: usize) -> Vec<RunSpec> {
        (0..n)
            .map(|i| RunSpec {
                index: i,
                unit: 0,
                seed: i as u64,
                strategy: Strategy::Random,
                detector: DetectorChoice::Hybrid,
            })
            .collect()
    }

    #[test]
    fn deals_round_robin_and_drains_exactly_once() {
        let q = ShardQueues::deal(3, &specs(10));
        assert_eq!(q.shard_count(), 3);
        assert_eq!(q.remaining(), 10);
        let mut seen = Vec::new();
        while let Some((s, _)) = q.pop(0) {
            seen.push(s.index);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(q.remaining(), 0);
        assert!(q.pop(1).is_none());
    }

    #[test]
    fn home_shard_is_drained_in_order_before_stealing() {
        let q = ShardQueues::deal(2, &specs(6));
        // Worker 1's home shard holds specs 1, 3, 5 in order.
        let (a, sa) = q.pop(1).unwrap();
        let (b, sb) = q.pop(1).unwrap();
        let (c, sc) = q.pop(1).unwrap();
        assert_eq!((a.index, b.index, c.index), (1, 3, 5));
        assert_eq!((sa, sb, sc), (1, 1, 1));
        // Home empty: the next pop steals from shard 0's tail.
        let (d, sd) = q.pop(1).unwrap();
        assert_eq!(d.index, 4);
        assert_eq!(sd, 0);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let q = ShardQueues::deal(0, &specs(3));
        assert_eq!(q.shard_count(), 1);
        assert_eq!(q.remaining(), 3);
    }

    #[test]
    fn generic_queues_hold_exec_specs() {
        let execs: Vec<ExecSpec> = (0..5)
            .map(|i| ExecSpec {
                exec_index: i,
                base_index: i * 3,
                unit: 0,
                seed: i as u64,
                strategy: Strategy::Random,
            })
            .collect();
        let q: ShardQueues<ExecSpec> = ShardQueues::deal(2, &execs);
        let mut seen = Vec::new();
        while let Some((e, _)) = q.pop(0) {
            seen.push(e.exec_index);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn index_queues_match_dealt_queues_pop_for_pop() {
        // The lazy queues must be observationally identical to dealing a
        // materialized vector, for any (shards, total) and any single
        // worker's pop sequence.
        for shards in [1, 2, 3, 5] {
            for total in [0, 1, 7, 20] {
                for worker in 0..shards {
                    let dealt = ShardQueues::deal(shards, &specs(total));
                    let lazy = IndexQueues::new(shards, total);
                    assert_eq!(lazy.remaining(), total);
                    loop {
                        let a = dealt.pop(worker).map(|(s, sh)| (s.index, sh));
                        let b = lazy.pop(worker);
                        assert_eq!(a, b, "shards={shards} total={total} worker={worker}");
                        if a.is_none() {
                            break;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn index_queues_drain_exactly_once_under_contention() {
        let q = IndexQueues::new(4, 500);
        let taken = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for w in 0..4 {
                let (q, taken) = (&q, &taken);
                s.spawn(move || {
                    while let Some((i, _)) = q.pop(w) {
                        taken.lock().unwrap().push(i);
                    }
                });
            }
        });
        let mut got = taken.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..500).collect::<Vec<_>>());
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn concurrent_workers_never_duplicate_or_lose_specs() {
        let q = ShardQueues::deal(4, &specs(200));
        let taken = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for w in 0..4 {
                let (q, taken) = (&q, &taken);
                s.spawn(move || {
                    while let Some((spec, _)) = q.pop(w) {
                        taken.lock().unwrap().push(spec.index);
                    }
                });
            }
        });
        let mut got = taken.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }
}
