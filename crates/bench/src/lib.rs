//! Benchmark harness crate. All benchmarks live under `benches/`; each
//! regenerates one table or figure of the paper (printing the series) and
//! then times the underlying pipeline. See DESIGN.md for the index.
