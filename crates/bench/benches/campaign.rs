//! The campaign engine scaling benchmark.
//!
//! Measures the sharded work-stealing campaign runner (`grs_fleet`) over
//! the pattern suite at worker counts 1/2/4/8 — the empirical side of the
//! "nightly campaign, fast as the hardware allows" goal. The inline probe
//! prints the serial-vs-parallel speedup and asserts the two paths agree
//! on every deterministic output before any timing is trusted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grs::detector::{default_workers, DetectorChoice};
use grs::fleet::{pattern_suite, Campaign, CampaignConfig};
use grs::runtime::Strategy;

fn config(workers: usize) -> CampaignConfig {
    CampaignConfig::smoke()
        .seeds_per_unit(8)
        .strategies(vec![Strategy::Random])
        .detectors(vec![DetectorChoice::Hybrid])
        .workers(workers)
        .shards(2 * workers.max(1))
}

fn bench_campaign(c: &mut Criterion) {
    let units = pattern_suite(true);

    // Correctness gate + headline probe before timing.
    let serial = Campaign::over_units(config(1), units.clone()).run();
    let host = default_workers();
    let parallel = Campaign::over_units(config(host), units.clone()).run();
    assert_eq!(
        serial.deterministic_digest(),
        parallel.deterministic_digest(),
        "parallel campaign must be a pure optimization"
    );
    println!("\n===== campaign scaling probe ({host} hardware threads) =====");
    println!(
        "serial   {:>8.1} ms ({:>6.0} runs/s)",
        serial.wall.as_secs_f64() * 1e3,
        serial.throughput_rps()
    );
    println!(
        "parallel {:>8.1} ms ({:>6.0} runs/s) => {:.2}x speedup on {} runs\n",
        parallel.wall.as_secs_f64() * 1e3,
        parallel.throughput_rps(),
        serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9),
        parallel.total_runs()
    );

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("pattern_suite", workers),
            &workers,
            |b, &w| {
                let campaign = Campaign::over_units(config(w), units.clone());
                b.iter(|| campaign.run());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
