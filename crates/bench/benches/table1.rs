//! Table 1: concurrency-construct densities, Go vs Java.
//!
//! Prints the reproduced table once, then benchmarks the generate+scan
//! pipeline at a small scale.

use criterion::{criterion_group, criterion_main, Criterion};
use grs::experiments::table1;

fn bench_table1(c: &mut Criterion) {
    // Regenerate and print the paper's table once.
    let table = table1(0.002, 7);
    println!("\n===== Table 1 (reproduced) =====");
    println!("{}", table.render());
    println!(
        "ratios Go/Java: creation {:.2}x (paper ~1.14x), p2p {:.2}x (3.7x), group {:.2}x (1.9x), maps {:.2}x (1.34x)\n",
        table.creation_ratio(),
        table.p2p_ratio(),
        table.group_ratio(),
        table.map_ratio()
    );

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("generate_and_scan_9k_loc", |b| {
        b.iter(|| table1(0.0002, 7));
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
