//! Figures 3 & 4 and the §3.5 statistics: the deployment campaign.
//!
//! Prints both series (decimated) and the headline stats, then benchmarks
//! one full 180-day campaign run.

use criterion::{criterion_group, criterion_main, Criterion};
use grs::experiments::figure3_figure4;

fn bench_campaign(c: &mut Criterion) {
    let (result, stats) = figure3_figure4(42);
    println!("\n===== Figure 3 (outstanding vs day, every 10th day) =====");
    let f3: Vec<String> = result
        .figure3_series()
        .iter()
        .step_by(10)
        .map(|(d, o)| format!("d{d}:{o}"))
        .collect();
    println!("{}", f3.join(" "));
    println!("\n===== Figure 4 (created/resolved cumulative, every 10th day) =====");
    let f4: Vec<String> = result
        .figure4_series()
        .iter()
        .step_by(10)
        .map(|(d, c, r)| format!("d{d}:{c}/{r}"))
        .collect();
    println!("{}", f4.join(" "));
    println!("\n===== §3.5 statistics =====");
    println!(
        "detected={} (paper ~2000)  fixed={} (1011)  engineers={} (210)  patches={} (790)  new/day={:.1} (~5)\n",
        stats.total_detected,
        stats.total_fixed,
        stats.unique_engineers,
        stats.unique_patches,
        stats.new_per_day
    );

    let mut group = c.benchmark_group("fig3_fig4");
    group.sample_size(20);
    group.bench_function("campaign_180_days", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            figure3_figure4(seed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
