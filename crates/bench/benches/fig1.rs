//! Figure 1: the fleet concurrency CDF.
//!
//! Prints the series (per-language medians and selected CDF points), then
//! benchmarks census sampling + CDF construction.

use criterion::{criterion_group, criterion_main, Criterion};
use grs::experiments::figure1;
use grs::fleet::Language;

fn bench_fig1(c: &mut Criterion) {
    let fleet = figure1(0.05, 11);
    println!("\n===== Figure 1 (reproduced) =====");
    for lang in Language::all() {
        let cdf = fleet.cdf(lang);
        let pts: Vec<String> = cdf
            .points()
            .iter()
            .map(|(v, f)| format!("{v}:{:.2}", f))
            .collect();
        println!(
            "{lang:<7} median={} max={} cdf=[{}]",
            cdf.median(),
            cdf.max(),
            pts.join(" ")
        );
    }
    println!(
        "medians paper: NodeJS 16, Python 16, Java 256, Go 2048 (Go/Java = 8x)\n"
    );

    let mut group = c.benchmark_group("fig1");
    group.sample_size(20);
    group.bench_function("census_2k_processes", |b| {
        b.iter(|| figure1(0.01, 11));
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
