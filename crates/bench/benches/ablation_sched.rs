//! Ablation: scheduling strategy vs race-detection probability.
//!
//! The deployment problem of §3.2 — detection flakiness — depends entirely
//! on how adversarial the schedule is. The setup prints per-strategy
//! detection rates across the corpus (random walk vs PCT vs round-robin);
//! the timed section measures the cost of exploring under each strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use grs::detector::{ExploreConfig, Explorer};
use grs::patterns::registry;
use grs::runtime::Strategy;

fn detection_stats(strategy: Strategy) -> (f64, usize, usize) {
    let explorer = Explorer::new(ExploreConfig::quick().runs(40).strategy(strategy));
    let mut rate_sum = 0.0;
    let mut found = 0;
    let mut total = 0;
    for pattern in registry() {
        let r = explorer.explore(&pattern.racy_program());
        rate_sum += r.detection_rate();
        total += 1;
        if r.found_race() {
            found += 1;
        }
    }
    (rate_sum / total as f64, found, total)
}

fn bench_sched(c: &mut Criterion) {
    println!("\n===== Scheduler ablation (detection across the corpus) =====");
    for (name, strategy) in [
        ("random-walk", Strategy::Random),
        ("pct-depth3", Strategy::Pct { depth: 3 }),
        ("round-robin", Strategy::RoundRobin),
    ] {
        let (mean_rate, found, total) = detection_stats(strategy);
        println!(
            "{name:<12} mean per-run detection rate {:>5.1}%  patterns detected {found}/{total}",
            mean_rate * 100.0
        );
    }
    println!();

    let mut group = c.benchmark_group("ablation_sched");
    group.sample_size(10);
    let pattern = grs::patterns::find("missing_lock").expect("in corpus");
    for (name, strategy) in [
        ("random", Strategy::Random),
        ("pct3", Strategy::Pct { depth: 3 }),
        ("round_robin", Strategy::RoundRobin),
    ] {
        group.bench_function(name, |b| {
            let explorer = Explorer::new(ExploreConfig::quick().runs(20).strategy(strategy));
            b.iter(|| explorer.explore(&pattern.racy_program()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
