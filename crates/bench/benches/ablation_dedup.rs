//! Ablation: §3.3.1's dedup fingerprint vs the naive hash.
//!
//! The paper's fingerprint ignores line numbers and orders the two call
//! chains lexicographically. The naive strawman (hash everything, in
//! detection order) files duplicate tasks whenever an unrelated edit moves
//! a line or a schedule observes the accesses in the other order. The
//! setup prints the duplicate inflation over the pattern corpus explored
//! under many seeds; the timed section measures hashing throughput.

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, Criterion};
use grs::deploy::{naive_fingerprint, race_fingerprint};
use grs::detector::{ExploreConfig, Explorer, RaceReport};
use grs::patterns::registry;

fn collect_reports() -> Vec<RaceReport> {
    let mut all = Vec::new();
    for base in [1u64, 500, 1000, 1500] {
        let explorer = Explorer::new(ExploreConfig::quick().runs(30).base_seed(base));
        for pattern in registry() {
            all.extend(explorer.explore(&pattern.racy_program()).unique_races);
        }
    }
    all
}

fn bench_dedup(c: &mut Criterion) {
    let reports = collect_reports();
    let paper: HashSet<_> = reports.iter().map(race_fingerprint).collect();
    let naive: HashSet<_> = reports.iter().map(naive_fingerprint).collect();
    println!("\n===== Dedup fingerprint ablation =====");
    println!(
        "{} raw reports -> {} tasks with the paper fingerprint, {} with the naive hash ({:.1}x duplicate inflation)\n",
        reports.len(),
        paper.len(),
        naive.len(),
        naive.len() as f64 / paper.len() as f64
    );

    let mut group = c.benchmark_group("ablation_dedup");
    group.bench_function("paper_fingerprint", |b| {
        b.iter(|| {
            reports
                .iter()
                .map(race_fingerprint)
                .collect::<HashSet<_>>()
                .len()
        });
    });
    group.bench_function("naive_fingerprint", |b| {
        b.iter(|| {
            reports
                .iter()
                .map(naive_fingerprint)
                .collect::<HashSet<_>>()
                .len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dedup);
criterion_main!(benches);
