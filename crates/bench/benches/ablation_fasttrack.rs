//! Ablation: FastTrack's epoch fast path vs full vector clocks.
//!
//! FastTrack's claim (reference [44] of the study) is that most accesses
//! can be handled in O(1) with epochs instead of O(n)-sized vector clocks.
//! Both variants produce identical verdicts (tested in `grs-detector`);
//! this bench measures what the optimization buys on a read/write-heavy
//! workload and prints the epoch-hit statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use grs::detector::{FastTrack, FastTrackConfig};
use grs::runtime::{Program, RunConfig, Runtime};

/// Many goroutines hammering mostly-thread-local cells plus a properly
/// locked shared region: the access mix FastTrack's fast path targets.
fn workload() -> Program {
    Program::new("fasttrack_ablation", |ctx| {
        let mu = ctx.mutex("mu");
        let shared = ctx.cell("shared", 0i64);
        let wg = ctx.waitgroup("wg");
        for _ in 0..4 {
            wg.add(ctx, 1);
            let (mu, shared, wg) = (mu.clone(), shared.clone(), wg.clone());
            ctx.go("worker", move |ctx| {
                let local = ctx.cell("local", 0i64);
                for i in 0..30 {
                    ctx.update(&local, |v| v + i); // epoch fast path
                }
                mu.lock(ctx);
                ctx.update(&shared, |v| v + 1);
                mu.unlock(ctx);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
    })
}

fn bench_ablation(c: &mut Criterion) {
    let p = workload();
    let (_, ft) = Runtime::new(RunConfig::with_seed(1)).run(&p, FastTrack::new());
    println!("\n===== FastTrack epoch ablation =====");
    println!(
        "accesses={} epoch_fast_hits={} ({:.1}%) — the fraction resolved in O(1)\n",
        ft.accesses_processed(),
        ft.epoch_fast_hits(),
        ft.epoch_fast_hits() as f64 * 100.0 / ft.accesses_processed() as f64
    );

    let mut group = c.benchmark_group("ablation_fasttrack");
    group.sample_size(30);
    group.bench_function("epochs", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            Runtime::new(RunConfig::with_seed(seed)).run(&p, FastTrack::new())
        });
    });
    group.bench_function("pure_vector_clocks", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            Runtime::new(RunConfig::with_seed(seed))
                .run(&p, FastTrack::with_config(FastTrackConfig::pure_vc()))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
