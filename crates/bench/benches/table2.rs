//! Table 2: fixed-race counts by Go language feature.
//!
//! Prints the mixture-recovery table (injected population proportional to
//! the paper's counts, detected and re-classified from race reports), then
//! benchmarks the per-instance detect+classify step.

use criterion::{criterion_group, criterion_main, Criterion};
use grs::classify;
use grs::detector::{ExploreConfig, Explorer};
use grs::experiments::{table2, TallyConfig};
use grs::patterns;

fn bench_table2(c: &mut Criterion) {
    let result = table2(&TallyConfig {
        scale_divisor: 20.0,
        runs_per_instance: 40,
        seed: 5,
    });
    println!("\n===== Table 2 (reproduced as mixture recovery) =====");
    println!("{}", result.render());

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    let pattern = patterns::find("slice_concurrent_append").expect("in corpus");
    group.bench_function("detect_and_classify_one_instance", |b| {
        let explorer = Explorer::new(ExploreConfig::quick().runs(40));
        b.iter(|| {
            let r = explorer.explore(&pattern.racy_program());
            r.unique_races.first().map(classify)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
