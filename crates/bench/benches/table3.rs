//! Table 3: fixed-race counts for language-agnostic categories.

use criterion::{criterion_group, criterion_main, Criterion};
use grs::experiments::{table3, TallyConfig};

fn bench_table3(c: &mut Criterion) {
    let result = table3(&TallyConfig {
        scale_divisor: 20.0,
        runs_per_instance: 40,
        seed: 6,
    });
    println!("\n===== Table 3 (reproduced as mixture recovery) =====");
    println!("{}", result.render());

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("tally_quick", |b| {
        b.iter(|| table3(&TallyConfig::quick(6)));
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
