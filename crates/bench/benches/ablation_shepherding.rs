//! Ablation: deployment policy vs campaign outcome.
//!
//! The paper closes §3.5 with: "We believe that the presence of race
//! detection as part of a CI workflow will help address this problem by
//! preventing new races from being introduced, apart from reducing the
//! outstanding race count to zero" (Remark 1). This bench runs the
//! campaign under three policies — the historical one (shepherding ends),
//! permanent shepherding, and CI gating — and prints the resulting
//! outstanding-race trajectories.

use criterion::{criterion_group, criterion_main, Criterion};
use grs::deploy::sim::{SimConfig, TrackerSim};

fn bench_policies(c: &mut Criterion) {
    let historical = TrackerSim::new(SimConfig::paper()).run(42);
    let shepherd_forever = TrackerSim::new(SimConfig {
        shepherding_end: 10_000, // never stops
        ..SimConfig::paper()
    })
    .run(42);
    let ci_gated = TrackerSim::new(SimConfig::paper_with_ci_gating()).run(42);

    println!("\n===== Deployment-policy ablation (outstanding at day 60/120/179) =====");
    for (name, r) in [
        ("historical (paper)", &historical),
        ("shepherding-forever", &shepherd_forever),
        ("ci-gating (Remark 1)", &ci_gated),
    ] {
        println!(
            "{name:<22} day60={:>5} day120={:>5} day179={:>5}  fixed={}",
            r.daily[60].outstanding,
            r.daily[120].outstanding,
            r.daily[179].outstanding,
            r.total_fixed
        );
    }
    println!();

    let mut group = c.benchmark_group("ablation_shepherding");
    group.sample_size(20);
    group.bench_function("historical", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            TrackerSim::new(SimConfig::paper()).run(seed)
        });
    });
    group.bench_function("ci_gating", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            TrackerSim::new(SimConfig::paper_with_ci_gating()).run(seed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
