//! §3.5's detector-overhead experiment.
//!
//! The paper: "the 95th percentile of the running time of all tests without
//! data race detection is 25 minutes, whereas it increases by 4× to about
//! 100 minutes with data race enabled" (and cites 2×–20× runtime overhead
//! for TSan generally). Here the same workload program runs under no
//! monitor, the Eraser lockset detector, FastTrack, and the combined
//! TSan-style detector; the ratio of the medians is our measured overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use grs::detector::{Eraser, FastTrack, Tsan};
use grs::experiments::{overhead_probe, overhead_workload};
use grs::runtime::{NullMonitor, Program, RunConfig, Runtime};

fn run_once<M: grs::runtime::Monitor + 'static>(p: &Program, seed: u64, m: M) {
    let _ = Runtime::new(RunConfig::with_seed(seed)).run(p, m);
}

fn bench_overhead(c: &mut Criterion) {
    let p = overhead_workload();
    let probe = overhead_probe(&p, 30, 3);
    println!("\n===== §3.5 overhead probe =====");
    println!(
        "baseline {} ns/run, tsan {} ns/run => {:.2}x slowdown (paper: 4x test time; TSan cited at 2x-20x)\n",
        probe.baseline_ns,
        probe.detector_ns,
        probe.ratio()
    );

    let mut group = c.benchmark_group("overhead");
    group.sample_size(30);
    group.bench_function("baseline_null_monitor", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_once(&p, seed, NullMonitor);
        });
    });
    group.bench_function("eraser", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_once(&p, seed, Eraser::new());
        });
    });
    group.bench_function("fasttrack", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_once(&p, seed, FastTrack::new());
        });
    });
    group.bench_function("tsan_combined", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_once(&p, seed, Tsan::new());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
