//! Memory-bounded duplicate suppression for the intake service.
//!
//! The tracker is the authoritative suppressor — a fingerprint files iff no
//! task with that fingerprint is open. But the tracker sits behind the
//! service's core mutex, and a six-month deployment re-detects the same hot
//! races millions of times. [`BoundedDedup`] is the front line: a sharded
//! exact cache of open fingerprints behind an approximate FNV pre-filter,
//! with a **hard word budget**. When the cache is full, the oldest cached
//! representative is evicted (FIFO per shard); the next re-detection of an
//! evicted fingerprint falls through to the tracker and merely re-warms the
//! cache. Both approximation layers fail *safe*:
//!
//! * the bloom pre-filter only answers "definitely never cached" (skip the
//!   exact probe entirely) — a false maybe costs one shard lock, never a
//!   wrong verdict;
//! * eviction only loses the short-circuit — the tracker still suppresses.
//!
//! Correctness therefore never depends on the cache; memory use never
//! depends on the workload. `peak_words()` against `budget_words()` is the
//! soak gate's "dedup stayed under budget the whole run" check.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::fingerprint::Fingerprint;

/// 8-byte words one cached fingerprint is accounted as: the fingerprint
/// itself, the hash-set slot overhead, and the FIFO queue entry.
pub const WORDS_PER_ENTRY: usize = 4;

const SHARDS: usize = 16;

/// Smallest bloom filter the cache will build, bits.
const MIN_BLOOM_BITS: usize = 1 << 10;

#[derive(Default)]
struct Shard {
    cached: HashSet<u64>,
    // Insertion order, oldest first — the eviction queue. May hold stale
    // entries for invalidated fingerprints; eviction skips those.
    order: VecDeque<u64>,
}

/// The verdict [`BoundedDedup::check`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupVerdict {
    /// Cached as open: suppress without consulting the tracker.
    CachedOpen,
    /// Not in the cache (never seen, evicted, or bloom-missed): the caller
    /// must consult the tracker.
    Unknown,
}

/// Sharded, budgeted duplicate cache. See the module docs for semantics.
pub struct BoundedDedup {
    shards: Vec<Mutex<Shard>>,
    bloom: Vec<AtomicU64>,
    bloom_mask: u64,
    max_entries: usize,
    entries: AtomicUsize,
    peak_entries: AtomicUsize,
    evictions: AtomicU64,
}

impl std::fmt::Debug for BoundedDedup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedDedup")
            .field("budget_words", &self.budget_words())
            .field("words", &self.words())
            .field("evictions", &self.evictions())
            .finish_non_exhaustive()
    }
}

fn mix(fp: Fingerprint) -> u64 {
    // splitmix64 finalizer: the raw fingerprint is already FNV-mixed, but
    // shard/bloom indices use disjoint bit ranges and must not correlate.
    let mut h = fp.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl BoundedDedup {
    /// A cache holding at most `budget_words` 8-byte words of entries
    /// (at [`WORDS_PER_ENTRY`] words each; at least one entry per shard is
    /// always allowed so the cache functions even under a tiny budget).
    #[must_use]
    pub fn new(budget_words: usize) -> BoundedDedup {
        let max_entries = (budget_words / WORDS_PER_ENTRY).max(SHARDS);
        // ~8 bits per possible entry keeps the false-maybe rate low; the
        // bloom's own memory is a rounding error next to the entry budget.
        let bloom_bits = (max_entries * 8).next_power_of_two().max(MIN_BLOOM_BITS);
        BoundedDedup {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            bloom: (0..bloom_bits / 64).map(|_| AtomicU64::new(0)).collect(),
            bloom_mask: (bloom_bits as u64) - 1,
            max_entries,
            entries: AtomicUsize::new(0),
            peak_entries: AtomicUsize::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn bloom_positions(&self, h: u64) -> [(usize, u64); 2] {
        let a = h & self.bloom_mask;
        let b = (h >> 32 ^ h << 17) & self.bloom_mask;
        [
            ((a / 64) as usize, 1u64 << (a % 64)),
            ((b / 64) as usize, 1u64 << (b % 64)),
        ]
    }

    fn bloom_maybe(&self, h: u64) -> bool {
        self.bloom_positions(h)
            .iter()
            .all(|&(word, bit)| self.bloom[word].load(Ordering::Relaxed) & bit != 0)
    }

    fn bloom_set(&self, h: u64) {
        for (word, bit) in self.bloom_positions(h) {
            self.bloom[word].fetch_or(bit, Ordering::Relaxed);
        }
    }

    fn shard(&self, h: u64) -> &Mutex<Shard> {
        &self.shards[(h >> 48) as usize % SHARDS]
    }

    /// Is `fp` cached as an open task's fingerprint?
    #[must_use]
    pub fn check(&self, fp: Fingerprint) -> DedupVerdict {
        let h = mix(fp);
        if !self.bloom_maybe(h) {
            // Never inserted since startup — skip the shard lock entirely.
            return DedupVerdict::Unknown;
        }
        let shard = self
            .shard(h)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shard.cached.contains(&h) {
            DedupVerdict::CachedOpen
        } else {
            DedupVerdict::Unknown
        }
    }

    /// Caches `fp` as open, evicting the shard's oldest representative if
    /// the budget is exhausted.
    pub fn insert(&self, fp: Fingerprint) {
        let h = mix(fp);
        self.bloom_set(h);
        let per_shard_cap = (self.max_entries / SHARDS).max(1);
        let mut shard = self
            .shard(h)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !shard.cached.insert(h) {
            return;
        }
        shard.order.push_back(h);
        while shard.cached.len() > per_shard_cap {
            // Oldest first; skip queue entries whose fingerprint was
            // invalidated (already uncached) in the meantime.
            let Some(oldest) = shard.order.pop_front() else {
                break;
            };
            if shard.cached.remove(&oldest) {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.entries.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let now = self.entries.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_entries.fetch_max(now, Ordering::Relaxed);
    }

    /// Uncaches `fp` — called when its task is fixed, so the next detection
    /// files a fresh task instead of being suppressed by a stale cache hit.
    /// (The bloom filter is additive-only; a stale bloom bit only costs the
    /// next check a shard probe.)
    pub fn invalidate(&self, fp: Fingerprint) {
        let h = mix(fp);
        let mut shard = self
            .shard(h)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shard.cached.remove(&h) {
            self.entries.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// The hard budget, in 8-byte words.
    #[must_use]
    pub fn budget_words(&self) -> usize {
        self.max_entries * WORDS_PER_ENTRY
    }

    /// Current accounted size, in words.
    #[must_use]
    pub fn words(&self) -> usize {
        self.entries.load(Ordering::Relaxed) * WORDS_PER_ENTRY
    }

    /// High-water mark of [`BoundedDedup::words`] over the cache's life.
    #[must_use]
    pub fn peak_words(&self) -> usize {
        self.peak_entries.load(Ordering::Relaxed) * WORDS_PER_ENTRY
    }

    /// Representatives evicted to stay under budget.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_answers_and_invalidates() {
        let d = BoundedDedup::new(1 << 16);
        let fp = Fingerprint(0x1234);
        assert_eq!(d.check(fp), DedupVerdict::Unknown);
        d.insert(fp);
        assert_eq!(d.check(fp), DedupVerdict::CachedOpen);
        d.invalidate(fp);
        assert_eq!(d.check(fp), DedupVerdict::Unknown, "fix uncaches");
        assert_eq!(d.evictions(), 0);
    }

    #[test]
    fn budget_is_a_hard_cap_with_fifo_eviction() {
        let d = BoundedDedup::new(SHARDS * WORDS_PER_ENTRY * 4); // 4 entries/shard
        for i in 0..10_000u64 {
            d.insert(Fingerprint(i.wrapping_mul(0x9e37_79b9)));
        }
        assert!(d.words() <= d.budget_words(), "live size under budget");
        assert!(d.peak_words() <= d.budget_words(), "peak under budget");
        assert!(d.evictions() > 0, "small budget must evict");
        // Evicted entries answer Unknown — the tracker takes over.
        assert_eq!(d.check(Fingerprint(0)), DedupVerdict::Unknown);
    }

    #[test]
    fn double_insert_accounts_once() {
        let d = BoundedDedup::new(1 << 16);
        let fp = Fingerprint(7);
        d.insert(fp);
        d.insert(fp);
        assert_eq!(d.words(), WORDS_PER_ENTRY);
    }
}
