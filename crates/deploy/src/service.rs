//! The streaming trace-intake service: one facade over every ingestion
//! path.
//!
//! The paper's deployment (§3.3, Figure 2) is a *service*, not a batch
//! job: detector shards upload recorded runs all day, the filing side
//! dedups and files tasks, and the bug database outlives any single
//! process. [`IntakeService`] is that shape:
//!
//! * **One API.** The four historical entry points — `Pipeline::submit`,
//!   `submit_all`, `BugTracker::file_with_repro`, and hand-rolled
//!   decode-replay-file loops — are re-expressed as
//!   [`IntakeService::submit`], [`IntakeService::submit_batch`], and
//!   [`IntakeService::submit_trace`] (raw `.grtrace` bytes in, filed tasks
//!   out). Every failure is a typed [`IntakeError`]; nothing panics on
//!   client input.
//! * **Bounded intake.** Trace uploads land on a fixed worker pool behind
//!   a bounded queue. A full queue rejects with
//!   [`IntakeError::Busy`] and a retry hint — explicit backpressure,
//!   never unbounded buffering.
//! * **Bounded dedup.** Duplicate suppression front-lines through
//!   [`BoundedDedup`], a sharded exact cache under a hard word budget with
//!   FIFO representative eviction; the tracker stays authoritative, so
//!   eviction can never change a verdict.
//! * **Durable state.** The bug database snapshots to a versioned,
//!   crash-safe file ([`Snapshot`]); [`IntakeServiceBuilder::start`]
//!   restores it, so kill-and-restart loses nothing.
//!
//! [`IntakeServer`] puts the same service behind a framed byte protocol
//! ([`crate::wire`]) on any [`Transport`] — a real TCP listener in
//! deployment, in-process pipes in tests.

use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::Instant;

use grs_detector::{replay_decoded, FastTrack, RaceReport};
use grs_obs::ObsSink;
use grs_runtime::{DecodedTrace, ReproArtifact, StackDepot, TraceDecodeError};

use crate::assignee::{determine_assignee, OwnerDb};
use crate::dedup::{BoundedDedup, DedupVerdict};
use crate::fingerprint::race_fingerprint;
use crate::pipeline::FileOutcome;
use crate::store::{Snapshot, SnapshotError};
use crate::tracker::{BugTracker, FixError, TaskId};
use crate::wire::{RequestFrame, ResponseFrame, Transport};

/// Everything that can go wrong at the intake boundary. The service's
/// single error surface: bad input, overload, and persistence failures are
/// all values here — none of them panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntakeError {
    /// The uploaded trace failed to decode.
    Malformed(TraceDecodeError),
    /// The intake queue is full; back off and retry.
    Busy {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u32,
    },
    /// The service has been shut down; no further work is accepted.
    ShutDown,
    /// A fix request named a task that was never filed.
    UnknownTask(TaskId),
    /// A fix request named a task that is already fixed.
    AlreadyFixed(TaskId),
    /// Snapshot persistence or restore failed.
    Snapshot(SnapshotError),
}

impl fmt::Display for IntakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntakeError::Malformed(e) => write!(f, "malformed trace: {e}"),
            IntakeError::Busy { retry_after_ms } => {
                write!(f, "intake queue full; retry after {retry_after_ms} ms")
            }
            IntakeError::ShutDown => write!(f, "intake service is shut down"),
            IntakeError::UnknownTask(id) => write!(f, "unknown task {id}"),
            IntakeError::AlreadyFixed(id) => write!(f, "task {id} is already fixed"),
            IntakeError::Snapshot(e) => write!(f, "snapshot: {e}"),
        }
    }
}

impl std::error::Error for IntakeError {}

impl From<TraceDecodeError> for IntakeError {
    fn from(e: TraceDecodeError) -> Self {
        IntakeError::Malformed(e)
    }
}

impl From<SnapshotError> for IntakeError {
    fn from(e: SnapshotError) -> Self {
        IntakeError::Snapshot(e)
    }
}

impl From<FixError> for IntakeError {
    fn from(e: FixError) -> Self {
        match e {
            FixError::UnknownTask(id) => IntakeError::UnknownTask(id),
            FixError::AlreadyFixed(id) => IntakeError::AlreadyFixed(id),
        }
    }
}

/// What one accepted trace upload produced.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntakeSummary {
    /// Tasks newly filed from this trace, in filing order.
    pub filed: Vec<TaskId>,
    /// Reports suppressed as duplicates of open tasks.
    pub duplicates: u32,
    /// Raw race reports the replay detector produced.
    pub races: u32,
}

/// Point-in-time service statistics (see [`IntakeService::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntakeStats {
    /// Tasks ever filed.
    pub total_filed: usize,
    /// Tasks currently open.
    pub outstanding: usize,
    /// Trace uploads fully processed.
    pub traces: u64,
    /// Uploads rejected with [`IntakeError::Busy`].
    pub busy_rejections: u64,
    /// Uploads rejected as malformed.
    pub malformed: u64,
    /// High-water mark of the intake queue depth.
    pub queue_peak: usize,
    /// The dedup cache's hard budget, 8-byte words.
    pub dedup_budget_words: usize,
    /// The dedup cache's current size, words.
    pub dedup_words: usize,
    /// The dedup cache's high-water mark, words.
    pub dedup_peak_words: usize,
    /// Dedup representatives evicted to stay under budget.
    pub dedup_evictions: u64,
}

struct Ticket {
    state: Mutex<Option<Result<IntakeSummary, IntakeError>>>,
    done: Condvar,
}

impl Ticket {
    fn new() -> Arc<Ticket> {
        Arc::new(Ticket {
            state: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn complete(&self, result: Result<IntakeSummary, IntakeError>) {
        *self
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(result);
        self.done.notify_all();
    }
}

/// A pending asynchronous upload (see [`IntakeService::enqueue_trace`]).
#[must_use = "an unawaited ticket discards the upload's outcome"]
pub struct IntakeTicket {
    ticket: Arc<Ticket>,
}

impl fmt::Debug for IntakeTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IntakeTicket").finish_non_exhaustive()
    }
}

impl IntakeTicket {
    /// Blocks until a worker has processed the upload.
    ///
    /// # Errors
    ///
    /// Whatever the worker hit: [`IntakeError::Malformed`] for a bad
    /// trace, [`IntakeError::ShutDown`] when the service stopped before
    /// processing it.
    pub fn wait(self) -> Result<IntakeSummary, IntakeError> {
        let mut state = self
            .ticket
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self
                .ticket
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct Job {
    trace: Vec<u8>,
    day: u32,
    enqueued_at: Instant,
    ticket: Arc<Ticket>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

struct Core {
    owners: OwnerDb,
    tracker: BugTracker,
}

struct ServiceInner {
    core: Mutex<Core>,
    dedup: BoundedDedup,
    queue: Mutex<QueueState>,
    queue_nonempty: Condvar,
    queue_depth: usize,
    retry_after_ms: u32,
    sink: Option<Arc<dyn ObsSink>>,
    snapshot_path: Option<PathBuf>,
    shut_down: AtomicBool,
    traces: AtomicU64,
    busy_rejections: AtomicU64,
    malformed: AtomicU64,
    queue_peak: AtomicUsize,
}

impl ServiceInner {
    fn obs(&self, f: impl FnOnce(&dyn ObsSink)) {
        if let Some(sink) = &self.sink {
            f(sink.as_ref());
        }
    }

    /// Files one report on `day`: dedup-cache front line, then the
    /// authoritative tracker check-and-file under the core mutex.
    fn file_report(&self, report: &RaceReport, day: u32) -> FileOutcome {
        let fp = race_fingerprint(report);
        if self.dedup.check(fp) == DedupVerdict::CachedOpen {
            self.obs(|s| s.add("intake.duplicate", 1));
            return FileOutcome::Duplicate;
        }
        let mut core = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        let decision = determine_assignee(report, &core.owners);
        let repro = report
            .repro
            .clone()
            .or_else(|| report.repro_seed.map(ReproArtifact::seed_only));
        let outcome = match core
            .tracker
            .file_with_repro(fp, day, decision.assignee.clone(), repro)
        {
            Some(task) => FileOutcome::Filed {
                task,
                assignee: decision.assignee,
            },
            None => FileOutcome::Duplicate,
        };
        // Cache while still holding the core lock: a concurrent fix's
        // invalidate cannot interleave between the tracker verdict and the
        // cache insert, so CachedOpen always implies an open task.
        self.dedup.insert(fp);
        drop(core);
        self.obs(|s| match outcome {
            FileOutcome::Filed { .. } => s.add("intake.filed", 1),
            FileOutcome::Duplicate => s.add("intake.duplicate", 1),
        });
        outcome
    }

    /// Decode + replay + file — the whole per-trace pipeline a worker runs.
    fn process_trace(&self, bytes: &[u8], day: u32) -> Result<IntakeSummary, IntakeError> {
        let decoded = DecodedTrace::decode(bytes).map_err(|e| {
            self.malformed.fetch_add(1, Ordering::Relaxed);
            self.obs(|s| s.add("intake.malformed", 1));
            IntakeError::Malformed(e)
        })?;
        let depot = StackDepot::new();
        let mut detector = FastTrack::new();
        let outcome = replay_decoded(&mut detector, &decoded, &depot);
        let program: Arc<str> = Arc::from(decoded.meta.program.as_str());
        let mut summary = IntakeSummary {
            races: outcome.reports.len() as u32,
            ..IntakeSummary::default()
        };
        for mut report in outcome.reports {
            // The recording run's identity travels with the report so a
            // filed task is reproducible without the original uploader.
            report.program.get_or_insert_with(|| program.clone());
            if report.repro.is_none() {
                report.repro = Some(ReproArtifact::seeded(
                    decoded.meta.seed,
                    decoded.meta.strategy,
                ));
            }
            report.repro_seed.get_or_insert(decoded.meta.seed);
            match self.file_report(&report, day) {
                FileOutcome::Filed { task, .. } => summary.filed.push(task),
                FileOutcome::Duplicate => summary.duplicates += 1,
            }
        }
        self.traces.fetch_add(1, Ordering::Relaxed);
        self.obs(|s| s.add("intake.traces", 1));
        Ok(summary)
    }

    fn enqueue(&self, trace: Vec<u8>, day: u32) -> Result<IntakeTicket, IntakeError> {
        let ticket = Ticket::new();
        {
            let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if !queue.open {
                return Err(IntakeError::ShutDown);
            }
            if queue.jobs.len() >= self.queue_depth {
                self.busy_rejections.fetch_add(1, Ordering::Relaxed);
                self.obs(|s| s.add("intake.busy", 1));
                return Err(IntakeError::Busy {
                    retry_after_ms: self.retry_after_ms,
                });
            }
            queue.jobs.push_back(Job {
                trace,
                day,
                enqueued_at: Instant::now(),
                ticket: ticket.clone(),
            });
            let depth = queue.jobs.len();
            self.queue_peak.fetch_max(depth, Ordering::Relaxed);
            self.obs(|s| s.gauge_max("intake.queue.peak", depth as u64));
        }
        self.queue_nonempty.notify_one();
        Ok(IntakeTicket { ticket })
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(job) = queue.jobs.pop_front() {
                        break job;
                    }
                    if !queue.open {
                        return;
                    }
                    queue = self
                        .queue_nonempty
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let result = self.process_trace(&job.trace, job.day);
            self.obs(|s| s.observe("intake.latency", job.enqueued_at.elapsed()));
            job.ticket.complete(result);
        }
    }

    fn close_queue(&self) {
        let drained: Vec<Job> = {
            let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if !queue.open {
                return;
            }
            queue.open = false;
            queue.jobs.drain(..).collect()
        };
        self.queue_nonempty.notify_all();
        for job in drained {
            job.ticket.complete(Err(IntakeError::ShutDown));
        }
    }
}

/// Configures and starts an [`IntakeService`] (see
/// [`IntakeService::builder`]).
#[must_use = "a builder does nothing until start()"]
pub struct IntakeServiceBuilder {
    workers: usize,
    queue_depth: usize,
    dedup_budget_words: usize,
    retry_after_ms: u32,
    snapshot_path: Option<PathBuf>,
    sink: Option<Arc<dyn ObsSink>>,
    owners: OwnerDb,
}

impl fmt::Debug for IntakeServiceBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IntakeServiceBuilder")
            .field("workers", &self.workers)
            .field("queue_depth", &self.queue_depth)
            .field("dedup_budget_words", &self.dedup_budget_words)
            .field("snapshot_path", &self.snapshot_path)
            .finish_non_exhaustive()
    }
}

impl Default for IntakeServiceBuilder {
    fn default() -> Self {
        IntakeServiceBuilder {
            workers: 2,
            queue_depth: 256,
            dedup_budget_words: 1 << 20,
            retry_after_ms: 25,
            snapshot_path: None,
            sink: None,
            owners: OwnerDb::new(),
        }
    }
}

impl IntakeServiceBuilder {
    /// Decode/replay worker threads (min 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Maximum queued uploads before [`IntakeError::Busy`] (min 1).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Hard dedup-cache budget, 8-byte words.
    pub fn dedup_budget(mut self, words: usize) -> Self {
        self.dedup_budget_words = words;
        self
    }

    /// Backoff hint carried in [`IntakeError::Busy`].
    pub fn retry_after_ms(mut self, ms: u32) -> Self {
        self.retry_after_ms = ms;
        self
    }

    /// Snapshot file: restored on start when present, written on shutdown
    /// and by [`IntakeService::save_snapshot`].
    pub fn snapshot_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot_path = Some(path.into());
        self
    }

    /// Metrics sink for intake counters, queue gauges, and latency
    /// histograms.
    pub fn observed(mut self, sink: Arc<dyn ObsSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Ownership database for assignee determination.
    pub fn owners(mut self, owners: OwnerDb) -> Self {
        self.owners = owners;
        self
    }

    /// Starts the service: restores the snapshot (when configured and
    /// present), warms the dedup cache from open tasks, and spawns the
    /// worker pool.
    ///
    /// # Errors
    ///
    /// [`IntakeError::Snapshot`] when a configured snapshot file exists but
    /// fails to load or restore. A *missing* file is a fresh start, not an
    /// error.
    pub fn start(self) -> Result<IntakeService, IntakeError> {
        let tracker = match &self.snapshot_path {
            Some(path) if path.exists() => Snapshot::load(path)?.restore()?,
            _ => BugTracker::new(),
        };
        let dedup = BoundedDedup::new(self.dedup_budget_words);
        let open: Vec<_> = tracker.open_tasks().collect();
        for id in open {
            if let Some(task) = tracker.task(id) {
                dedup.insert(task.fingerprint);
            }
        }
        let inner = Arc::new(ServiceInner {
            core: Mutex::new(Core {
                owners: self.owners,
                tracker,
            }),
            dedup,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            queue_nonempty: Condvar::new(),
            queue_depth: self.queue_depth,
            retry_after_ms: self.retry_after_ms,
            sink: self.sink,
            snapshot_path: self.snapshot_path,
            shut_down: AtomicBool::new(false),
            traces: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            queue_peak: AtomicUsize::new(0),
        });
        let workers = (0..self.workers)
            .map(|i| {
                let inner = inner.clone();
                thread::Builder::new()
                    .name(format!("intake-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn intake worker")
            })
            .collect();
        Ok(IntakeService { inner, workers })
    }
}

/// The unified intake facade. See the module docs for the architecture.
///
/// # Example
///
/// ```
/// use grs_deploy::service::IntakeService;
/// use grs_runtime::{record, RunConfig};
/// use grs_patterns::find;
///
/// let service = IntakeService::builder().workers(1).start().unwrap();
/// let (_, trace) = record(
///     &find("missing_lock").unwrap().racy_program(),
///     &RunConfig::with_seed(3),
/// );
/// let summary = service.submit_trace(trace.encode(), 0).unwrap();
/// assert_eq!(summary.races as usize, summary.filed.len() + summary.duplicates as usize);
/// let stats = service.shutdown().unwrap();
/// assert_eq!(stats.traces, 1);
/// ```
pub struct IntakeService {
    inner: Arc<ServiceInner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl fmt::Debug for IntakeService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IntakeService")
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.inner.queue_depth)
            .finish_non_exhaustive()
    }
}

/// A cloneable submission handle — what uploader threads and the
/// [`IntakeServer`]'s connection handlers hold. The [`IntakeService`]
/// itself stays with the owner, which alone can snapshot and shut down.
#[derive(Clone)]
pub struct IntakeHandle {
    inner: Arc<ServiceInner>,
}

impl fmt::Debug for IntakeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IntakeHandle").finish_non_exhaustive()
    }
}

macro_rules! shared_intake_api {
    () => {
        /// Submits one already-detected race report on `day` —
        /// synchronous, bypassing the trace queue (the successor of
        /// `Pipeline::submit`).
        ///
        /// # Errors
        ///
        /// [`IntakeError::ShutDown`] after shutdown.
        pub fn submit(&self, report: &RaceReport, day: u32) -> Result<FileOutcome, IntakeError> {
            if self.inner.shut_down.load(Ordering::Acquire) {
                return Err(IntakeError::ShutDown);
            }
            Ok(self.inner.file_report(report, day))
        }

        /// Submits a batch of reports (the successor of
        /// `Pipeline::submit_all` / `RaceBatch` filing loops).
        ///
        /// # Errors
        ///
        /// [`IntakeError::ShutDown`] after shutdown.
        pub fn submit_batch(
            &self,
            reports: &[RaceReport],
            day: u32,
        ) -> Result<Vec<FileOutcome>, IntakeError> {
            reports.iter().map(|r| self.submit(r, day)).collect()
        }

        /// Files one already-deduplicated [`RaceBatch`](crate::batch::RaceBatch)
        /// (a campaign day's output) and returns the per-fingerprint
        /// outcomes in fingerprint order — the successor of
        /// `Pipeline::submit_batch`. Every `Duplicate` here means an open
        /// task from a previous day, not within-batch noise.
        ///
        /// # Errors
        ///
        /// [`IntakeError::ShutDown`] after shutdown.
        pub fn submit_race_batch(
            &self,
            batch: &crate::batch::RaceBatch,
            day: u32,
        ) -> Result<Vec<(crate::fingerprint::Fingerprint, FileOutcome)>, IntakeError> {
            batch
                .iter()
                .map(|(fp, report)| Ok((fp, self.submit(report, day)?)))
                .collect()
        }

        /// Uploads an encoded `.grtrace` and blocks for the outcome:
        /// enqueue, decode, replay through the detector, file every race.
        ///
        /// # Errors
        ///
        /// [`IntakeError::Busy`] when the queue is full (backpressure —
        /// retry after the hint), [`IntakeError::Malformed`] when the
        /// bytes don't decode, [`IntakeError::ShutDown`] after shutdown.
        pub fn submit_trace(
            &self,
            trace: Vec<u8>,
            day: u32,
        ) -> Result<IntakeSummary, IntakeError> {
            self.inner.enqueue(trace, day)?.wait()
        }

        /// Like [`Self::submit_trace`] but returns immediately with a
        /// ticket to wait on, so one uploader can keep many traces in
        /// flight.
        ///
        /// # Errors
        ///
        /// [`IntakeError::Busy`] or [`IntakeError::ShutDown`] at enqueue
        /// time; processing errors surface from [`IntakeTicket::wait`].
        pub fn enqueue_trace(
            &self,
            trace: Vec<u8>,
            day: u32,
        ) -> Result<IntakeTicket, IntakeError> {
            self.inner.enqueue(trace, day)
        }

        /// Marks a task fixed and invalidates its dedup-cache entry, so
        /// the next detection of the same race files a fresh task.
        ///
        /// # Errors
        ///
        /// [`IntakeError::UnknownTask`] / [`IntakeError::AlreadyFixed`]
        /// for bad ids — client input, not a panic.
        pub fn fix(
            &self,
            task: TaskId,
            day: u32,
            engineer: &str,
            patch: u64,
        ) -> Result<(), IntakeError> {
            let mut core = self
                .inner
                .core
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let fp = core
                .tracker
                .task(task)
                .ok_or(IntakeError::UnknownTask(task))?
                .fingerprint;
            core.tracker.try_fix(task, day, engineer, patch)?;
            self.inner.dedup.invalidate(fp);
            drop(core);
            self.inner.obs(|s| s.add("intake.fixed", 1));
            Ok(())
        }

        /// Runs `f` against the live tracker under the service lock.
        pub fn with_tracker<R>(&self, f: impl FnOnce(&BugTracker) -> R) -> R {
            let core = self
                .inner
                .core
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            f(&core.tracker)
        }

        /// Freezes the current bug database (cheap: clones the task list).
        #[must_use]
        pub fn snapshot(&self) -> Snapshot {
            self.with_tracker(Snapshot::capture)
        }

        /// Current service statistics.
        #[must_use]
        pub fn stats(&self) -> IntakeStats {
            let (total_filed, outstanding) =
                self.with_tracker(|t| (t.total_filed(), t.outstanding()));
            IntakeStats {
                total_filed,
                outstanding,
                traces: self.inner.traces.load(Ordering::Relaxed),
                busy_rejections: self.inner.busy_rejections.load(Ordering::Relaxed),
                malformed: self.inner.malformed.load(Ordering::Relaxed),
                queue_peak: self.inner.queue_peak.load(Ordering::Relaxed),
                dedup_budget_words: self.inner.dedup.budget_words(),
                dedup_words: self.inner.dedup.words(),
                dedup_peak_words: self.inner.dedup.peak_words(),
                dedup_evictions: self.inner.dedup.evictions(),
            }
        }
    };
}

impl IntakeHandle {
    shared_intake_api!();
}

impl IntakeService {
    /// A builder with the defaults: 2 workers, a 256-deep queue, an 8 MiB
    /// dedup budget, no snapshot, no metrics.
    pub fn builder() -> IntakeServiceBuilder {
        IntakeServiceBuilder::default()
    }

    /// A cloneable submission handle for uploader threads.
    #[must_use]
    pub fn handle(&self) -> IntakeHandle {
        IntakeHandle {
            inner: self.inner.clone(),
        }
    }

    shared_intake_api!();

    /// Writes the bug database to the configured snapshot path.
    ///
    /// # Errors
    ///
    /// [`IntakeError::Snapshot`] when no path was configured
    /// ([`SnapshotError::Io`] with `NotFound`) or the write fails.
    pub fn save_snapshot(&self) -> Result<(), IntakeError> {
        let Some(path) = &self.inner.snapshot_path else {
            return Err(IntakeError::Snapshot(SnapshotError::Io(
                std::io::ErrorKind::NotFound,
            )));
        };
        self.snapshot().save(path)?;
        Ok(())
    }

    /// Graceful shutdown: stops accepting work, fails queued-but-unstarted
    /// uploads with [`IntakeError::ShutDown`], joins the workers, persists
    /// a final snapshot when a path is configured, and returns the final
    /// statistics.
    ///
    /// # Errors
    ///
    /// [`IntakeError::Snapshot`] when the final snapshot write fails (the
    /// service is down regardless).
    pub fn shutdown(mut self) -> Result<IntakeStats, IntakeError> {
        self.inner.shut_down.store(true, Ordering::Release);
        self.inner.close_queue();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let stats = self.stats();
        if self.inner.snapshot_path.is_some() {
            self.save_snapshot()?;
        }
        Ok(stats)
    }
}

impl Drop for IntakeService {
    fn drop(&mut self) {
        // Best-effort shutdown for the non-graceful path; `shutdown()`
        // already drained `workers`, making this a no-op after it.
        self.inner.shut_down.store(true, Ordering::Release);
        self.inner.close_queue();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The intake service behind the framed wire protocol, one handler thread
/// per connection, on any [`Transport`].
#[derive(Debug)]
pub struct IntakeServer;

/// A running [`IntakeServer`]'s control handle; [`ServerHandle::shutdown`]
/// stops the accept loop and joins every connection handler.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    waker: Box<dyn Fn() + Send + Sync>,
    accept: Option<thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerHandle").finish_non_exhaustive()
    }
}

impl IntakeServer {
    /// Spawns the accept loop. Each connection gets a handler thread that
    /// answers every request frame with exactly one response frame.
    pub fn spawn(handle: IntakeHandle, transport: impl Transport + 'static) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let waker = transport.waker();
        let handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = stop.clone();
            let handlers = handlers.clone();
            let mut transport = transport;
            thread::Builder::new()
                .name("intake-accept".into())
                .spawn(move || loop {
                    let conn = match transport.accept() {
                        Ok(conn) => conn,
                        Err(_) => break, // transport closed
                    };
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let handle = handle.clone();
                    let handler = thread::Builder::new()
                        .name("intake-conn".into())
                        .spawn(move || serve_connection(&handle, conn))
                        .expect("spawn intake connection handler");
                    handlers
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(handler);
                })
                .expect("spawn intake accept loop")
        };
        ServerHandle {
            stop,
            waker,
            accept: Some(accept),
            handlers,
        }
    }
}

impl ServerHandle {
    /// Stops accepting connections and joins all handler threads (which
    /// exit when their clients disconnect).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        (self.waker)();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handlers: Vec<_> = self
            .handlers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

fn serve_connection(handle: &IntakeHandle, mut conn: Box<dyn crate::wire::Conn>) {
    loop {
        let frame = match RequestFrame::read_from(&mut conn) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean disconnect
            Err(e) => {
                // Protocol error: report it once, then drop the connection
                // (framing is unrecoverable after a desync).
                let _ = ResponseFrame::Malformed {
                    message: e.to_string(),
                }
                .write_to(&mut conn);
                return;
            }
        };
        let response = match frame {
            RequestFrame::Ping => ResponseFrame::Pong,
            RequestFrame::TraceUpload { day, trace } => {
                match handle.submit_trace(trace, day) {
                    Ok(summary) => ResponseFrame::Accepted {
                        filed: summary.filed.len() as u32,
                        duplicates: summary.duplicates,
                        races: summary.races,
                    },
                    Err(IntakeError::Busy { retry_after_ms }) => {
                        ResponseFrame::Busy { retry_after_ms }
                    }
                    Err(e) => ResponseFrame::Malformed {
                        message: e.to_string(),
                    },
                }
            }
        };
        if response.write_to(&mut conn).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_patterns::find;
    use grs_runtime::{record, RunConfig};

    fn racy_trace(seed: u64) -> Vec<u8> {
        let (_, trace) = record(
            &find("missing_lock").expect("pattern exists").racy_program(),
            &RunConfig::with_seed(seed),
        );
        trace.encode()
    }

    #[test]
    fn trace_upload_files_and_dedups() {
        let service = IntakeService::builder().workers(2).start().unwrap();
        let first = service.submit_trace(racy_trace(3), 0).unwrap();
        assert!(!first.filed.is_empty(), "a racy trace files at least once");
        // A different seed of the same program is the same logical race.
        let second = service.submit_trace(racy_trace(4), 1).unwrap();
        assert!(second.filed.is_empty(), "same fingerprint suppressed");
        assert!(second.races == 0 || second.duplicates > 0);
        let stats = service.shutdown().unwrap();
        assert_eq!(stats.traces, 2);
        assert!(stats.dedup_words <= stats.dedup_budget_words);
    }

    #[test]
    fn malformed_upload_is_a_typed_error_not_a_panic() {
        let service = IntakeService::builder().workers(1).start().unwrap();
        let err = service.submit_trace(vec![0xde, 0xad], 0).unwrap_err();
        assert!(matches!(err, IntakeError::Malformed(_)));
        assert_eq!(service.stats().malformed, 1);
    }

    #[test]
    fn fix_reopens_the_fingerprint() {
        let service = IntakeService::builder().workers(1).start().unwrap();
        let first = service.submit_trace(racy_trace(3), 0).unwrap();
        let task = first.filed[0];
        service.fix(task, 2, "alice", 700).unwrap();
        assert_eq!(
            service.fix(task, 3, "bob", 701),
            Err(IntakeError::AlreadyFixed(task))
        );
        assert_eq!(
            service.fix(TaskId(9999), 3, "bob", 701),
            Err(IntakeError::UnknownTask(TaskId(9999)))
        );
        let again = service.submit_trace(racy_trace(5), 4).unwrap();
        assert!(
            again.races == 0 || !again.filed.is_empty(),
            "after the fix, a re-detection files fresh"
        );
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        // One worker, depth-1 queue, and uploads kept in flight via
        // tickets: the queue must fill and reject.
        let service = IntakeService::builder()
            .workers(1)
            .queue_depth(1)
            .start()
            .unwrap();
        let trace = racy_trace(3);
        let mut busy = 0u32;
        let mut tickets = Vec::new();
        for _ in 0..64 {
            match service.enqueue_trace(trace.clone(), 0) {
                Ok(t) => tickets.push(t),
                Err(IntakeError::Busy { retry_after_ms }) => {
                    assert!(retry_after_ms > 0);
                    busy += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(busy > 0, "burst against a depth-1 queue must backpressure");
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(u64::from(busy), service.stats().busy_rejections);
    }

    #[test]
    fn shutdown_fails_queued_work_and_rejects_new() {
        let service = IntakeService::builder().workers(1).start().unwrap();
        let handle = service.handle();
        let stats = service.shutdown().unwrap();
        assert_eq!(stats.traces, 0);
        assert_eq!(
            handle.submit_trace(vec![], 0).unwrap_err(),
            IntakeError::ShutDown
        );
    }

    #[test]
    fn server_round_trips_frames_in_process() {
        use crate::wire::{InProcTransport, RequestFrame, ResponseFrame};
        let service = IntakeService::builder().workers(2).start().unwrap();
        let (transport, connector) = InProcTransport::new();
        let server = IntakeServer::spawn(service.handle(), transport);

        let mut conn = connector.connect().unwrap();
        RequestFrame::Ping.write_to(&mut conn).unwrap();
        assert_eq!(
            ResponseFrame::read_from(&mut conn).unwrap(),
            Some(ResponseFrame::Pong)
        );
        RequestFrame::TraceUpload {
            day: 0,
            trace: racy_trace(3),
        }
        .write_to(&mut conn)
        .unwrap();
        let Some(ResponseFrame::Accepted { filed, races, .. }) =
            ResponseFrame::read_from(&mut conn).unwrap()
        else {
            panic!("expected Accepted");
        };
        assert!(filed >= 1);
        assert!(races >= 1);
        // A garbage payload answers Malformed but keeps the connection.
        RequestFrame::TraceUpload {
            day: 0,
            trace: vec![1, 2, 3],
        }
        .write_to(&mut conn)
        .unwrap();
        assert!(matches!(
            ResponseFrame::read_from(&mut conn).unwrap(),
            Some(ResponseFrame::Malformed { .. })
        ));
        drop(conn);
        server.shutdown();
        service.shutdown().unwrap();
    }
}
