//! The post-facto race reporting pipeline of §3.3 and the deployment
//! campaign simulation behind Figures 3–4 and the §3.5 statistics.
//!
//! The paper's deployment runs the detector daily over the monorepo's unit
//! tests, then:
//!
//! 1. **deduplicates** detected races with a hash that ignores source line
//!    numbers and orders the two call chains lexicographically
//!    ([`fingerprint::race_fingerprint`], §3.3.1),
//! 2. **assigns** each unique race to a developer via a heuristic anchored
//!    on the *root* frames of the two stacks, with an explanation log
//!    ([`assignee::determine_assignee`], §3.3.2),
//! 3. **files** a task in a bug tracker, suppressing duplicates only while
//!    a task with the same fingerprint is open ([`tracker::BugTracker`]),
//! 4. repeats daily for six months, producing the dynamics of Figures 3–4
//!    ([`intake::Campaign`]).
//!
//! Naming note: this crate's simulation of the *intake* side (daily filing
//! over simulated months) lives in [`intake`]; the execution-campaign
//! engine that runs real detector matrices lives in `grs_fleet::campaign`.
//!
//! # Example
//!
//! ```
//! use grs_deploy::intake::{Campaign, CampaignConfig};
//!
//! let result = Campaign::new(CampaignConfig::paper()).run(42);
//! assert!(result.total_filed >= 1500, "paper: ~2000 detected");
//! assert!(result.total_fixed >= 700, "paper: 1011 fixed");
//! ```

pub mod assignee;
pub mod batch;
pub mod fingerprint;
pub mod intake;
pub mod pipeline;
pub mod tracker;

pub use assignee::{determine_assignee, AssigneeDecision, OwnerDb};
pub use batch::RaceBatch;
pub use intake::{Campaign, CampaignConfig, CampaignResult, DayStats};
pub use fingerprint::{
    naive_fingerprint, race_fingerprint, race_fingerprint_interned, Fingerprint,
};
pub use pipeline::{FileOutcome, Pipeline};
pub use tracker::{BugTracker, TaskId, TaskState};

/// The types every deploy user imports, for `use grs_deploy::prelude::*`.
pub mod prelude {
    pub use crate::assignee::{determine_assignee, OwnerDb};
    pub use crate::fingerprint::{race_fingerprint, Fingerprint};
    pub use crate::intake::{Campaign, CampaignConfig, CampaignResult};
    pub use crate::pipeline::{FileOutcome, Pipeline};
    pub use crate::tracker::{BugTracker, TaskId, TaskState};
}
