//! The post-facto race reporting pipeline of §3.3 and the deployment
//! campaign simulation behind Figures 3–4 and the §3.5 statistics.
//!
//! The paper's deployment runs the detector daily over the monorepo's unit
//! tests, then:
//!
//! 1. **deduplicates** detected races with a hash that ignores source line
//!    numbers and orders the two call chains lexicographically
//!    ([`fingerprint::race_fingerprint`], §3.3.1),
//! 2. **assigns** each unique race to a developer via a heuristic anchored
//!    on the *root* frames of the two stacks, with an explanation log
//!    ([`assignee::determine_assignee`], §3.3.2),
//! 3. **files** a task in a bug tracker, suppressing duplicates only while
//!    a task with the same fingerprint is open ([`tracker::BugTracker`]),
//! 4. repeats daily for six months, producing the dynamics of Figures 3–4
//!    ([`sim::TrackerSim`]).
//!
//! Naming note: three layers share this territory. The *execution* engine
//! that runs real detector matrices lives in `grs_fleet::campaign`; the
//! long-running *ingestion* server is [`service::IntakeService`]; the
//! Figures 3–4 tracker-dynamics *simulation* is [`sim::TrackerSim`]
//! (formerly `intake::Campaign` — [`intake`] keeps deprecated aliases).
//!
//! # Example
//!
//! ```
//! use grs_deploy::sim::{SimConfig, TrackerSim};
//!
//! let result = TrackerSim::new(SimConfig::paper()).run(42);
//! assert!(result.total_filed >= 1500, "paper: ~2000 detected");
//! assert!(result.total_fixed >= 700, "paper: 1011 fixed");
//! ```

pub mod assignee;
pub mod batch;
pub mod dedup;
pub mod fingerprint;
pub mod intake;
pub mod pipeline;
pub mod service;
pub mod sim;
pub mod store;
pub mod tracker;
pub mod wire;

pub use assignee::{determine_assignee, AssigneeDecision, OwnerDb};
pub use batch::RaceBatch;
pub use dedup::BoundedDedup;
pub use fingerprint::{
    naive_fingerprint, race_fingerprint, race_fingerprint_interned, Fingerprint,
};
pub use pipeline::FileOutcome;
#[allow(deprecated)]
pub use pipeline::Pipeline;
pub use service::{
    IntakeError, IntakeServer, IntakeService, IntakeStats, IntakeSummary, IntakeTicket,
};
pub use sim::{DayStats, SimConfig, SimResult, TrackerSim};
pub use store::{Snapshot, SnapshotError};
pub use tracker::{BugTracker, FixError, RestoreError, TaskId, TaskState};

/// The types every deploy user imports, for `use grs_deploy::prelude::*`.
pub mod prelude {
    pub use crate::assignee::{determine_assignee, OwnerDb};
    pub use crate::fingerprint::{race_fingerprint, Fingerprint};
    #[allow(deprecated)]
    pub use crate::pipeline::Pipeline;
    pub use crate::pipeline::FileOutcome;
    pub use crate::service::{
        IntakeError, IntakeHandle, IntakeServer, IntakeService, IntakeSummary,
    };
    pub use crate::sim::{SimConfig, SimResult, TrackerSim};
    pub use crate::store::Snapshot;
    pub use crate::tracker::{BugTracker, TaskId, TaskState};
    pub use crate::wire::{InProcTransport, TcpTransport, Transport};
}
