//! §3.3.2's assignee heuristic.
//!
//! Without an automatically derived root cause, the candidate assignees are
//! limited to the authors of the *root* and *leaf* frames of the two call
//! chains. The paper chooses the root owners — developers with a stake in
//! the functional correctness of the whole flow — then corrects for
//! organizational churn: frequent recent modifiers are preferred, team
//! ownership metadata is consulted, and departed developers are skipped.
//! Crucially, the decision ships with a log of *why* the tool chose that
//! person, which the paper found materially improved developer acceptance.

use std::collections::HashMap;

use grs_detector::RaceReport;

/// Per-author statistics for one function's history.
#[derive(Debug, Clone)]
pub struct AuthorStat {
    /// Author login.
    pub author: String,
    /// Number of commits touching the function.
    pub commits: u32,
    /// Whether the author is still in the organization.
    pub present: bool,
}

/// Ownership metadata the heuristic consults: per-function author history
/// plus optional team ownership.
#[derive(Debug, Clone, Default)]
pub struct OwnerDb {
    authors: HashMap<String, Vec<AuthorStat>>,
    teams: HashMap<String, String>,
}

impl OwnerDb {
    /// An empty database (the heuristic then falls back to "unassigned").
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an author having modified `func` in `commits` commits.
    pub fn add_author(&mut self, func: &str, author: &str, commits: u32, present: bool) {
        self.authors
            .entry(func.to_string())
            .or_default()
            .push(AuthorStat {
                author: author.to_string(),
                commits,
                present,
            });
    }

    /// Attaches team ownership metadata to `func`.
    pub fn set_team(&mut self, func: &str, team: &str) {
        self.teams.insert(func.to_string(), team.to_string());
    }

    fn best_present_author(&self, func: &str) -> Option<&AuthorStat> {
        self.authors
            .get(func)?
            .iter()
            .filter(|a| a.present)
            .max_by_key(|a| a.commits)
    }

    fn team(&self, func: &str) -> Option<&str> {
        self.teams.get(func).map(String::as_str)
    }
}

/// The heuristic's decision, including its reasoning log.
#[derive(Debug, Clone)]
pub struct AssigneeDecision {
    /// Chosen assignee (a developer login or a team name), if any.
    pub assignee: Option<String>,
    /// Every candidate considered, in preference order.
    pub candidates: Vec<String>,
    /// Human-readable log of how the decision was reached (§3.3.2: "we
    /// found... attaching a log of how our algorithm arrived at the choice
    /// ... was useful to the developers").
    pub rationale: Vec<String>,
}

/// Chooses an assignee for a race report.
///
/// Preference order, per the paper:
/// 1. the most frequent *present* modifier of either stack's **root**
///    function,
/// 2. team ownership metadata on a root function,
/// 3. the most frequent present modifier of a **leaf** function (the actual
///    racing accesses),
/// 4. unassigned (triage queue).
///
/// # Example
///
/// ```
/// use grs_deploy::{determine_assignee, OwnerDb};
/// # use grs_detector::{ExploreConfig, Explorer};
/// # use grs_patterns::find;
/// let mut db = OwnerDb::new();
/// // The racy accesses sit under the "handler" goroutine's root frame.
/// db.add_author("handler", "alice", 12, true);
/// db.add_author("handler", "bob", 40, false); // departed
/// # let races = Explorer::new(ExploreConfig::quick().runs(40))
/// #     .explore(&find("missing_lock").unwrap().racy_program()).unique_races;
/// # let report = &races[0];
/// let decision = determine_assignee(report, &db);
/// assert_eq!(decision.assignee.as_deref(), Some("alice"));
/// assert!(!decision.rationale.is_empty());
/// ```
#[must_use]
pub fn determine_assignee(report: &RaceReport, db: &OwnerDb) -> AssigneeDecision {
    let (s1, s2) = report.stacks();
    let mut rationale = Vec::new();
    let mut candidates = Vec::new();

    let roots: Vec<&str> = [s1.root(), s2.root()]
        .into_iter()
        .flatten()
        .map(|f| f.func.as_ref())
        .collect();
    let leaves: Vec<&str> = [s1.leaf(), s2.leaf()]
        .into_iter()
        .flatten()
        .map(|f| f.func.as_ref())
        .collect();

    rationale.push(format!(
        "candidate functions: roots {roots:?} (preferred: stake in end-to-end \
         correctness), leaves {leaves:?}"
    ));

    // 1. Root authors.
    let mut best: Option<(&AuthorStat, &str)> = None;
    for func in &roots {
        if let Some(stat) = db.best_present_author(func) {
            candidates.push(stat.author.clone());
            if best.is_none_or(|(b, _)| stat.commits > b.commits) {
                best = Some((stat, func));
            }
        } else if let Some(all) = db.authors.get(*func) {
            for a in all {
                if !a.present {
                    rationale.push(format!(
                        "skipped {} (author of {func}): no longer in the organization",
                        a.author
                    ));
                }
            }
        }
    }
    if let Some((stat, func)) = best {
        rationale.push(format!(
            "chose {}: most frequent present modifier of root function {func} \
             ({} commits)",
            stat.author, stat.commits
        ));
        return AssigneeDecision {
            assignee: Some(stat.author.clone()),
            candidates,
            rationale,
        };
    }

    // 2. Team metadata on a root.
    for func in &roots {
        if let Some(team) = db.team(func) {
            rationale.push(format!(
                "no present root author; assigned owning team {team} of {func} \
                 from ownership metadata"
            ));
            candidates.push(team.to_string());
            return AssigneeDecision {
                assignee: Some(team.to_string()),
                candidates,
                rationale,
            };
        }
    }

    // 3. Leaf authors.
    let mut best: Option<(&AuthorStat, &str)> = None;
    for func in &leaves {
        if let Some(stat) = db.best_present_author(func) {
            candidates.push(stat.author.clone());
            if best.is_none_or(|(b, _)| stat.commits > b.commits) {
                best = Some((stat, func));
            }
        }
    }
    if let Some((stat, func)) = best {
        rationale.push(format!(
            "fell back to leaf function {func}: {} ({} commits) owns the racing \
             access",
            stat.author, stat.commits
        ));
        return AssigneeDecision {
            assignee: Some(stat.author.clone()),
            candidates,
            rationale,
        };
    }

    rationale.push("no ownership signal found; routing to the triage queue".to_string());
    AssigneeDecision {
        assignee: None,
        candidates,
        rationale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_clock::Lockset;
    use grs_detector::{DetectorKind, RaceAccess};
    use grs_runtime::{AccessKind, Addr, Frame, Gid, SourceLoc, Stack};
    use std::sync::Arc;

    fn report(root1: &str, leaf1: &str, root2: &str, leaf2: &str) -> RaceReport {
        let mk = |root: &str, leaf: &str, gid: u32, kind: AccessKind| RaceAccess {
            gid: Gid(gid),
            kind,
            stack_id: grs_runtime::StackId::EMPTY,
            stack: Stack::from_frames(vec![
                Frame {
                    func: Arc::from(root),
                    call_line: 1,
                },
                Frame {
                    func: Arc::from(leaf),
                    call_line: 2,
                },
            ]),
            loc: SourceLoc {
                file: "x.go",
                line: 1,
            },
            locks_held: Lockset::new(),
        };
        RaceReport {
            addr: Addr(1),
            object: Arc::from("v"),
            prior: mk(root1, leaf1, 0, AccessKind::Write),
            current: mk(root2, leaf2, 1, AccessKind::Read),
            detector: DetectorKind::Tsan,
            program: None,
            repro_seed: None,
            repro: None,
        }
    }

    #[test]
    fn prefers_root_author() {
        let mut db = OwnerDb::new();
        db.add_author("HandleRequest", "alice", 10, true);
        db.add_author("processJob", "carol", 99, true); // leaf — ignored
        let d = determine_assignee(&report("HandleRequest", "processJob", "Worker", "write"), &db);
        assert_eq!(d.assignee.as_deref(), Some("alice"));
        assert!(d.rationale.iter().any(|r| r.contains("root function")));
    }

    #[test]
    fn skips_departed_authors() {
        let mut db = OwnerDb::new();
        db.add_author("Main", "ghost", 100, false);
        db.add_author("Main", "alice", 3, true);
        let d = determine_assignee(&report("Main", "l1", "Main", "l2"), &db);
        assert_eq!(d.assignee.as_deref(), Some("alice"));
    }

    #[test]
    fn falls_back_to_team_metadata() {
        let mut db = OwnerDb::new();
        db.set_team("Main", "payments-platform");
        let d = determine_assignee(&report("Main", "l1", "Main", "l2"), &db);
        assert_eq!(d.assignee.as_deref(), Some("payments-platform"));
        assert!(d.rationale.iter().any(|r| r.contains("team")));
    }

    #[test]
    fn falls_back_to_leaf_author() {
        let mut db = OwnerDb::new();
        db.add_author("leafFn", "dave", 5, true);
        let d = determine_assignee(&report("Main", "leafFn", "Main", "other"), &db);
        assert_eq!(d.assignee.as_deref(), Some("dave"));
        assert!(d.rationale.iter().any(|r| r.contains("leaf")));
    }

    #[test]
    fn unassigned_when_no_signal() {
        let d = determine_assignee(&report("A", "b", "C", "d"), &OwnerDb::new());
        assert!(d.assignee.is_none());
        assert!(d.rationale.iter().any(|r| r.contains("triage")));
    }

    #[test]
    fn higher_commit_count_wins_across_roots() {
        let mut db = OwnerDb::new();
        db.add_author("RootOne", "alice", 3, true);
        db.add_author("RootTwo", "bob", 30, true);
        let d = determine_assignee(&report("RootOne", "l", "RootTwo", "l"), &db);
        assert_eq!(d.assignee.as_deref(), Some("bob"));
        assert!(d.candidates.contains(&"alice".to_string()));
    }
}
