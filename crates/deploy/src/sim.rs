//! The six-month tracker-dynamics *simulation* (Figures 3–4, §3.5).
//!
//! Three layers once fought over the words "campaign" and "intake":
//! `grs_fleet::campaign` *executes* a run matrix, [`crate::service`]
//! *ingests* real race reports as a long-running server, and this module
//! *simulates* the paper's filing/assignment/fix dynamics over simulated
//! months. [`TrackerSim`] names the third precisely. See DESIGN.md §4e/§4j.
//!
//! The paper rolled its detector out in April 2021 and reports, over six
//! months:
//!
//! * ~2000 races detected, 1011 fixed by 210 engineers via 790 unique
//!   patches (~78% unique root causes),
//! * an initial *shepherded* phase with a noticeable **drop** in
//!   outstanding races, then a gradual **rise** once shepherding stopped
//!   (Figure 3),
//! * a slow ramp of task creation April–June, a July surge when "the flood
//!   gates opened", strong early resolution, then creation outpacing
//!   resolution (Figure 4),
//! * about five new race reports per day at steady state.
//!
//! [`TrackerSim`] reproduces those dynamics as an explicit stochastic process
//! over the real [`BugTracker`]: a backlog of pre-existing races is
//! released through a ramp + floodgate reporting schedule, developers fix
//! open tasks with a phase-dependent daily probability, new races trickle
//! in from fresh code, and fixes are attributed to engineers and patches.
//! Everything is driven by one seeded RNG, so each run is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fingerprint::Fingerprint;
use crate::tracker::BugTracker;

/// Parameters of the simulated filing/fix process.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Days simulated (the paper's window is ~6 months).
    pub days: u32,
    /// Pre-existing races discoverable in the codebase at rollout.
    pub backlog: u32,
    /// Tasks filed in the first week from pre-rollout detection runs.
    pub initial_wave: u32,
    /// Reporting ramp: tasks/day at day 0 and at the floodgate day.
    pub ramp_rate: (f64, f64),
    /// Day the remaining backlog is released ("opening the flood gates" —
    /// July in the paper).
    pub floodgate_day: u32,
    /// Backlog tasks released per day during the floodgate.
    pub floodgate_rate: u32,
    /// Day the authors stopped shepherding fixes.
    pub shepherding_end: u32,
    /// Daily per-task fix probability while shepherded / afterwards.
    pub fix_prob: (f64, f64),
    /// Mean new races introduced per day by fresh code (Poisson).
    pub new_race_rate: f64,
    /// Size of the engineer population (fix attribution, Zipf-weighted).
    pub engineer_pool: usize,
    /// Probability a fix reuses the same patch as the previous fix that
    /// day (one patch fixing several manifested races — the 790/1011
    /// ratio).
    pub patch_reuse_prob: f64,
    /// Remark 1's counterfactual: with race detection gating CI, newly
    /// introduced races are caught in the pull request and never reach the
    /// codebase (the backlog still drains through the normal fix process).
    pub ci_gating: bool,
}

impl SimConfig {
    /// Parameters calibrated to the paper's §3.5 statistics and the shapes
    /// of Figures 3–4.
    #[must_use]
    pub fn paper() -> Self {
        SimConfig {
            days: 180,
            backlog: 1250,
            initial_wave: 500,
            ramp_rate: (2.0, 5.0),
            floodgate_day: 90,
            floodgate_rate: 55,
            shepherding_end: 80,
            fix_prob: (0.027, 0.0025),
            new_race_rate: 5.0,
            engineer_pool: 320,
            patch_reuse_prob: 0.25,
            ci_gating: false,
        }
    }

    /// The Remark 1 counterfactual: same campaign, but dynamic race
    /// detection gates CI, so no new races enter the codebase.
    #[must_use]
    pub fn paper_with_ci_gating() -> Self {
        SimConfig {
            ci_gating: true,
            ..Self::paper()
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One day of simulated-campaign statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DayStats {
    /// Day index (0-based from rollout).
    pub day: u32,
    /// Tasks filed this day.
    pub filed: u32,
    /// Tasks fixed this day.
    pub fixed: u32,
    /// Cumulative tasks filed.
    pub filed_cum: u32,
    /// Cumulative tasks fixed.
    pub fixed_cum: u32,
    /// Open tasks at end of day (Figure 3's y-axis).
    pub outstanding: u32,
}

/// The outcome of a simulated deployment window.
#[derive(Debug)]
pub struct SimResult {
    /// Per-day statistics, `config.days` entries.
    pub daily: Vec<DayStats>,
    /// Total tasks filed (paper: ~2000 detected).
    pub total_filed: u32,
    /// Total tasks fixed (paper: 1011).
    pub total_fixed: u32,
    /// Distinct engineers who fixed tasks (paper: 210).
    pub unique_engineers: u32,
    /// Distinct patches (paper: 790).
    pub unique_patches: u32,
}

impl SimResult {
    /// Figure 3's series: `(day, outstanding)`.
    #[must_use]
    pub fn figure3_series(&self) -> Vec<(u32, u32)> {
        self.daily.iter().map(|d| (d.day, d.outstanding)).collect()
    }

    /// Figure 4's series: `(day, cumulative created, cumulative resolved)`.
    #[must_use]
    pub fn figure4_series(&self) -> Vec<(u32, u32, u32)> {
        self.daily
            .iter()
            .map(|d| (d.day, d.filed_cum, d.fixed_cum))
            .collect()
    }

    /// Mean new reports per day over the last `window` days (the paper's
    /// "about five new data races every day").
    #[must_use]
    pub fn steady_state_new_per_day(&self, window: u32) -> f64 {
        let tail: Vec<&DayStats> = self
            .daily
            .iter()
            .rev()
            .take(window as usize)
            .collect();
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|d| f64::from(d.filed)).sum::<f64>() / tail.len() as f64
    }

    /// Ratio of unique patches to fixes (paper: ~78%, their proxy for the
    /// fraction of unique root causes).
    #[must_use]
    pub fn unique_root_cause_ratio(&self) -> f64 {
        if self.total_fixed == 0 {
            return 1.0;
        }
        f64::from(self.unique_patches) / f64::from(self.total_fixed)
    }
}

/// The tracker-dynamics simulator.
#[derive(Debug, Clone, Default)]
pub struct TrackerSim {
    config: SimConfig,
}

impl TrackerSim {
    /// A simulation with the given parameters.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        TrackerSim { config }
    }

    /// The parameters.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation under `seed`.
    #[must_use]
    pub fn run(&self, seed: u64) -> SimResult {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tracker = BugTracker::new();
        let mut backlog = cfg.backlog;
        let mut next_fp: u64 = 1;
        let mut next_patch: u64 = 1;
        let mut daily = Vec::with_capacity(cfg.days as usize);
        let mut filed_cum = 0u32;
        let mut fixed_cum = 0u32;

        for day in 0..cfg.days {
            // --- file new tasks ---
            let mut filed_today = 0u32;
            let mut file = |tracker: &mut BugTracker,
                            rng: &mut StdRng,
                            filed_today: &mut u32| {
                let fp = Fingerprint(next_fp);
                next_fp += 1;
                let engineer = zipf(rng, cfg.engineer_pool);
                if tracker
                    .file(fp, day, Some(format!("eng-{engineer}")))
                    .is_some()
                {
                    *filed_today += 1;
                }
            };

            // Initial wave: the first week releases pre-rollout findings.
            if day < 7 {
                let per_day = cfg.initial_wave / 7;
                for _ in 0..per_day.min(backlog) {
                    file(&mut tracker, &mut rng, &mut filed_today);
                    backlog -= 1;
                }
            }
            // Ramp phase.
            if day < cfg.floodgate_day {
                let t = f64::from(day) / f64::from(cfg.floodgate_day);
                let rate = cfg.ramp_rate.0 + t * (cfg.ramp_rate.1 - cfg.ramp_rate.0);
                let n = poisson(&mut rng, rate).min(backlog);
                for _ in 0..n {
                    file(&mut tracker, &mut rng, &mut filed_today);
                    backlog -= 1;
                }
            } else if backlog > 0 {
                // Floodgate: release the rest quickly.
                let n = cfg.floodgate_rate.min(backlog);
                for _ in 0..n {
                    file(&mut tracker, &mut rng, &mut filed_today);
                    backlog -= 1;
                }
            }
            // New races from fresh code, every day — unless CI gating
            // (Remark 1) stops them at the pull request.
            if !cfg.ci_gating {
                let fresh = poisson(&mut rng, cfg.new_race_rate);
                for _ in 0..fresh {
                    file(&mut tracker, &mut rng, &mut filed_today);
                }
            }

            // --- fix open tasks ---
            let p = if day <= cfg.shepherding_end {
                cfg.fix_prob.0
            } else {
                cfg.fix_prob.1
            };
            let open: Vec<_> = tracker.open_tasks().collect();
            let mut fixed_today = 0u32;
            let mut last_patch_today: Option<u64> = None;
            for id in open {
                if rng.gen_bool(p) {
                    let engineer = zipf(&mut rng, cfg.engineer_pool);
                    let patch = match last_patch_today {
                        Some(prev) if rng.gen_bool(cfg.patch_reuse_prob) => prev,
                        _ => {
                            let p = next_patch;
                            next_patch += 1;
                            p
                        }
                    };
                    last_patch_today = Some(patch);
                    tracker.fix(id, day, &format!("eng-{engineer}"), patch);
                    fixed_today += 1;
                }
            }

            filed_cum += filed_today;
            fixed_cum += fixed_today;
            daily.push(DayStats {
                day,
                filed: filed_today,
                fixed: fixed_today,
                filed_cum,
                fixed_cum,
                outstanding: tracker.outstanding() as u32,
            });
        }

        SimResult {
            daily,
            total_filed: tracker.total_filed() as u32,
            total_fixed: tracker.total_fixed() as u32,
            unique_engineers: tracker.unique_fixers() as u32,
            unique_patches: tracker.unique_patches() as u32,
        }
    }
}

/// Zipf-like engineer sampling: a few prolific fixers, a long tail. Keeps
/// the number of *distinct* fixers well below the pool size, as observed
/// (210 engineers fixed 1011 races).
fn zipf(rng: &mut StdRng, pool: usize) -> usize {
    // Inverse-CDF of P(i) ∝ 1/(i+1) over [0, pool).
    let h_n: f64 = (1..=pool).map(|i| 1.0 / i as f64).sum();
    let target = rng.gen_range(0.0..h_n);
    let mut acc = 0.0;
    for i in 0..pool {
        acc += 1.0 / (i + 1) as f64;
        if acc >= target {
            return i;
        }
    }
    pool - 1
}

/// Poisson sampling via Knuth's method (rates here are small).
fn poisson(rng: &mut StdRng, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // numerically impossible for our rates; guard anyway
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> SimResult {
        TrackerSim::new(SimConfig::paper()).run(7)
    }

    #[test]
    fn totals_land_near_the_paper() {
        let r = run();
        assert!(
            (1600..=2800).contains(&r.total_filed),
            "filed {} (paper ~2000+)",
            r.total_filed
        );
        assert!(
            (700..=1500).contains(&r.total_fixed),
            "fixed {} (paper 1011)",
            r.total_fixed
        );
        assert!(
            (120..=320).contains(&r.unique_engineers),
            "engineers {} (paper 210)",
            r.unique_engineers
        );
        let ratio = r.unique_root_cause_ratio();
        assert!(
            (0.6..=0.95).contains(&ratio),
            "unique-patch ratio {ratio} (paper ~0.78)"
        );
    }

    #[test]
    fn figure3_drops_then_rises() {
        let r = run();
        let out = |d: u32| r.daily[d as usize].outstanding;
        // Drop during the shepherded phase:
        assert!(
            out(70) < out(10),
            "outstanding should drop while shepherded: day10={} day70={}",
            out(10),
            out(70)
        );
        // Gradual rise after shepherding ends:
        assert!(
            out(175) > out(115),
            "outstanding should rise after shepherding: day115={} day175={}",
            out(115),
            out(175)
        );
    }

    #[test]
    fn figure4_shows_the_july_surge() {
        let r = run();
        let created_rate = |from: u32, to: u32| {
            f64::from(r.daily[to as usize].filed_cum - r.daily[from as usize].filed_cum)
                / f64::from(to - from)
        };
        let pre = created_rate(40, 60);
        let surge = created_rate(90, 105);
        assert!(
            surge > 3.0 * pre,
            "floodgate surge missing: pre={pre:.1}/day surge={surge:.1}/day"
        );
        // Resolution initially keeps pace...
        let d60 = &r.daily[60];
        assert!(d60.fixed_cum * 2 >= d60.filed_cum);
        // ...but creation outpaces resolution by the end.
        let last = r.daily.last().expect("days > 0");
        assert!(last.filed_cum > last.fixed_cum);
    }

    #[test]
    fn steady_state_is_about_five_new_per_day() {
        let r = run();
        let rate = r.steady_state_new_per_day(30);
        assert!(
            (3.0..=8.0).contains(&rate),
            "steady-state new/day {rate} (paper ~5)"
        );
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let a = TrackerSim::new(SimConfig::paper()).run(9);
        let b = TrackerSim::new(SimConfig::paper()).run(9);
        assert_eq!(a.total_filed, b.total_filed);
        assert_eq!(a.total_fixed, b.total_fixed);
        assert_eq!(a.daily, {
            let mut v = b.daily.clone();
            v.truncate(a.daily.len());
            v
        });
        let c = TrackerSim::new(SimConfig::paper()).run(10);
        assert_ne!(a.total_filed, c.total_filed);
    }

    #[test]
    fn ci_gating_drives_outstanding_toward_zero() {
        // Remark 1 / §3.5: "the presence of race detection as part of a CI
        // workflow will help ... reducing the outstanding race count to
        // zero." With gating on, the post-floodgate outstanding count must
        // fall instead of rising, and end well below the baseline.
        let base = TrackerSim::new(SimConfig::paper()).run(7);
        let gated = TrackerSim::new(SimConfig::paper_with_ci_gating()).run(7);
        let last = |r: &SimResult| r.daily.last().expect("days").outstanding;
        assert!(
            last(&gated) < last(&base) / 2,
            "gated {} vs baseline {}",
            last(&gated),
            last(&base)
        );
        // Baseline rises after shepherding; gated declines.
        let out = |r: &SimResult, d: usize| r.daily[d].outstanding;
        assert!(out(&gated, 179) < out(&gated, 115));
        assert!(out(&base, 179) > out(&base, 115));
    }

    #[test]
    fn outcome_series_have_matching_lengths() {
        let r = run();
        assert_eq!(r.figure3_series().len(), 180);
        assert_eq!(r.figure4_series().len(), 180);
        // Cumulative series are monotone.
        let f4 = r.figure4_series();
        for w in f4.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].2 >= w[0].2);
        }
    }
}
