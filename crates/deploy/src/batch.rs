//! Batched intake: campaign-scale dedup *before* the pipeline.
//!
//! A nightly campaign (§3.3) produces race reports from thousands of runs,
//! the overwhelming majority duplicates of each other — the same race
//! re-detected under different seeds, strategies, and detectors. Filing
//! them one by one through [`Pipeline::submit`] works but touches the
//! tracker once per raw report; a campaign instead accumulates into a
//! [`RaceBatch`] keyed by [`race_fingerprint`] and hands the pipeline one
//! deduplicated, deterministically ordered batch per day.
//!
//! Determinism matters: the batch keeps, per fingerprint, the report from
//! the *lowest-numbered* campaign run, and iterates in fingerprint order.
//! Ties on `run_order` — which the intake service produces whenever two
//! clients submit the same race on the same day — are broken by a stable
//! content key ([`naive_fingerprint`] plus the repro seed), never by
//! insertion order. Merging per-worker batches in any order therefore
//! yields the same final batch — the property the differential test
//! harness checks between serial and parallel campaigns, and that the
//! service relies on so merge order can't change filed representatives.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use grs_detector::RaceReport;

use crate::fingerprint::{naive_fingerprint, race_fingerprint, Fingerprint};
use crate::pipeline::FileOutcome;
#[allow(deprecated)]
use crate::pipeline::Pipeline;

/// The total order choosing a fingerprint's representative: lowest
/// `run_order` first, ties broken by a content key that is a pure function
/// of the report (so which batch got there first never matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct RepRank {
    run_order: u64,
    tie_key: u64,
}

impl RepRank {
    fn new(run_order: u64, report: &RaceReport) -> Self {
        // The naive fingerprint sees function names *and* line numbers in
        // detection order, so it distinguishes the concrete manifestations
        // that the dedup fingerprint deliberately conflates; the repro seed
        // separates re-detections of the same lines under different runs.
        let mut tie_key = naive_fingerprint(report).0;
        tie_key ^= report.repro_seed.unwrap_or(0).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        RepRank { run_order, tie_key }
    }
}

/// A deduplicated, deterministically ordered set of race reports.
#[derive(Debug, Default)]
pub struct RaceBatch {
    by_fp: BTreeMap<Fingerprint, (RepRank, RaceReport)>,
    raw: u64,
}

impl RaceBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one raw report discovered by campaign run `run_order`.
    ///
    /// The representative kept for a fingerprint is the one with the lowest
    /// `run_order`; ties go to the report with the lowest content key, so
    /// the winner is independent of insertion order. Returns `true` when
    /// the fingerprint was new.
    pub fn add(&mut self, report: RaceReport, run_order: u64) -> bool {
        self.raw += 1;
        let fp = race_fingerprint(&report);
        let rank = RepRank::new(run_order, &report);
        match self.by_fp.entry(fp) {
            Entry::Vacant(v) => {
                v.insert((rank, report));
                true
            }
            Entry::Occupied(mut o) => {
                if rank < o.get().0 {
                    o.insert((rank, report));
                }
                false
            }
        }
    }

    /// Records `n` additional raw reports that were already deduplicated
    /// upstream (e.g. by a campaign's concurrent dedup stage), so
    /// [`RaceBatch::raw_reports`] reflects true detection volume.
    pub fn note_raw_reports(&mut self, n: u64) {
        self.raw += n;
    }

    /// Merges another batch into this one (same representative rule, so
    /// merging any partition of the raw reports in any order converges to
    /// the batch a single serial `add` loop would build).
    pub fn merge(&mut self, other: RaceBatch) {
        self.raw += other.raw;
        for (fp, (rank, report)) in other.by_fp {
            match self.by_fp.entry(fp) {
                Entry::Vacant(v) => {
                    v.insert((rank, report));
                }
                Entry::Occupied(mut o) => {
                    if rank < o.get().0 {
                        o.insert((rank, report));
                    }
                }
            }
        }
    }

    /// Number of distinct fingerprints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_fp.len()
    }

    /// True when no report has been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_fp.is_empty()
    }

    /// Total raw reports added (before dedup).
    #[must_use]
    pub fn raw_reports(&self) -> u64 {
        self.raw
    }

    /// The distinct fingerprints, ascending.
    #[must_use]
    pub fn fingerprints(&self) -> Vec<Fingerprint> {
        self.by_fp.keys().copied().collect()
    }

    /// Iterates `(fingerprint, representative report)` in fingerprint order.
    pub fn iter(&self) -> impl Iterator<Item = (Fingerprint, &RaceReport)> {
        self.by_fp.iter().map(|(fp, (_, r))| (*fp, r))
    }

    /// Consumes the batch, yielding representatives in fingerprint order.
    #[must_use]
    pub fn into_reports(self) -> Vec<RaceReport> {
        self.by_fp.into_values().map(|(_, r)| r).collect()
    }
}

#[allow(deprecated)]
impl Pipeline {
    /// Files one deduplicated batch (a day's campaign output) and returns
    /// the per-fingerprint outcomes, in fingerprint order.
    ///
    /// Because the batch is already deduplicated, every `Duplicate` outcome
    /// here means the tracker has an *open task from a previous day* for
    /// that fingerprint — cross-day dedup, not within-campaign dedup.
    /// Deprecated alongside [`Pipeline`]; the successor is
    /// [`IntakeService::submit_race_batch`](crate::service::IntakeService::submit_race_batch).
    pub fn submit_batch(&mut self, batch: &RaceBatch, day: u32) -> Vec<(Fingerprint, FileOutcome)> {
        batch
            .iter()
            .map(|(fp, report)| (fp, self.submit(report, day)))
            .collect()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::assignee::OwnerDb;
    use grs_clock::Lockset;
    use grs_detector::{DetectorKind, RaceAccess};
    use grs_runtime::{AccessKind, Addr, Frame, Gid, SourceLoc, Stack};
    use std::sync::Arc;

    fn report(func: &str, line: u32, seed: u64) -> RaceReport {
        let mk = |gid: u32, kind: AccessKind, line: u32| RaceAccess {
            gid: Gid(gid),
            kind,
            stack_id: grs_runtime::StackId::EMPTY,
            stack: Stack::from_frames(vec![Frame {
                func: Arc::from(func),
                call_line: line,
            }]),
            loc: SourceLoc { file: "f.go", line },
            locks_held: Lockset::new(),
        };
        RaceReport {
            addr: Addr(1),
            object: Arc::from("x"),
            prior: mk(0, AccessKind::Write, line),
            current: mk(1, AccessKind::Read, line + 1),
            detector: DetectorKind::Tsan,
            program: None,
            repro_seed: Some(seed),
            repro: None,
        }
    }

    #[test]
    fn dedups_line_shifted_duplicates_and_keeps_lowest_run() {
        let mut b = RaceBatch::new();
        assert!(b.add(report("F", 10, 5), 5));
        assert!(!b.add(report("F", 99, 2), 2)); // same race, earlier run
        assert!(b.add(report("G", 10, 7), 7));
        assert_eq!(b.len(), 2);
        assert_eq!(b.raw_reports(), 3);
        let reps = b.into_reports();
        let f = reps
            .iter()
            .find(|r| r.prior.stack.func_names() == ["F"])
            .unwrap();
        assert_eq!(f.repro_seed, Some(2), "lower run order must win");
    }

    #[test]
    fn merge_is_order_independent() {
        let reports = [
            (report("A", 1, 0), 3u64),
            (report("B", 2, 1), 1),
            (report("A", 7, 2), 0),
            (report("C", 3, 3), 2),
        ];
        let mut left = RaceBatch::new();
        let mut right = RaceBatch::new();
        for (i, (r, order)) in reports.iter().enumerate() {
            if i % 2 == 0 {
                left.add(r.clone(), *order);
            } else {
                right.add(r.clone(), *order);
            }
        }
        let mut ab = RaceBatch::new();
        for (r, order) in &reports {
            ab.add(r.clone(), *order);
        }
        let mut merged = RaceBatch::new();
        merged.merge(right);
        merged.merge(left);
        assert_eq!(merged.fingerprints(), ab.fingerprints());
        assert_eq!(merged.raw_reports(), ab.raw_reports());
        let (m, s): (Vec<_>, Vec<_>) = (merged.into_reports(), ab.into_reports());
        for (a, b) in m.iter().zip(s.iter()) {
            assert_eq!(a.repro_seed, b.repro_seed);
        }
    }

    #[test]
    fn equal_run_order_merge_is_order_independent() {
        // Two workers discover the same fingerprint in the same run-order
        // slot (e.g. two intake clients on the same day). Whichever merge
        // order the service uses, the representative must be the same.
        let a = report("F", 10, 3); // same fingerprint as b (lines ignored)
        let b = report("F", 99, 8);
        let build = |first: &RaceReport, second: &RaceReport| {
            let mut left = RaceBatch::new();
            left.add(first.clone(), 7);
            let mut right = RaceBatch::new();
            right.add(second.clone(), 7);
            let mut merged = RaceBatch::new();
            merged.merge(left);
            merged.merge(right);
            merged.into_reports()
        };
        let ab = build(&a, &b);
        let ba = build(&b, &a);
        assert_eq!(ab.len(), 1);
        assert_eq!(
            ab[0].repro_seed, ba[0].repro_seed,
            "representative must not depend on merge order"
        );
        assert_eq!(ab[0].prior.loc.line, ba[0].prior.loc.line);

        // Same property through `add` alone (insertion order flipped).
        let mut fwd = RaceBatch::new();
        fwd.add(a.clone(), 7);
        fwd.add(b.clone(), 7);
        let mut rev = RaceBatch::new();
        rev.add(b, 7);
        rev.add(a, 7);
        assert_eq!(
            fwd.into_reports()[0].repro_seed,
            rev.into_reports()[0].repro_seed
        );
    }

    #[test]
    fn repro_artifact_survives_batch_intake_into_the_task() {
        use grs_runtime::{ReproArtifact, Strategy};
        let mut r = report("F", 10, 7);
        r.repro = Some(ReproArtifact {
            seed: 7,
            strategy: Strategy::RoundRobin,
            trace_digest: Some(0x1234),
            trace_path: Some("traces/f.grtrace".into()),
            schedule_prefix: None,
        });
        let mut b = RaceBatch::new();
        b.add(r, 0);
        let mut p = Pipeline::new(OwnerDb::new());
        let outcomes = p.submit_batch(&b, 0);
        let FileOutcome::Filed { task, .. } = outcomes[0].1 else {
            panic!("must file");
        };
        let task = p.tracker().task(task).expect("filed");
        assert_eq!(task.repro_seed, Some(7));
        let artifact = task.repro.as_ref().expect("artifact attached");
        assert_eq!(artifact.strategy, Strategy::RoundRobin);
        assert_eq!(artifact.trace_digest, Some(0x1234));
        assert_eq!(artifact.trace_path.as_deref(), Some("traces/f.grtrace"));
    }

    #[test]
    fn seed_only_reports_still_file_reproducible_tasks() {
        // Legacy path: no artifact on the report, just a repro seed.
        let mut b = RaceBatch::new();
        b.add(report("G", 5, 9), 0);
        let mut p = Pipeline::new(OwnerDb::new());
        let outcomes = p.submit_batch(&b, 0);
        let FileOutcome::Filed { task, .. } = outcomes[0].1 else {
            panic!("must file");
        };
        let task = p.tracker().task(task).expect("filed");
        assert_eq!(task.repro_seed, Some(9));
        assert_eq!(
            task.repro,
            Some(grs_runtime::ReproArtifact::seed_only(9)),
            "seed-only fallback artifact"
        );
    }

    #[test]
    fn submit_batch_files_once_per_fingerprint() {
        let mut b = RaceBatch::new();
        b.add(report("F", 10, 0), 0);
        b.add(report("F", 11, 1), 1);
        b.add(report("G", 20, 2), 2);
        let mut p = Pipeline::new(OwnerDb::new());
        let outcomes = p.submit_batch(&b, 0);
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes
            .iter()
            .all(|(_, o)| matches!(o, FileOutcome::Filed { .. })));
        assert_eq!(p.tracker().total_filed(), 2);
        // Next day, same batch: everything is a cross-day duplicate.
        let again = p.submit_batch(&b, 1);
        assert!(again.iter().all(|(_, o)| *o == FileOutcome::Duplicate));
    }
}
