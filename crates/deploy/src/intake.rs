//! Deprecated aliases for the tracker-dynamics simulation, which moved to
//! [`crate::sim`].
//!
//! `deploy::intake` used to hold the Figures 3–4 *simulation* under the
//! names `Campaign`/`CampaignConfig` — names that collided with the fleet
//! execution engine and, worse, claimed the word "intake" that the real
//! streaming intake server ([`crate::service::IntakeService`]) now owns.
//! The simulation types live in [`crate::sim`] as
//! [`TrackerSim`](crate::sim::TrackerSim)/[`SimConfig`](crate::sim::SimConfig);
//! these aliases keep old callers compiling for one release.

/// Deprecated alias for [`crate::sim::TrackerSim`].
#[deprecated(note = "renamed: use grs_deploy::sim::TrackerSim")]
pub type Campaign = crate::sim::TrackerSim;

/// Deprecated alias for [`crate::sim::SimConfig`].
#[deprecated(note = "renamed: use grs_deploy::sim::SimConfig")]
pub type CampaignConfig = crate::sim::SimConfig;

/// Deprecated alias for [`crate::sim::SimResult`].
#[deprecated(note = "renamed: use grs_deploy::sim::SimResult")]
pub type CampaignResult = crate::sim::SimResult;

pub use crate::sim::DayStats;

#[cfg(test)]
mod tests {
    #[test]
    #[allow(deprecated)]
    fn deprecated_aliases_still_run() {
        use super::{Campaign, CampaignConfig};
        let r = Campaign::new(CampaignConfig::paper()).run(42);
        assert!(r.total_filed >= 1500);
    }
}
