//! The original single-threaded reporting pipeline: detector output →
//! fingerprint → assignee → tracker.
//!
//! This is Figure 2's architecture in miniature, kept as a thin deprecated
//! shim. Its whole surface — [`Pipeline::submit`], [`Pipeline::submit_all`],
//! [`Pipeline::fix`] — is subsumed by
//! [`IntakeService`](crate::service::IntakeService), which adds the
//! streaming trace path, bounded dedup, backpressure, snapshots, and a
//! typed error surface. [`FileOutcome`] remains the canonical per-report
//! verdict type and is shared with the service.

use grs_detector::RaceReport;

use crate::assignee::{determine_assignee, OwnerDb};
use crate::fingerprint::race_fingerprint;
use crate::tracker::{BugTracker, TaskId};

/// What happened to one submitted race report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileOutcome {
    /// A new task was filed.
    Filed {
        /// The new task.
        task: TaskId,
        /// Assignee chosen by the heuristic, if any.
        assignee: Option<String>,
    },
    /// Suppressed: a task with the same fingerprint is already open.
    Duplicate,
}

/// The reporting pipeline.
///
/// # Example
///
/// ```
/// use grs_deploy::{OwnerDb, Pipeline};
/// use grs_detector::{ExploreConfig, Explorer};
/// use grs_patterns::find;
///
/// let mut pipeline = Pipeline::new(OwnerDb::new());
/// let races = Explorer::new(ExploreConfig::quick().runs(40))
///     .explore(&find("missing_lock").unwrap().racy_program())
///     .unique_races;
/// let outcomes = pipeline.submit_all(&races, 0);
/// assert!(pipeline.tracker().total_filed() >= 1);
/// assert_eq!(outcomes.len(), races.len());
/// ```
#[derive(Default)]
#[deprecated(note = "use grs_deploy::service::IntakeService (one facade over every ingestion path)")]
pub struct Pipeline {
    owners: OwnerDb,
    tracker: BugTracker,
    sink: Option<std::sync::Arc<dyn grs_obs::ObsSink>>,
}

#[allow(deprecated)]
impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("owners", &self.owners)
            .field("tracker", &self.tracker)
            .finish_non_exhaustive()
    }
}

#[allow(deprecated)]
impl Pipeline {
    /// A pipeline with the given ownership database.
    #[must_use]
    pub fn new(owners: OwnerDb) -> Self {
        Pipeline {
            owners,
            tracker: BugTracker::new(),
            sink: None,
        }
    }

    /// Attaches an [`ObsSink`](grs_obs::ObsSink) (builder style). Every
    /// subsequent [`Pipeline::submit`] reports `intake.filed` /
    /// `intake.duplicate` counters and every [`Pipeline::fix`] reports
    /// `intake.fixed` — both sums, so the aggregate is submission-order
    /// independent.
    #[must_use]
    pub fn observed(mut self, sink: std::sync::Arc<dyn grs_obs::ObsSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Submits one detected race on `day`.
    pub fn submit(&mut self, report: &RaceReport, day: u32) -> FileOutcome {
        let fp = race_fingerprint(report);
        let decision = determine_assignee(report, &self.owners);
        // Prefer the report's full artifact (seed + strategy + trace digest
        // from a replay campaign); fall back to a seed-only artifact so
        // legacy seed-tagged reports still file reproducible tasks.
        let repro = report
            .repro
            .clone()
            .or_else(|| report.repro_seed.map(grs_runtime::ReproArtifact::seed_only));
        let outcome = match self
            .tracker
            .file_with_repro(fp, day, decision.assignee.clone(), repro)
        {
            Some(task) => FileOutcome::Filed {
                task,
                assignee: decision.assignee,
            },
            None => FileOutcome::Duplicate,
        };
        if let Some(sink) = &self.sink {
            match outcome {
                FileOutcome::Filed { .. } => sink.add("intake.filed", 1),
                FileOutcome::Duplicate => sink.add("intake.duplicate", 1),
            }
        }
        outcome
    }

    /// Submits a batch (one day's detection output).
    pub fn submit_all(&mut self, reports: &[RaceReport], day: u32) -> Vec<FileOutcome> {
        reports.iter().map(|r| self.submit(r, day)).collect()
    }

    /// Marks a task fixed.
    pub fn fix(&mut self, task: TaskId, day: u32, engineer: &str, patch: u64) {
        self.tracker.fix(task, day, engineer, patch);
        if let Some(sink) = &self.sink {
            sink.add("intake.fixed", 1);
        }
    }

    /// The underlying tracker (statistics, task list).
    #[must_use]
    pub fn tracker(&self) -> &BugTracker {
        &self.tracker
    }

    /// The ownership database.
    #[must_use]
    pub fn owners(&self) -> &OwnerDb {
        &self.owners
    }

    /// Mutable ownership database (to record churn during a campaign).
    pub fn owners_mut(&mut self) -> &mut OwnerDb {
        &mut self.owners
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use grs_clock::Lockset;
    use grs_detector::{DetectorKind, RaceAccess};
    use grs_runtime::{AccessKind, Addr, Frame, Gid, SourceLoc, Stack};
    use std::sync::Arc;

    fn report(line: u32) -> RaceReport {
        let mk = |gid: u32, kind: AccessKind, line: u32| RaceAccess {
            gid: Gid(gid),
            kind,
            stack_id: grs_runtime::StackId::EMPTY,
            stack: Stack::from_frames(vec![Frame {
                func: Arc::from("HandleRequest"),
                call_line: line,
            }]),
            loc: SourceLoc {
                file: "h.go",
                line,
            },
            locks_held: Lockset::new(),
        };
        RaceReport {
            addr: Addr(1),
            object: Arc::from("counter"),
            prior: mk(0, AccessKind::Write, line),
            current: mk(1, AccessKind::Read, line + 1),
            detector: DetectorKind::Tsan,
            program: None,
            repro_seed: None,
            repro: None,
        }
    }

    #[test]
    fn duplicate_suppression_across_line_shifts() {
        let mut p = Pipeline::new(OwnerDb::new());
        let first = p.submit(&report(10), 0);
        assert!(matches!(first, FileOutcome::Filed { .. }));
        // Same logical race, different line numbers (unrelated edit):
        let second = p.submit(&report(99), 1);
        assert_eq!(second, FileOutcome::Duplicate);
        assert_eq!(p.tracker().total_filed(), 1);
    }

    #[test]
    fn refiles_after_fix() {
        let mut p = Pipeline::new(OwnerDb::new());
        let FileOutcome::Filed { task, .. } = p.submit(&report(10), 0) else {
            panic!("first must file");
        };
        p.fix(task, 2, "alice", 7);
        assert!(matches!(p.submit(&report(10), 3), FileOutcome::Filed { .. }));
    }

    #[test]
    fn observed_pipeline_counts_intake() {
        let sink = Arc::new(grs_obs::MetricsRegistry::new());
        let mut p = Pipeline::new(OwnerDb::new()).observed(sink.clone());
        let FileOutcome::Filed { task, .. } = p.submit(&report(10), 0) else {
            panic!("first must file");
        };
        let _ = p.submit(&report(99), 1);
        p.fix(task, 2, "alice", 7);
        let snap = sink.snapshot();
        assert_eq!(snap.counter("intake.filed"), 1);
        assert_eq!(snap.counter("intake.duplicate"), 1);
        assert_eq!(snap.counter("intake.fixed"), 1);
    }

    #[test]
    fn assignee_flows_into_the_task() {
        let mut db = OwnerDb::new();
        db.add_author("HandleRequest", "erin", 4, true);
        let mut p = Pipeline::new(db);
        let FileOutcome::Filed { task, assignee } = p.submit(&report(10), 0) else {
            panic!("must file");
        };
        assert_eq!(assignee.as_deref(), Some("erin"));
        let filed = p.tracker().task(task).expect("filed");
        assert_eq!(filed.assignee.as_deref(), Some("erin"));
    }
}
