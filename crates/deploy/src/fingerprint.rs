//! §3.3.1's duplicate-resilient race fingerprint.
//!
//! Hashing the raw race report (function names *and* line numbers, in
//! detection order) duplicates tasks whenever an unrelated edit shifts line
//! numbers or the two accesses happen to execute in the other order. The
//! paper's fingerprint therefore
//!
//! 1. drops the line numbers from both call chains, and
//! 2. orders the two chains lexicographically before hashing.
//!
//! [`race_fingerprint`] implements that; [`naive_fingerprint`] implements
//! the strawman, kept for the dedup ablation benchmark which quantifies the
//! duplicate inflation the paper's design avoids.
//!
//! The hash itself is FNV-1a, chosen because it is stable across processes
//! and Rust versions (a fingerprint stored in a bug database must mean the
//! same thing tomorrow).

use std::fmt;

use grs_detector::RaceReport;
use grs_runtime::{Stack, StackDepot};

/// A stable 64-bit race identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "race:{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: impl IntoIterator<Item = u8>, seed: u64) -> u64 {
    let mut h = seed;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn hash_str(s: &str, seed: u64) -> u64 {
    // Terminate with a sentinel so ["ab","c"] != ["a","bc"].
    fnv1a(s.bytes().chain(std::iter::once(0u8)), seed)
}

/// The line-number-free projection of a stack: its function names only.
fn chain(stack: &Stack) -> Vec<&str> {
    stack.func_names()
}

fn hash_chain(funcs: &[&str], mut seed: u64) -> u64 {
    for f in funcs {
        seed = hash_str(f, seed);
    }
    seed
}

/// The paper's fingerprint: line-insensitive, orientation-insensitive.
///
/// # Example
///
/// Two reports whose stacks differ only in line numbers, or that observed
/// the two accesses in opposite orders, fingerprint identically:
///
/// ```
/// use grs_detector::{ExploreConfig, Explorer};
/// use grs_deploy::race_fingerprint;
/// use grs_patterns::find;
///
/// let pattern = find("missing_lock").expect("in corpus");
/// let races = Explorer::new(ExploreConfig::quick().runs(40))
///     .explore(&pattern.racy_program())
///     .unique_races;
/// let fps: std::collections::HashSet<_> =
///     races.iter().map(race_fingerprint).collect();
/// // Orientation variants collapse to one logical bug.
/// assert_eq!(fps.len(), 1);
/// ```
#[must_use]
pub fn race_fingerprint(report: &RaceReport) -> Fingerprint {
    let (a, b) = report.stacks();
    let (ca, cb) = (chain(a), chain(b));
    // Lexicographic ordering of the chains makes the pair orientation-free.
    let (first, second) = if ca <= cb { (&ca, &cb) } else { (&cb, &ca) };
    let mut h = hash_str(&report.object, FNV_OFFSET);
    h = hash_chain(first, h);
    h = hash_str("||", h);
    h = hash_chain(second, h);
    Fingerprint(h)
}

/// [`race_fingerprint`] computed from the report's interned [`StackId`]s,
/// resolved through the depot of the run that produced it — no materialized
/// [`Stack`] needed.
///
/// Bit-identical to [`race_fingerprint`] for any report whose `stack_id`s
/// are live in `depot`: both hash the same root-first, line-number-free
/// function-name chains in the same lexicographic orientation. The
/// fingerprint-stability property test pins this equality across seeds.
///
/// [`StackId`]: grs_runtime::StackId
#[must_use]
pub fn race_fingerprint_interned(report: &RaceReport, depot: &StackDepot) -> Fingerprint {
    let (na, nb) = (
        depot.func_names(report.prior.stack_id),
        depot.func_names(report.current.stack_id),
    );
    let ca: Vec<&str> = na.iter().map(|f| &**f).collect();
    let cb: Vec<&str> = nb.iter().map(|f| &**f).collect();
    let (first, second) = if ca <= cb { (&ca, &cb) } else { (&cb, &ca) };
    let mut h = hash_str(&report.object, FNV_OFFSET);
    h = hash_chain(first, h);
    h = hash_str("||", h);
    h = hash_chain(second, h);
    Fingerprint(h)
}

/// The strawman fingerprint §3.3.1 argues against: includes line numbers
/// and preserves the detection order of the two chains.
#[must_use]
pub fn naive_fingerprint(report: &RaceReport) -> Fingerprint {
    let mut h = hash_str(&report.object, FNV_OFFSET);
    for (stack, loc) in [
        (&report.prior.stack, report.prior.loc),
        (&report.current.stack, report.current.loc),
    ] {
        for f in stack.frames() {
            h = hash_str(&f.func, h);
            h = fnv1a(f.call_line.to_le_bytes(), h);
        }
        h = hash_str(loc.file, h);
        h = fnv1a(loc.line.to_le_bytes(), h);
        h = hash_str("||", h);
    }
    Fingerprint(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_clock::Lockset;
    use grs_detector::{DetectorKind, RaceAccess};
    use grs_runtime::{AccessKind, Addr, Frame, Gid, SourceLoc};
    use std::sync::Arc;

    fn stack(funcs: &[(&str, u32)]) -> Stack {
        Stack::from_frames(
            funcs
                .iter()
                .map(|(f, l)| Frame {
                    func: Arc::from(*f),
                    call_line: *l,
                })
                .collect(),
        )
    }

    fn report(s1: Stack, l1: u32, s2: Stack, l2: u32) -> RaceReport {
        RaceReport {
            addr: Addr(1),
            object: Arc::from("results"),
            prior: RaceAccess {
                gid: Gid(0),
                kind: AccessKind::Write,
                stack_id: grs_runtime::StackId::EMPTY,
                stack: s1,
                loc: SourceLoc {
                    file: "svc/handler.go",
                    line: l1,
                },
                locks_held: Lockset::new(),
            },
            current: RaceAccess {
                gid: Gid(1),
                kind: AccessKind::Read,
                stack_id: grs_runtime::StackId::EMPTY,
                stack: s2,
                loc: SourceLoc {
                    file: "svc/handler.go",
                    line: l2,
                },
                locks_held: Lockset::new(),
            },
            detector: DetectorKind::Tsan,
            program: None,
            repro_seed: None,
            repro: None,
        }
    }

    #[test]
    fn insensitive_to_line_numbers() {
        let a = report(
            stack(&[("main", 1), ("P", 10)]),
            20,
            stack(&[("main", 1), ("Q", 30)]),
            40,
        );
        let b = report(
            stack(&[("main", 5), ("P", 99)]),
            77,
            stack(&[("main", 2), ("Q", 88)]),
            66,
        );
        assert_eq!(race_fingerprint(&a), race_fingerprint(&b));
        assert_ne!(naive_fingerprint(&a), naive_fingerprint(&b));
    }

    #[test]
    fn insensitive_to_access_order() {
        let a = report(stack(&[("A", 0)]), 1, stack(&[("P", 0)]), 2);
        let mut b = report(stack(&[("P", 0)]), 2, stack(&[("A", 0)]), 1);
        b.prior.kind = AccessKind::Read;
        b.current.kind = AccessKind::Write;
        assert_eq!(race_fingerprint(&a), race_fingerprint(&b));
        assert_ne!(naive_fingerprint(&a), naive_fingerprint(&b));
    }

    #[test]
    fn different_chains_differ() {
        let a = report(stack(&[("A", 0)]), 1, stack(&[("P", 0)]), 2);
        let c = report(stack(&[("A", 0)]), 1, stack(&[("R", 0)]), 2);
        assert_ne!(race_fingerprint(&a), race_fingerprint(&c));
    }

    #[test]
    fn chain_boundaries_matter() {
        // ["ab"] vs ["a","b"] must hash differently.
        let a = report(stack(&[("ab", 0)]), 1, stack(&[("X", 0)]), 2);
        let b = report(stack(&[("a", 0), ("b", 0)]), 1, stack(&[("X", 0)]), 2);
        assert_ne!(race_fingerprint(&a), race_fingerprint(&b));
    }

    #[test]
    fn object_name_is_part_of_identity() {
        let a = report(stack(&[("A", 0)]), 1, stack(&[("P", 0)]), 2);
        let mut b = report(stack(&[("A", 0)]), 1, stack(&[("P", 0)]), 2);
        b.object = Arc::from("otherVar");
        assert_ne!(race_fingerprint(&a), race_fingerprint(&b));
    }

    #[test]
    fn display_is_hex() {
        let a = report(stack(&[("A", 0)]), 1, stack(&[("P", 0)]), 2);
        let s = race_fingerprint(&a).to_string();
        assert!(s.starts_with("race:"));
        assert_eq!(s.len(), "race:".len() + 16);
    }
}
