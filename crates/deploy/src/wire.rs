//! The intake wire protocol: length-prefixed frames over any byte stream.
//!
//! A client submits `.grtrace` recordings to the intake service as
//! *frames*: a fixed 10-byte header (magic, protocol version, frame kind,
//! little-endian payload length) followed by the payload. The server
//! answers every request frame with exactly one response frame on the same
//! connection, so a client can pipeline uploads and match responses by
//! order. Framing is deliberately dumb — no compression, no multiplexing —
//! because the payloads (traces) already carry their own versioned,
//! self-validating codec; the wire layer only has to delimit them and
//! carry the three service verdicts (accepted / busy / malformed).
//!
//! The byte format is validated as strictly as the `.grtrace` codec: wrong
//! magic, foreign protocol versions, unknown frame kinds, oversized
//! declarations, truncation, and trailing garbage all decode to a typed
//! [`WireError`] rather than a panic or a silent misparse.
//!
//! [`Transport`] abstracts where connections come from: a real
//! [`TcpTransport`] for deployment and an in-process [`InProcTransport`]
//! whose connections are condvar-backed byte pipes, so the full
//! client→frame→server→worker path runs in tests without opening sockets.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};

/// First 4 bytes of every request frame.
pub const REQUEST_MAGIC: [u8; 4] = *b"GRIQ";

/// First 4 bytes of every response frame.
pub const RESPONSE_MAGIC: [u8; 4] = *b"GRIP";

/// Current wire protocol version. Bump on any frame-layout change;
/// decoders reject other versions with [`WireError::UnsupportedVersion`].
pub const WIRE_VERSION: u8 = 1;

/// Hard cap on a declared payload length. A header declaring more is
/// rejected before any payload is read, so a corrupt or hostile length
/// field cannot make the server allocate unboundedly.
pub const MAX_FRAME_PAYLOAD: usize = 16 << 20;

const HEADER_LEN: usize = 10;

/// One client→server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestFrame {
    /// Upload one `.grtrace` recording for analysis and filing on `day`.
    TraceUpload {
        /// Campaign day the resulting reports are filed under.
        day: u32,
        /// The encoded trace, exactly as [`Trace::encode`](grs_runtime::Trace::encode) produced it.
        trace: Vec<u8>,
    },
    /// Liveness probe; the server answers [`ResponseFrame::Pong`].
    Ping,
}

/// One server→client frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseFrame {
    /// The upload was decoded, analyzed, and filed.
    Accepted {
        /// Tasks newly filed from this trace.
        filed: u32,
        /// Reports suppressed as duplicates of open tasks.
        duplicates: u32,
        /// Raw race reports the detectors produced for this trace.
        races: u32,
    },
    /// The intake queue is full; retry after the given backoff.
    Busy {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u32,
    },
    /// The frame or its trace payload failed validation.
    Malformed {
        /// Human-readable reason (a [`WireError`] or trace decode error).
        message: String,
    },
    /// Answer to [`RequestFrame::Ping`].
    Pong,
}

/// Why a wire frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first 4 bytes are not the expected frame magic.
    BadMagic,
    /// The frame was written by a different protocol version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u8,
        /// The version this build speaks.
        supported: u8,
    },
    /// An unknown frame-kind byte.
    BadFrameKind(u8),
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize {
        /// The declared length.
        len: usize,
        /// The cap.
        max: usize,
    },
    /// The stream or buffer ended mid-frame.
    Truncated,
    /// Bytes remain after the payload — corrupt or concatenated input.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A text payload is not valid UTF-8.
    BadUtf8,
    /// The underlying stream failed.
    Io(io::ErrorKind),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "not an intake frame (bad magic)"),
            WireError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported wire protocol version {found} (this build speaks {supported})"
            ),
            WireError::BadFrameKind(kind) => write!(f, "unknown frame kind {kind}"),
            WireError::Oversize { len, max } => {
                write!(f, "declared payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Truncated => write!(f, "frame truncated mid-field"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the frame payload")
            }
            WireError::BadUtf8 => write!(f, "frame text payload is not valid UTF-8"),
            WireError::Io(kind) => write!(f, "stream error: {kind}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e.kind())
    }
}

fn encode_frame(magic: [u8; 4], kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&magic);
    out.push(WIRE_VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Header fields after validation: `(kind, payload_len)`.
fn decode_header(bytes: &[u8; HEADER_LEN], magic: [u8; 4]) -> Result<(u8, usize), WireError> {
    if bytes[..4] != magic {
        return Err(WireError::BadMagic);
    }
    if bytes[4] != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion {
            found: bytes[4],
            supported: WIRE_VERSION,
        });
    }
    let len = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversize {
            len,
            max: MAX_FRAME_PAYLOAD,
        });
    }
    Ok((bytes[5], len))
}

impl RequestFrame {
    fn kind(&self) -> u8 {
        match self {
            RequestFrame::TraceUpload { .. } => 0,
            RequestFrame::Ping => 1,
        }
    }

    /// Serializes the frame (header + payload).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            RequestFrame::TraceUpload { day, trace } => {
                let mut payload = Vec::with_capacity(4 + trace.len());
                payload.extend_from_slice(&day.to_le_bytes());
                payload.extend_from_slice(trace);
                encode_frame(REQUEST_MAGIC, self.kind(), &payload)
            }
            RequestFrame::Ping => encode_frame(REQUEST_MAGIC, self.kind(), &[]),
        }
    }

    /// Decodes exactly one frame from `bytes`; anything left over is a
    /// [`WireError::TrailingBytes`].
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] for every malformed input.
    pub fn decode(bytes: &[u8]) -> Result<RequestFrame, WireError> {
        let header: &[u8; HEADER_LEN] = bytes
            .get(..HEADER_LEN)
            .and_then(|h| h.try_into().ok())
            .ok_or(WireError::Truncated)?;
        let (kind, len) = decode_header(header, REQUEST_MAGIC)?;
        let payload = bytes
            .get(HEADER_LEN..HEADER_LEN + len)
            .ok_or(WireError::Truncated)?;
        if bytes.len() > HEADER_LEN + len {
            return Err(WireError::TrailingBytes {
                extra: bytes.len() - HEADER_LEN - len,
            });
        }
        Self::decode_payload(kind, payload)
    }

    fn decode_payload(kind: u8, payload: &[u8]) -> Result<RequestFrame, WireError> {
        match kind {
            0 => {
                let day_bytes = payload.get(..4).ok_or(WireError::Truncated)?;
                Ok(RequestFrame::TraceUpload {
                    day: u32::from_le_bytes(day_bytes.try_into().unwrap()),
                    trace: payload[4..].to_vec(),
                })
            }
            1 => {
                if !payload.is_empty() {
                    return Err(WireError::TrailingBytes {
                        extra: payload.len(),
                    });
                }
                Ok(RequestFrame::Ping)
            }
            kind => Err(WireError::BadFrameKind(kind)),
        }
    }

    /// Writes the frame to a stream.
    ///
    /// # Errors
    ///
    /// Propagates the stream error.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.encode())?;
        w.flush()
    }

    /// Reads one frame from a stream; `Ok(None)` on clean EOF at a frame
    /// boundary (the peer closed the connection).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the stream ends mid-frame, the typed
    /// header errors for malformed headers, [`WireError::Io`] otherwise.
    pub fn read_from(r: &mut impl Read) -> Result<Option<RequestFrame>, WireError> {
        let Some(header) = read_header(r)? else {
            return Ok(None);
        };
        let (kind, len) = decode_header(&header, REQUEST_MAGIC)?;
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload).map_err(eof_as_truncated)?;
        Self::decode_payload(kind, &payload).map(Some)
    }
}

impl ResponseFrame {
    fn kind(&self) -> u8 {
        match self {
            ResponseFrame::Accepted { .. } => 0,
            ResponseFrame::Busy { .. } => 1,
            ResponseFrame::Malformed { .. } => 2,
            ResponseFrame::Pong => 3,
        }
    }

    /// Serializes the frame (header + payload).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ResponseFrame::Accepted {
                filed,
                duplicates,
                races,
            } => {
                let mut payload = Vec::with_capacity(12);
                payload.extend_from_slice(&filed.to_le_bytes());
                payload.extend_from_slice(&duplicates.to_le_bytes());
                payload.extend_from_slice(&races.to_le_bytes());
                encode_frame(RESPONSE_MAGIC, self.kind(), &payload)
            }
            ResponseFrame::Busy { retry_after_ms } => {
                encode_frame(RESPONSE_MAGIC, self.kind(), &retry_after_ms.to_le_bytes())
            }
            ResponseFrame::Malformed { message } => {
                encode_frame(RESPONSE_MAGIC, self.kind(), message.as_bytes())
            }
            ResponseFrame::Pong => encode_frame(RESPONSE_MAGIC, self.kind(), &[]),
        }
    }

    /// Decodes exactly one frame from `bytes` (trailing bytes rejected).
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] for every malformed input.
    pub fn decode(bytes: &[u8]) -> Result<ResponseFrame, WireError> {
        let header: &[u8; HEADER_LEN] = bytes
            .get(..HEADER_LEN)
            .and_then(|h| h.try_into().ok())
            .ok_or(WireError::Truncated)?;
        let (kind, len) = decode_header(header, RESPONSE_MAGIC)?;
        let payload = bytes
            .get(HEADER_LEN..HEADER_LEN + len)
            .ok_or(WireError::Truncated)?;
        if bytes.len() > HEADER_LEN + len {
            return Err(WireError::TrailingBytes {
                extra: bytes.len() - HEADER_LEN - len,
            });
        }
        Self::decode_payload(kind, payload)
    }

    fn decode_payload(kind: u8, payload: &[u8]) -> Result<ResponseFrame, WireError> {
        let u32_at = |at: usize| -> Result<u32, WireError> {
            payload
                .get(at..at + 4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                .ok_or(WireError::Truncated)
        };
        match kind {
            0 => {
                if payload.len() != 12 {
                    return Err(WireError::Truncated);
                }
                Ok(ResponseFrame::Accepted {
                    filed: u32_at(0)?,
                    duplicates: u32_at(4)?,
                    races: u32_at(8)?,
                })
            }
            1 => {
                if payload.len() != 4 {
                    return Err(WireError::Truncated);
                }
                Ok(ResponseFrame::Busy {
                    retry_after_ms: u32_at(0)?,
                })
            }
            2 => Ok(ResponseFrame::Malformed {
                message: std::str::from_utf8(payload)
                    .map_err(|_| WireError::BadUtf8)?
                    .to_string(),
            }),
            3 => {
                if !payload.is_empty() {
                    return Err(WireError::TrailingBytes {
                        extra: payload.len(),
                    });
                }
                Ok(ResponseFrame::Pong)
            }
            kind => Err(WireError::BadFrameKind(kind)),
        }
    }

    /// Writes the frame to a stream.
    ///
    /// # Errors
    ///
    /// Propagates the stream error.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.encode())?;
        w.flush()
    }

    /// Reads one frame from a stream; `Ok(None)` on clean EOF at a frame
    /// boundary.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the stream ends mid-frame, the typed
    /// header errors for malformed headers, [`WireError::Io`] otherwise.
    pub fn read_from(r: &mut impl Read) -> Result<Option<ResponseFrame>, WireError> {
        let Some(header) = read_header(r)? else {
            return Ok(None);
        };
        let (kind, len) = decode_header(&header, RESPONSE_MAGIC)?;
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload).map_err(eof_as_truncated)?;
        Self::decode_payload(kind, &payload).map(Some)
    }
}

fn eof_as_truncated(e: io::Error) -> WireError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        WireError::Truncated
    } else {
        WireError::Io(e.kind())
    }
}

/// Reads a full header, distinguishing clean EOF (`None`) from truncation
/// mid-header.
fn read_header(r: &mut impl Read) -> Result<Option<[u8; HEADER_LEN]>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(header))
}

/// A bidirectional byte stream a client speaks frames over. Blanket-implemented
/// for everything `Read + Write + Send` ([`TcpStream`], [`InProcStream`]).
pub trait Conn: Read + Write + Send {}

impl<T: Read + Write + Send> Conn for T {}

/// Where the intake server's connections come from.
///
/// Implemented by [`TcpTransport`] (real sockets) and [`InProcTransport`]
/// (in-memory pipes for tests and the soak harness's default mode).
pub trait Transport: Send {
    /// Blocks until the next inbound connection; `Err` when the transport
    /// has been closed and no more connections will arrive.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] when the transport is closed or the accept failed.
    fn accept(&mut self) -> io::Result<Box<dyn Conn>>;

    /// A closure that unblocks a pending [`Transport::accept`], used by the
    /// server to shut down its accept loop.
    fn waker(&self) -> Box<dyn Fn() + Send + Sync>;
}

/// [`Transport`] over a real [`TcpListener`].
#[derive(Debug)]
pub struct TcpTransport {
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpTransport {
    /// Binds a listener (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(TcpTransport { listener, addr })
    }

    /// The bound address (for clients and the shutdown waker).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Transport for TcpTransport {
    fn accept(&mut self) -> io::Result<Box<dyn Conn>> {
        let (stream, _) = self.listener.accept()?;
        let _ = stream.set_nodelay(true);
        Ok(Box::new(stream))
    }

    fn waker(&self) -> Box<dyn Fn() + Send + Sync> {
        let addr = self.addr;
        Box::new(move || {
            // A throwaway connection unblocks the accept loop, which then
            // observes the shutdown flag and exits.
            let _ = TcpStream::connect(addr);
        })
    }
}

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

/// One direction of an in-process duplex connection.
struct Pipe {
    state: Mutex<PipeState>,
    cond: Condvar,
}

impl Pipe {
    fn new() -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState::default()),
            cond: Condvar::new(),
        })
    }

    fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .closed = true;
        self.cond.notify_all();
    }
}

/// One endpoint of an in-process duplex byte stream — the test-and-soak
/// stand-in for a [`TcpStream`]. Dropping an endpoint closes both
/// directions, so the peer observes EOF exactly like a socket close.
pub struct InProcStream {
    read: Arc<Pipe>,
    write: Arc<Pipe>,
}

impl fmt::Debug for InProcStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InProcStream").finish_non_exhaustive()
    }
}

impl InProcStream {
    /// A connected pair of endpoints (client, server).
    #[must_use]
    pub fn pair() -> (InProcStream, InProcStream) {
        let a = Pipe::new();
        let b = Pipe::new();
        (
            InProcStream {
                read: a.clone(),
                write: b.clone(),
            },
            InProcStream { read: b, write: a },
        )
    }
}

impl Read for InProcStream {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut state = self
            .read
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while state.buf.is_empty() {
            if state.closed {
                return Ok(0);
            }
            state = self
                .read
                .cond
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let n = out.len().min(state.buf.len());
        for slot in out.iter_mut().take(n) {
            *slot = state.buf.pop_front().expect("n <= len");
        }
        Ok(n)
    }
}

impl Write for InProcStream {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        let mut state = self
            .write
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"));
        }
        state.buf.extend(bytes.iter().copied());
        self.write.cond.notify_all();
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for InProcStream {
    fn drop(&mut self) {
        self.read.close();
        self.write.close();
    }
}

#[derive(Default)]
struct AcceptState {
    pending: VecDeque<InProcStream>,
    closed: bool,
}

struct AcceptQueue {
    state: Mutex<AcceptState>,
    cond: Condvar,
}

/// In-process [`Transport`]: connections made through the paired
/// [`InProcConnector`] surface in [`Transport::accept`].
pub struct InProcTransport {
    queue: Arc<AcceptQueue>,
}

impl fmt::Debug for InProcTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InProcTransport").finish_non_exhaustive()
    }
}

/// The client side of an [`InProcTransport`]; cheap to clone into every
/// load-generator thread.
#[derive(Clone)]
pub struct InProcConnector {
    queue: Arc<AcceptQueue>,
}

impl fmt::Debug for InProcConnector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InProcConnector").finish_non_exhaustive()
    }
}

impl InProcTransport {
    /// A connected transport/connector pair.
    #[must_use]
    pub fn new() -> (InProcTransport, InProcConnector) {
        let queue = Arc::new(AcceptQueue {
            state: Mutex::new(AcceptState::default()),
            cond: Condvar::new(),
        });
        (
            InProcTransport {
                queue: queue.clone(),
            },
            InProcConnector { queue },
        )
    }
}

impl InProcConnector {
    /// Opens a new in-process connection to the transport.
    ///
    /// # Errors
    ///
    /// `ConnectionRefused` when the transport has been closed.
    pub fn connect(&self) -> io::Result<InProcStream> {
        let (client, server) = InProcStream::pair();
        let mut state = self
            .queue
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.closed {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "intake transport closed",
            ));
        }
        state.pending.push_back(server);
        self.queue.cond.notify_all();
        Ok(client)
    }
}

impl Transport for InProcTransport {
    fn accept(&mut self) -> io::Result<Box<dyn Conn>> {
        let mut state = self
            .queue
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(conn) = state.pending.pop_front() {
                return Ok(Box::new(conn));
            }
            if state.closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "intake transport closed",
                ));
            }
            state = self
                .queue
                .cond
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn waker(&self) -> Box<dyn Fn() + Send + Sync> {
        let queue = self.queue.clone();
        Box::new(move || {
            queue
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .closed = true;
            queue.cond.notify_all();
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_round_trip() {
        for frame in [
            RequestFrame::TraceUpload {
                day: 7,
                trace: vec![1, 2, 3, 4],
            },
            RequestFrame::Ping,
        ] {
            let bytes = frame.encode();
            assert_eq!(RequestFrame::decode(&bytes), Ok(frame.clone()));
            let mut cursor = io::Cursor::new(bytes);
            assert_eq!(RequestFrame::read_from(&mut cursor), Ok(Some(frame)));
        }
    }

    #[test]
    fn response_frames_round_trip() {
        for frame in [
            ResponseFrame::Accepted {
                filed: 1,
                duplicates: 2,
                races: 3,
            },
            ResponseFrame::Busy { retry_after_ms: 25 },
            ResponseFrame::Malformed {
                message: "bad magic".into(),
            },
            ResponseFrame::Pong,
        ] {
            let bytes = frame.encode();
            assert_eq!(ResponseFrame::decode(&bytes), Ok(frame.clone()));
            let mut cursor = io::Cursor::new(bytes);
            assert_eq!(ResponseFrame::read_from(&mut cursor), Ok(Some(frame)));
        }
    }

    #[test]
    fn rejects_bad_magic_version_kind_and_lengths() {
        let good = RequestFrame::Ping.encode();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(RequestFrame::decode(&bad), Err(WireError::BadMagic));

        let mut bad = good.clone();
        bad[4] = 99;
        assert_eq!(
            RequestFrame::decode(&bad),
            Err(WireError::UnsupportedVersion {
                found: 99,
                supported: WIRE_VERSION
            })
        );

        let mut bad = good.clone();
        bad[5] = 200;
        assert_eq!(RequestFrame::decode(&bad), Err(WireError::BadFrameKind(200)));

        let mut bad = good.clone();
        bad[6..10].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            RequestFrame::decode(&bad),
            Err(WireError::Oversize { .. })
        ));

        assert_eq!(
            RequestFrame::decode(&good[..5]),
            Err(WireError::Truncated)
        );
        let mut extended = good;
        extended.push(0);
        assert_eq!(
            RequestFrame::decode(&extended),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn stream_truncation_is_typed_not_io() {
        let bytes = RequestFrame::TraceUpload {
            day: 1,
            trace: vec![9; 32],
        }
        .encode();
        let mut cursor = io::Cursor::new(&bytes[..bytes.len() - 5]);
        assert_eq!(
            RequestFrame::read_from(&mut cursor),
            Err(WireError::Truncated)
        );
        // Clean EOF at a frame boundary is None, not an error.
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        assert_eq!(RequestFrame::read_from(&mut empty), Ok(None));
    }

    #[test]
    fn inproc_pipes_carry_frames_both_ways() {
        let (mut client, mut server) = InProcStream::pair();
        let req = RequestFrame::TraceUpload {
            day: 3,
            trace: vec![5; 100],
        };
        req.write_to(&mut client).unwrap();
        let got = RequestFrame::read_from(&mut server).unwrap().unwrap();
        assert_eq!(got, req);
        let resp = ResponseFrame::Busy { retry_after_ms: 10 };
        resp.write_to(&mut server).unwrap();
        assert_eq!(
            ResponseFrame::read_from(&mut client).unwrap(),
            Some(resp)
        );
        drop(client);
        assert_eq!(RequestFrame::read_from(&mut server).unwrap(), None);
    }

    #[test]
    fn inproc_transport_accepts_and_closes() {
        let (mut transport, connector) = InProcTransport::new();
        let waker = transport.waker();
        let mut client = connector.connect().unwrap();
        let mut server_conn = transport.accept().unwrap();
        RequestFrame::Ping.write_to(&mut client).unwrap();
        assert_eq!(
            RequestFrame::read_from(&mut server_conn).unwrap(),
            Some(RequestFrame::Ping)
        );
        waker();
        assert!(transport.accept().is_err());
        assert!(connector.connect().is_err());
    }
}
