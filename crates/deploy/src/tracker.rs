//! The bug tracker: open/fixed tasks keyed by race fingerprint.
//!
//! §3.3.1's suppression rule is deliberately *stateful*: a newly detected
//! race is suppressed iff a task with the same fingerprint is currently
//! **open**. Once that task is fixed, a re-detection files a fresh task —
//! that is how regressions (or incomplete fixes) resurface.

use std::collections::HashMap;
use std::fmt;

use grs_runtime::ReproArtifact;

use crate::fingerprint::Fingerprint;

/// Identity of a filed task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Filed, not yet fixed.
    Open,
    /// Fixed by a patch.
    Fixed,
}

/// One filed race task.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Task id.
    pub id: TaskId,
    /// The race fingerprint the task tracks.
    pub fingerprint: Fingerprint,
    /// Day the task was filed (campaign time).
    pub filed_day: u32,
    /// Current state.
    pub state: TaskState,
    /// Day the task was fixed, when fixed.
    pub fixed_day: Option<u32>,
    /// Engineer who fixed it, when fixed.
    pub fixed_by: Option<String>,
    /// Patch identifier (several tasks may share one patch — the paper
    /// observed 1011 fixes across 790 unique patches).
    pub patch: Option<u64>,
    /// Assignee, when the heuristic found one.
    pub assignee: Option<String>,
    /// Reproduction instructions (§3.4): the scheduler seed that replays
    /// the detected interleaving. Kept alongside [`Task::repro`] as the
    /// stable, minimal form (`repro.seed` when an artifact is attached).
    pub repro_seed: Option<u64>,
    /// Full reproduction artifact: seed, scheduling strategy, and — when a
    /// trace was recorded — its digest and on-disk `.grtrace` path, so an
    /// engineer can replay the *exact* interleaving offline.
    pub repro: Option<ReproArtifact>,
}

/// Why a fix request was rejected (see [`BugTracker::try_fix`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixError {
    /// No task was ever filed under this id.
    UnknownTask(TaskId),
    /// The task exists but is not open.
    AlreadyFixed(TaskId),
}

impl fmt::Display for FixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixError::UnknownTask(id) => write!(f, "unknown task {id}"),
            FixError::AlreadyFixed(id) => write!(f, "task {id} is already fixed"),
        }
    }
}

impl std::error::Error for FixError {}

/// Why a task list could not be rebuilt into a tracker (see
/// [`BugTracker::from_tasks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreError {
    /// Task ids must be dense and in filing order.
    BadTaskId {
        /// The id the position implies.
        expected: TaskId,
        /// The id actually found there.
        found: TaskId,
    },
    /// Two open tasks share a fingerprint.
    DuplicateOpenFingerprint(Fingerprint),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::BadTaskId { expected, found } => {
                write!(f, "task id {found} out of filing order (expected {expected})")
            }
            RestoreError::DuplicateOpenFingerprint(fp) => {
                write!(f, "two open tasks share fingerprint {fp}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// An in-memory bug database.
///
/// # Example
///
/// ```
/// use grs_deploy::{BugTracker, Fingerprint};
///
/// let mut tracker = BugTracker::new();
/// let fp = Fingerprint(0xabcd);
/// let id = tracker.file(fp, 0, None).expect("first filing is new");
/// assert!(tracker.file(fp, 1, None).is_none(), "open task suppresses");
/// tracker.fix(id, 5, "alice", 1);
/// assert!(tracker.file(fp, 6, None).is_some(), "re-files after the fix");
/// ```
#[derive(Debug, Default)]
pub struct BugTracker {
    tasks: Vec<Task>,
    open_by_fp: HashMap<Fingerprint, TaskId>,
}

impl BugTracker {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Files a task for `fp` on `day` unless one is already open; returns
    /// the new task id, or `None` when suppressed as a duplicate.
    pub fn file(&mut self, fp: Fingerprint, day: u32, assignee: Option<String>) -> Option<TaskId> {
        self.file_with_repro(fp, day, assignee, None)
    }

    /// Like [`BugTracker::file`], also recording a reproduction artifact
    /// (§3.4): at minimum the scheduler seed that replays the race, and —
    /// when the campaign recorded a trace — its digest and `.grtrace` path.
    pub fn file_with_repro(
        &mut self,
        fp: Fingerprint,
        day: u32,
        assignee: Option<String>,
        repro: Option<ReproArtifact>,
    ) -> Option<TaskId> {
        if self.open_by_fp.contains_key(&fp) {
            return None;
        }
        let id = TaskId(self.tasks.len() as u64);
        self.tasks.push(Task {
            id,
            fingerprint: fp,
            filed_day: day,
            state: TaskState::Open,
            fixed_day: None,
            fixed_by: None,
            patch: None,
            assignee,
            repro_seed: repro.as_ref().map(|r| r.seed),
            repro,
        });
        self.open_by_fp.insert(fp, id);
        Some(id)
    }

    /// Marks `id` fixed on `day` by `engineer` under `patch`.
    ///
    /// # Panics
    ///
    /// Panics if the task does not exist or is already fixed. Service-side
    /// callers that must survive bad input use [`BugTracker::try_fix`].
    pub fn fix(&mut self, id: TaskId, day: u32, engineer: &str, patch: u64) {
        match self.try_fix(id, day, engineer, patch) {
            Ok(()) => {}
            Err(FixError::UnknownTask(id)) => panic!("fix of unknown task {id}"),
            Err(FixError::AlreadyFixed(id)) => panic!("double fix of {id}"),
        }
    }

    /// Marks `id` fixed on `day` by `engineer` under `patch`, reporting bad
    /// input as a [`FixError`] instead of panicking — the form the
    /// long-running [`IntakeService`](crate::service::IntakeService) uses,
    /// where a fix request for a garbage-collected or double-submitted task
    /// id is client input, not an invariant violation.
    ///
    /// # Errors
    ///
    /// [`FixError::UnknownTask`] when no task has this id,
    /// [`FixError::AlreadyFixed`] when the task is not open.
    pub fn try_fix(
        &mut self,
        id: TaskId,
        day: u32,
        engineer: &str,
        patch: u64,
    ) -> Result<(), FixError> {
        let task = self
            .tasks
            .get_mut(id.0 as usize)
            .ok_or(FixError::UnknownTask(id))?;
        if task.state != TaskState::Open {
            return Err(FixError::AlreadyFixed(id));
        }
        task.state = TaskState::Fixed;
        task.fixed_day = Some(day);
        task.fixed_by = Some(engineer.to_string());
        task.patch = Some(patch);
        self.open_by_fp.remove(&task.fingerprint);
        Ok(())
    }

    /// The task for `id`, or `None` when no such task was ever filed.
    #[must_use]
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.0 as usize)
    }

    /// Rebuilds a tracker from a task list in filing order — the restore
    /// half of [`Snapshot`](crate::store::Snapshot). Re-derives the
    /// open-fingerprint index and re-validates the tracker invariants that
    /// filing maintains incrementally.
    ///
    /// # Errors
    ///
    /// [`RestoreError::BadTaskId`] when task ids are not dense and in
    /// filing order, [`RestoreError::DuplicateOpenFingerprint`] when two
    /// open tasks share a fingerprint (which filing can never produce).
    pub fn from_tasks(tasks: Vec<Task>) -> Result<Self, RestoreError> {
        let mut open_by_fp = HashMap::new();
        for (i, task) in tasks.iter().enumerate() {
            if task.id.0 != i as u64 {
                return Err(RestoreError::BadTaskId {
                    expected: TaskId(i as u64),
                    found: task.id,
                });
            }
            if task.state == TaskState::Open
                && open_by_fp.insert(task.fingerprint, task.id).is_some()
            {
                return Err(RestoreError::DuplicateOpenFingerprint(task.fingerprint));
            }
        }
        Ok(BugTracker { tasks, open_by_fp })
    }

    /// All tasks, in filing order.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Ids of currently open tasks.
    pub fn open_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.open_by_fp.values().copied()
    }

    /// Number of currently open tasks.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.open_by_fp.len()
    }

    /// Total tasks ever filed.
    #[must_use]
    pub fn total_filed(&self) -> usize {
        self.tasks.len()
    }

    /// Total tasks fixed.
    #[must_use]
    pub fn total_fixed(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.state == TaskState::Fixed)
            .count()
    }

    /// Number of distinct engineers who fixed at least one task.
    #[must_use]
    pub fn unique_fixers(&self) -> usize {
        let mut set: Vec<&str> = self
            .tasks
            .iter()
            .filter_map(|t| t.fixed_by.as_deref())
            .collect();
        set.sort_unstable();
        set.dedup();
        set.len()
    }

    /// Number of distinct patches used by fixes (the paper's proxy for
    /// unique root causes: 790 patches for 1011 fixes ≈ 78%).
    #[must_use]
    pub fn unique_patches(&self) -> usize {
        let mut set: Vec<u64> = self.tasks.iter().filter_map(|t| t.patch).collect();
        set.sort_unstable();
        set.dedup();
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_only_while_open() {
        let mut t = BugTracker::new();
        let fp = Fingerprint(7);
        let id = t.file(fp, 0, Some("alice".into())).expect("new");
        assert_eq!(t.outstanding(), 1);
        assert!(t.file(fp, 3, None).is_none());
        t.fix(id, 4, "alice", 100);
        assert_eq!(t.outstanding(), 0);
        let id2 = t.file(fp, 5, None).expect("re-filed after fix");
        assert_ne!(id, id2);
        assert_eq!(t.total_filed(), 2);
        assert_eq!(t.total_fixed(), 1);
    }

    #[test]
    fn distinct_fingerprints_coexist() {
        let mut t = BugTracker::new();
        assert!(t.file(Fingerprint(1), 0, None).is_some());
        assert!(t.file(Fingerprint(2), 0, None).is_some());
        assert_eq!(t.outstanding(), 2);
    }

    #[test]
    fn statistics_count_engineers_and_patches() {
        let mut t = BugTracker::new();
        let a = t.file(Fingerprint(1), 0, None).unwrap();
        let b = t.file(Fingerprint(2), 0, None).unwrap();
        let c = t.file(Fingerprint(3), 0, None).unwrap();
        t.fix(a, 1, "alice", 100);
        t.fix(b, 2, "alice", 100); // same patch fixes two tasks
        t.fix(c, 3, "bob", 101);
        assert_eq!(t.total_fixed(), 3);
        assert_eq!(t.unique_fixers(), 2);
        assert_eq!(t.unique_patches(), 2);
    }

    #[test]
    fn repro_artifact_round_trips_and_populates_seed() {
        use grs_runtime::Strategy;
        let mut t = BugTracker::new();
        let artifact = ReproArtifact {
            seed: 41,
            strategy: Strategy::Pct { depth: 3 },
            trace_digest: Some(0xdead_beef),
            trace_path: Some("traces/loop_capture.grtrace".into()),
            schedule_prefix: None,
        };
        let id = t
            .file_with_repro(Fingerprint(9), 0, None, Some(artifact.clone()))
            .unwrap();
        let task = t.task(id).expect("filed");
        assert_eq!(task.repro_seed, Some(41), "seed derived from artifact");
        assert_eq!(task.repro.as_ref(), Some(&artifact));
        // Bare `file` leaves both forms empty.
        let id2 = t.file(Fingerprint(10), 0, None).unwrap();
        let task2 = t.task(id2).expect("filed");
        assert_eq!(task2.repro_seed, None);
        assert!(task2.repro.is_none());
    }

    #[test]
    #[should_panic(expected = "double fix")]
    fn double_fix_panics() {
        let mut t = BugTracker::new();
        let id = t.file(Fingerprint(1), 0, None).unwrap();
        t.fix(id, 1, "a", 1);
        t.fix(id, 2, "b", 2);
    }

    #[test]
    fn task_metadata_round_trips() {
        let mut t = BugTracker::new();
        let id = t.file(Fingerprint(9), 4, Some("team-x".into())).unwrap();
        t.fix(id, 9, "carol", 55);
        let task = t.task(id).expect("filed");
        assert_eq!(task.filed_day, 4);
        assert_eq!(task.fixed_day, Some(9));
        assert_eq!(task.assignee.as_deref(), Some("team-x"));
        assert_eq!(task.fixed_by.as_deref(), Some("carol"));
        assert_eq!(task.patch, Some(55));
        assert_eq!(id.to_string(), "T0");
    }
}
