//! Versioned, crash-safe persistence for the bug database.
//!
//! A [`Snapshot`] is the tracker's full task list frozen at a point in
//! time and serialized to a single-file binary format (magic `GRSNAPS\0`,
//! explicit version, LEB128 varints — the same codec discipline as
//! `.grtrace`). The encoding is *canonical*: tasks are written in filing
//! order with no map iteration anywhere, so snapshot → restore → snapshot
//! reproduces the original bytes exactly. That byte-identity is what the
//! intake service's kill-and-restore guarantee is pinned on — a restored
//! server provably lost nothing, because its re-snapshot is `==` the file
//! it booted from.
//!
//! Saving is crash-safe in the classic write-temp-then-rename way: the
//! bytes go to `<path>.tmp`, are fsynced, and only then renamed over the
//! destination. A crash at any point leaves either the old snapshot or the
//! new one, never a torn file.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use grs_runtime::{ReproArtifact, ScheduleTrace, Strategy, TraceDecodeError};

use crate::fingerprint::Fingerprint;
use crate::tracker::{BugTracker, RestoreError, Task, TaskId, TaskState};

/// First 8 bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"GRSNAPS\0";

/// Current snapshot format version. Bump on any layout change; loaders
/// reject other versions with [`SnapshotError::UnsupportedVersion`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why snapshot bytes failed to decode or restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The snapshot was written by a different format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// The version this build reads.
        supported: u32,
    },
    /// The bytes ended mid-field.
    Truncated,
    /// Bytes remain after the last task — corrupt or concatenated input.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A varint ran past 10 bytes or past the end of input.
    MalformedVarint,
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// An enum field holds a tag this version does not define.
    BadEnumTag {
        /// Which field.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// An embedded schedule prefix failed to decode.
    BadSchedule(TraceDecodeError),
    /// The decoded task list violates tracker invariants.
    Restore(RestoreError),
    /// Reading or writing the file failed.
    Io(io::ErrorKind),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads {supported})"
            ),
            SnapshotError::Truncated => write!(f, "snapshot truncated mid-field"),
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last task")
            }
            SnapshotError::MalformedVarint => write!(f, "malformed varint"),
            SnapshotError::BadUtf8 => write!(f, "snapshot string is not valid UTF-8"),
            SnapshotError::BadEnumTag { what, tag } => {
                write!(f, "unknown {what} tag {tag}")
            }
            SnapshotError::BadSchedule(e) => write!(f, "embedded schedule prefix: {e}"),
            SnapshotError::Restore(e) => write!(f, "restored task list invalid: {e}"),
            SnapshotError::Io(kind) => write!(f, "snapshot i/o failed: {kind}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e.kind())
    }
}

impl From<RestoreError> for SnapshotError {
    fn from(e: RestoreError) -> Self {
        SnapshotError::Restore(e)
    }
}

fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn put_opt_string(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_uvarint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or(SnapshotError::Truncated)?;
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32_le(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64_le(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn uvarint(&mut self) -> Result<u64, SnapshotError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8().map_err(|_| SnapshotError::MalformedVarint)?;
            if shift == 63 && byte > 1 {
                return Err(SnapshotError::MalformedVarint);
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(SnapshotError::MalformedVarint);
            }
        }
    }

    fn opt_string(&mut self) -> Result<Option<String>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let len = self.uvarint()? as usize;
                let bytes = self.take(len)?;
                Ok(Some(
                    std::str::from_utf8(bytes)
                        .map_err(|_| SnapshotError::BadUtf8)?
                        .to_string(),
                ))
            }
            tag => Err(SnapshotError::BadEnumTag {
                what: "option",
                tag,
            }),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64_le()?)),
            tag => Err(SnapshotError::BadEnumTag {
                what: "option",
                tag,
            }),
        }
    }
}

fn encode_strategy(out: &mut Vec<u8>, strategy: Strategy) {
    match strategy {
        Strategy::Random => out.push(0),
        Strategy::Pct { depth } => {
            out.push(1);
            put_uvarint(out, u64::from(depth));
        }
        Strategy::RoundRobin => out.push(2),
    }
}

fn decode_strategy(r: &mut Reader<'_>) -> Result<Strategy, SnapshotError> {
    match r.u8()? {
        0 => Ok(Strategy::Random),
        1 => Ok(Strategy::Pct {
            depth: r.uvarint()? as u32,
        }),
        2 => Ok(Strategy::RoundRobin),
        tag => Err(SnapshotError::BadEnumTag {
            what: "strategy",
            tag,
        }),
    }
}

fn encode_repro(out: &mut Vec<u8>, repro: &ReproArtifact) {
    out.extend_from_slice(&repro.seed.to_le_bytes());
    encode_strategy(out, repro.strategy);
    put_opt_u64(out, repro.trace_digest);
    put_opt_string(out, repro.trace_path.as_deref());
    match &repro.schedule_prefix {
        None => out.push(0),
        Some(prefix) => {
            out.push(1);
            let blob = prefix.encode();
            put_uvarint(out, blob.len() as u64);
            out.extend_from_slice(&blob);
        }
    }
}

fn decode_repro(r: &mut Reader<'_>) -> Result<ReproArtifact, SnapshotError> {
    let seed = r.u64_le()?;
    let strategy = decode_strategy(r)?;
    let trace_digest = r.opt_u64()?;
    let trace_path = r.opt_string()?;
    let schedule_prefix = match r.u8()? {
        0 => None,
        1 => {
            let len = r.uvarint()? as usize;
            let blob = r.take(len)?;
            Some(ScheduleTrace::decode(blob).map_err(SnapshotError::BadSchedule)?)
        }
        tag => {
            return Err(SnapshotError::BadEnumTag {
                what: "option",
                tag,
            })
        }
    };
    Ok(ReproArtifact {
        seed,
        strategy,
        trace_digest,
        trace_path,
        schedule_prefix,
    })
}

fn encode_task(out: &mut Vec<u8>, task: &Task) {
    put_uvarint(out, task.id.0);
    out.extend_from_slice(&task.fingerprint.0.to_le_bytes());
    put_uvarint(out, u64::from(task.filed_day));
    out.push(match task.state {
        TaskState::Open => 0,
        TaskState::Fixed => 1,
    });
    match task.fixed_day {
        None => out.push(0),
        Some(day) => {
            out.push(1);
            put_uvarint(out, u64::from(day));
        }
    }
    put_opt_string(out, task.fixed_by.as_deref());
    put_opt_u64(out, task.patch);
    put_opt_string(out, task.assignee.as_deref());
    put_opt_u64(out, task.repro_seed);
    match &task.repro {
        None => out.push(0),
        Some(repro) => {
            out.push(1);
            encode_repro(out, repro);
        }
    }
}

fn decode_task(r: &mut Reader<'_>) -> Result<Task, SnapshotError> {
    let id = TaskId(r.uvarint()?);
    let fingerprint = Fingerprint(r.u64_le()?);
    let filed_day = r.uvarint()? as u32;
    let state = match r.u8()? {
        0 => TaskState::Open,
        1 => TaskState::Fixed,
        tag => {
            return Err(SnapshotError::BadEnumTag {
                what: "task state",
                tag,
            })
        }
    };
    let fixed_day = match r.u8()? {
        0 => None,
        1 => Some(r.uvarint()? as u32),
        tag => {
            return Err(SnapshotError::BadEnumTag {
                what: "option",
                tag,
            })
        }
    };
    let fixed_by = r.opt_string()?;
    let patch = r.opt_u64()?;
    let assignee = r.opt_string()?;
    let repro_seed = r.opt_u64()?;
    let repro = match r.u8()? {
        0 => None,
        1 => Some(decode_repro(r)?),
        tag => {
            return Err(SnapshotError::BadEnumTag {
                what: "option",
                tag,
            })
        }
    };
    Ok(Task {
        id,
        fingerprint,
        filed_day,
        state,
        fixed_day,
        fixed_by,
        patch,
        assignee,
        repro_seed,
        repro,
    })
}

/// The bug database frozen at a point in time.
///
/// Capture one with [`Snapshot::capture`], persist it with
/// [`Snapshot::save`], and bring a dead service back with
/// [`Snapshot::load`] + [`Snapshot::restore`]. The byte encoding is
/// canonical: see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// All tasks, in filing order.
    pub tasks: Vec<Task>,
}

impl Snapshot {
    /// Freezes the tracker's current task list.
    #[must_use]
    pub fn capture(tracker: &BugTracker) -> Snapshot {
        Snapshot {
            tasks: tracker.tasks().to_vec(),
        }
    }

    /// Rebuilds a live tracker, re-validating the filing invariants.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Restore`] when the task list is not one filing
    /// could have produced.
    pub fn restore(self) -> Result<BugTracker, SnapshotError> {
        Ok(BugTracker::from_tasks(self.tasks)?)
    }

    /// Serializes to the canonical byte format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.tasks.len() * 32);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        put_uvarint(&mut out, self.tasks.len() as u64);
        for task in &self.tasks {
            encode_task(&mut out, task);
        }
        out
    }

    /// Decodes snapshot bytes, validating as strictly as the `.grtrace`
    /// decoder: every malformed input maps to a typed [`SnapshotError`].
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`].
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(8)? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32_le()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let count = r.uvarint()? as usize;
        let mut tasks = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            tasks.push(decode_task(&mut r)?);
        }
        if r.pos != bytes.len() {
            return Err(SnapshotError::TrailingBytes {
                extra: bytes.len() - r.pos,
            });
        }
        Ok(Snapshot { tasks })
    }

    /// Writes the snapshot to `path` crash-safely: the bytes land in
    /// `<path>.tmp`, are synced, and the temp file is renamed over the
    /// destination. A crash mid-save leaves the previous snapshot intact.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let tmp = path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&self.encode())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and decodes a snapshot file.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on read failure, the decode errors otherwise.
    pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
        Snapshot::decode(&fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated_tracker() -> BugTracker {
        let mut t = BugTracker::new();
        let a = t.file(Fingerprint(0xaaaa), 1, Some("team-db".into())).unwrap();
        t.file_with_repro(
            Fingerprint(0xbbbb),
            2,
            None,
            Some(ReproArtifact {
                seed: 99,
                strategy: Strategy::Pct { depth: 3 },
                trace_digest: Some(0xfeed),
                trace_path: Some("traces/a.grtrace".into()),
                schedule_prefix: None,
            }),
        )
        .unwrap();
        t.fix(a, 5, "alice", 700);
        t.file(Fingerprint(0xaaaa), 6, None).unwrap();
        t
    }

    #[test]
    fn snapshot_restore_snapshot_is_byte_identical() {
        let tracker = populated_tracker();
        let bytes1 = Snapshot::capture(&tracker).encode();
        let restored = Snapshot::decode(&bytes1).unwrap().restore().unwrap();
        let bytes2 = Snapshot::capture(&restored).encode();
        assert_eq!(bytes1, bytes2);
        assert_eq!(restored.total_filed(), tracker.total_filed());
        assert_eq!(restored.outstanding(), tracker.outstanding());
    }

    #[test]
    fn restored_tracker_still_suppresses_and_fixes() {
        let tracker = populated_tracker();
        let mut restored = Snapshot::capture(&tracker)
            .encode()
            .pipe_decode()
            .restore()
            .unwrap();
        // The re-filed 0xaaaa and the original 0xbbbb are open.
        assert!(restored.file(Fingerprint(0xbbbb), 9, None).is_none());
        let open: Vec<_> = restored.open_tasks().collect();
        for id in open {
            let day = restored.task(id).expect("open task exists").filed_day;
            restored.fix(id, day + 10, "bob", 900);
        }
        assert_eq!(restored.outstanding(), 0);
    }

    // Small helper so the test above reads as a pipeline.
    trait PipeDecode {
        fn pipe_decode(self) -> Snapshot;
    }
    impl PipeDecode for Vec<u8> {
        fn pipe_decode(self) -> Snapshot {
            Snapshot::decode(&self).unwrap()
        }
    }

    #[test]
    fn rejects_corruption_like_the_trace_decoder() {
        let good = Snapshot::capture(&populated_tracker()).encode();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(Snapshot::decode(&bad), Err(SnapshotError::BadMagic));

        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            Snapshot::decode(&bad),
            Err(SnapshotError::UnsupportedVersion {
                found: 9,
                supported: SNAPSHOT_VERSION
            })
        );

        for cut in [5, 13, good.len() - 1] {
            assert!(
                matches!(
                    Snapshot::decode(&good[..cut]),
                    Err(SnapshotError::Truncated | SnapshotError::MalformedVarint)
                ),
                "cut at {cut} must be typed"
            );
        }

        let mut extended = good;
        extended.push(0);
        assert_eq!(
            Snapshot::decode(&extended),
            Err(SnapshotError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn save_is_atomic_and_loads_back() {
        let dir = std::env::temp_dir().join(format!("grs_store_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tracker.grsnap");
        let snap = Snapshot::capture(&populated_tracker());
        snap.save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists(), "temp file renamed away");
        assert_eq!(Snapshot::load(&path).unwrap(), snap);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_rejects_invalid_task_lists() {
        let tracker = populated_tracker();
        let mut snap = Snapshot::capture(&tracker);
        snap.tasks[1].id = TaskId(40);
        assert!(matches!(
            snap.restore(),
            Err(SnapshotError::Restore(RestoreError::BadTaskId { .. }))
        ));
    }
}
