//! Property tests for the deployment pipeline: fingerprint invariances
//! (§3.3.1) and tracker bookkeeping under random workloads.


// Gated behind the `props` feature: proptest is an external crate and
// the tier-1 build must succeed without registry access (restore the
// dev-dependency to run these).
#![cfg(feature = "props")]

use std::sync::Arc;

use proptest::prelude::*;

use grs_clock::Lockset;
use grs_deploy::{naive_fingerprint, race_fingerprint, BugTracker, Fingerprint};
use grs_detector::{DetectorKind, RaceAccess, RaceReport};
use grs_runtime::{AccessKind, Addr, Frame, Gid, SourceLoc, Stack};

fn arb_chain() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[A-Z][a-z]{1,6}", 1..5)
}

#[allow(clippy::too_many_arguments)]
fn report(
    object: &str,
    chain_a: &[String],
    lines_a: &[u32],
    chain_b: &[String],
    lines_b: &[u32],
    line_a: u32,
    line_b: u32,
) -> RaceReport {
    let stack = |chain: &[String], lines: &[u32]| {
        Stack::from_frames(
            chain
                .iter()
                .zip(lines.iter().chain(std::iter::repeat(&0)))
                .map(|(f, l)| Frame {
                    func: Arc::from(f.as_str()),
                    call_line: *l,
                })
                .collect(),
        )
    };
    RaceReport {
        addr: Addr(1),
        object: Arc::from(object),
        prior: RaceAccess {
            gid: Gid(0),
            kind: AccessKind::Write,
            stack_id: grs_runtime::StackId::EMPTY,
            stack: stack(chain_a, lines_a),
            loc: SourceLoc {
                file: "a.go",
                line: line_a,
            },
            locks_held: Lockset::new(),
        },
        current: RaceAccess {
            gid: Gid(1),
            kind: AccessKind::Read,
            stack_id: grs_runtime::StackId::EMPTY,
            stack: stack(chain_b, lines_b),
            loc: SourceLoc {
                file: "a.go",
                line: line_b,
            },
            locks_held: Lockset::new(),
        },
        detector: DetectorKind::Tsan,
        program: None,
            repro_seed: None,
            repro: None,
    }
}

proptest! {
    /// The paper fingerprint ignores every line number in the report.
    #[test]
    fn fingerprint_ignores_all_line_numbers(
        object in "[a-z]{1,8}",
        chain_a in arb_chain(),
        chain_b in arb_chain(),
        lines1 in prop::collection::vec(0u32..1000, 8),
        lines2 in prop::collection::vec(0u32..1000, 8),
    ) {
        let r1 = report(&object, &chain_a, &lines1[..4], &chain_b, &lines1[4..], lines1[0], lines1[1]);
        let r2 = report(&object, &chain_a, &lines2[..4], &chain_b, &lines2[4..], lines2[0], lines2[1]);
        prop_assert_eq!(race_fingerprint(&r1), race_fingerprint(&r2));
    }

    /// Swapping the two call chains (the other detection order) does not
    /// change the fingerprint.
    #[test]
    fn fingerprint_is_orientation_free(
        object in "[a-z]{1,8}",
        chain_a in arb_chain(),
        chain_b in arb_chain(),
    ) {
        let fwd = report(&object, &chain_a, &[], &chain_b, &[], 1, 2);
        let mut rev = report(&object, &chain_b, &[], &chain_a, &[], 2, 1);
        std::mem::swap(&mut rev.prior.kind, &mut rev.current.kind);
        prop_assert_eq!(race_fingerprint(&fwd), race_fingerprint(&rev));
    }

    /// Distinct chains (almost) never collide — and whenever the paper
    /// fingerprint separates two reports, so does identity of their chains.
    #[test]
    fn distinct_chains_get_distinct_fingerprints(
        object in "[a-z]{1,8}",
        chain_a in arb_chain(),
        chain_b in arb_chain(),
        chain_c in arb_chain(),
    ) {
        prop_assume!(chain_b != chain_c);
        let r1 = report(&object, &chain_a, &[], &chain_b, &[], 1, 2);
        let r2 = report(&object, &chain_a, &[], &chain_c, &[], 1, 2);
        // Orientation-freedom means {a,b} vs {a,c} may still coincide when
        // sorting reorders them into the same pair; rule that out.
        let mut p1 = [chain_a.clone(), chain_b];
        let mut p2 = [chain_a, chain_c];
        p1.sort();
        p2.sort();
        prop_assume!(p1 != p2);
        prop_assert_ne!(race_fingerprint(&r1), race_fingerprint(&r2));
    }

    /// The naive fingerprint IS line-sensitive (that is exactly its flaw).
    #[test]
    fn naive_fingerprint_changes_with_lines(
        object in "[a-z]{1,8}",
        chain in arb_chain(),
        l1 in 1u32..500,
        delta in 1u32..500,
    ) {
        let r1 = report(&object, &chain, &[], &chain, &[], l1, l1);
        let r2 = report(&object, &chain, &[], &chain, &[], l1 + delta, l1 + delta);
        prop_assert_ne!(naive_fingerprint(&r1), naive_fingerprint(&r2));
        prop_assert_eq!(race_fingerprint(&r1), race_fingerprint(&r2));
    }

    /// Tracker bookkeeping: after any interleaving of filings and fixes,
    /// outstanding == filed - fixed, and a fingerprint has at most one open
    /// task.
    #[test]
    fn tracker_accounting_invariants(
        ops in prop::collection::vec((0u64..10, any::<bool>()), 1..60),
    ) {
        let mut tracker = BugTracker::new();
        for (day, (fp_raw, fix_after)) in ops.into_iter().enumerate() {
            let fp = Fingerprint(fp_raw);
            let id = tracker.file(fp, day as u32, None);
            if fix_after {
                if let Some(id) = id {
                    tracker.fix(id, day as u32, "eng", day as u64);
                }
            }
            prop_assert_eq!(
                tracker.outstanding(),
                tracker.total_filed() - tracker.total_fixed()
            );
            // No fingerprint may have two open tasks.
            let mut open_fps: Vec<_> = tracker
                .open_tasks()
                .map(|t| tracker.task(t).expect("open task exists").fingerprint)
                .collect();
            let before = open_fps.len();
            open_fps.sort_unstable();
            open_fps.dedup();
            prop_assert_eq!(open_fps.len(), before, "duplicate open fingerprints");
        }
    }
}
