//! The coarse textual Java scanner.
//!
//! The paper's own Java counts came from repository-wide textual look-ups
//! ("the exact regular expressions are more involved" — Table 1 footnote),
//! not from a Java frontend. This scanner takes the same approach: it
//! counts token-shaped substring occurrences outside string literals and
//! comments.

/// Counts of the Java constructs Table 1 tracks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JavaCounts {
    /// Physical lines.
    pub lines: u64,
    /// `.start(` — thread creation.
    pub thread_starts: u64,
    /// `synchronized` keyword.
    pub synchronized_blocks: u64,
    /// `.acquire(` calls.
    pub acquires: u64,
    /// `.release(` calls.
    pub releases: u64,
    /// `.lock(` calls.
    pub lock_calls: u64,
    /// `.unlock(` calls.
    pub unlock_calls: u64,
    /// `CountDownLatch` / `CyclicBarrier` / `Phaser` mentions at
    /// construction (`new X(`).
    pub group_constructs: u64,
    /// `HashMap` / `Map<` constructs.
    pub map_constructs: u64,
}

impl JavaCounts {
    /// Point-to-point synchronization (Table 1's middle block for Java):
    /// `synchronized` + acquire/release + lock/unlock.
    #[must_use]
    pub fn point_to_point(&self) -> u64 {
        self.synchronized_blocks
            + self.acquires
            + self.releases
            + self.lock_calls
            + self.unlock_calls
    }

    /// Group communication constructs.
    #[must_use]
    pub fn group_sync(&self) -> u64 {
        self.group_constructs
    }

    /// Thread creation constructs.
    #[must_use]
    pub fn concurrency_creation(&self) -> u64 {
        self.thread_starts
    }

    /// Adds another file's counts.
    pub fn merge(&mut self, other: &JavaCounts) {
        self.lines += other.lines;
        self.thread_starts += other.thread_starts;
        self.synchronized_blocks += other.synchronized_blocks;
        self.acquires += other.acquires;
        self.releases += other.releases;
        self.lock_calls += other.lock_calls;
        self.unlock_calls += other.unlock_calls;
        self.group_constructs += other.group_constructs;
        self.map_constructs += other.map_constructs;
    }
}

/// Scans one Java source file.
#[must_use]
pub fn scan_java(src: &str) -> JavaCounts {
    let stripped = strip_strings_and_comments(src);
    JavaCounts {
        lines: src.lines().count() as u64,
        thread_starts: count_occurrences(&stripped, ".start("),
        synchronized_blocks: count_word(&stripped, "synchronized"),
        acquires: count_occurrences(&stripped, ".acquire("),
        releases: count_occurrences(&stripped, ".release("),
        lock_calls: count_occurrences(&stripped, ".lock("),
        unlock_calls: count_occurrences(&stripped, ".unlock("),
        group_constructs: count_occurrences(&stripped, "new CountDownLatch(")
            + count_occurrences(&stripped, "new CyclicBarrier(")
            + count_occurrences(&stripped, "new Phaser("),
        map_constructs: count_occurrences(&stripped, "new HashMap")
            + count_prefix_bounded(&stripped, "Map<"),
    }
}

/// Replaces string/char literal contents and comments with spaces so the
/// counters cannot match inside them.
fn strip_strings_and_comments(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' | b'\'' => {
                let quote = bytes[i];
                out.push(b' ');
                i += 1;
                while i < bytes.len() && bytes[i] != quote {
                    if bytes[i] == b'\\' {
                        i += 1;
                        out.push(b' ');
                    }
                    out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
                if i < bytes.len() {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
                out.push(b' ');
                out.push(b' ');
                i = (i + 2).min(bytes.len());
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn count_occurrences(haystack: &str, needle: &str) -> u64 {
    haystack.matches(needle).count() as u64
}

/// Counts occurrences whose first character sits at a word boundary (so
/// `Map<` does not also match inside `HashMap<>`).
fn count_prefix_bounded(haystack: &str, needle: &str) -> u64 {
    let mut count = 0;
    let mut start = 0;
    while let Some(idx) = haystack[start..].find(needle) {
        let abs = start + idx;
        let before_ok = abs == 0 || {
            let b = haystack.as_bytes()[abs - 1];
            !b.is_ascii_alphanumeric() && b != b'_'
        };
        if before_ok {
            count += 1;
        }
        start = abs + needle.len();
    }
    count
}

/// Counts whole-word occurrences (no identifier character on either side).
fn count_word(haystack: &str, word: &str) -> u64 {
    let mut count = 0;
    let mut start = 0;
    while let Some(idx) = haystack[start..].find(word) {
        let abs = start + idx;
        let before_ok = abs == 0
            || !haystack.as_bytes()[abs - 1].is_ascii_alphanumeric()
                && haystack.as_bytes()[abs - 1] != b'_';
        let after = abs + word.len();
        let after_ok = after >= haystack.len()
            || !haystack.as_bytes()[after].is_ascii_alphanumeric()
                && haystack.as_bytes()[after] != b'_';
        if before_ok && after_ok {
            count += 1;
        }
        start = abs + word.len();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_core_constructs() {
        let src = r#"
public class W {
    public void run() {
        new Thread(() -> { x += 1; }).start();
        synchronized (this) { x += 1; }
        sem.acquire();
        sem.release();
        lock.lock();
        lock.unlock();
        CountDownLatch l = new CountDownLatch(1);
        Map<String, Integer> m = new HashMap<>();
    }
}
"#;
        let c = scan_java(src);
        assert_eq!(c.thread_starts, 1);
        assert_eq!(c.synchronized_blocks, 1);
        assert_eq!(c.acquires, 1);
        assert_eq!(c.releases, 1);
        assert_eq!(c.lock_calls, 1);
        assert_eq!(c.unlock_calls, 1);
        assert_eq!(c.group_constructs, 1);
        assert_eq!(c.map_constructs, 2, "Map< and new HashMap");
        assert_eq!(c.point_to_point(), 5);
    }

    #[test]
    fn ignores_strings_and_comments() {
        let src = r#"
public class W {
    // synchronized in a comment
    /* lock.lock() in a block comment */
    String s = "synchronized .start( .lock(";
    public void run() { synchronized (this) { } }
}
"#;
        let c = scan_java(src);
        assert_eq!(c.synchronized_blocks, 1);
        assert_eq!(c.thread_starts, 0);
        assert_eq!(c.lock_calls, 0);
    }

    #[test]
    fn word_boundaries_respected() {
        let src = "int mysynchronized = 1; int synchronizedx = 2;";
        assert_eq!(scan_java(src).synchronized_blocks, 0);
    }
}
