//! The per-test Go corpus emitter — source-level campaign workload.
//!
//! Where [`gogen`](crate::gogen) emits a whole synthetic monorepo as one
//! eager file list (the Table 1 scanning substrate), this module emits
//! **one standalone test at a time**: [`GoTestGen::emit`] is a pure
//! function of `(spec, seed, test_index)`, so a 100,000-test campaign can
//! lower tests lazily as workers pull work and never hold more than a
//! handful of sources in memory — the paper's "~100K unit tests nightly"
//! deployment shape (§3).
//!
//! Every emitted test is a complete, golite-parseable `package main` file
//! whose `main` function is the test body. Tests are drawn from a fixed
//! template family with ground-truth raciness:
//!
//! * **racy** templates put two structurally unordered accesses on a
//!   shared variable, slice element, or map — detectable by a
//!   happens-before detector on *every* schedule, not just lucky ones;
//! * **clean** templates perform the same work privatized, mutex-guarded,
//!   RWMutex-guarded, or channel-sequenced — the false-positive control
//!   group at corpus scale.
//!
//! Construct mix (goroutines, mutexes, RWMutexes, channels, WaitGroups,
//! maps, slices, closures, helper calls) deliberately spans everything
//! [`gogen`](crate::gogen) emits, so the interpreter path hardened against
//! this generator is hardened against the monorepo generator too.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for the per-test generator.
#[derive(Debug, Clone, Copy)]
pub struct GoTestSpec {
    /// How many tests per thousand draw a racy template (0..=1000).
    pub racy_per_mille: u32,
    /// Upper bound on extra sequential filler snippets per test (each is
    /// a self-contained lock/rlock/chan/wg/map/arithmetic block).
    pub fillers_max: u32,
}

impl GoTestSpec {
    /// The paper-shaped default: roughly a fifth of tests harbor a race
    /// (the nightly deployment's races concentrate in a minority of
    /// tests), with up to two filler snippets of sequential sync noise.
    #[must_use]
    pub fn default_mix() -> Self {
        GoTestSpec {
            racy_per_mille: 200,
            fillers_max: 2,
        }
    }

    /// Sets the racy fraction in tests-per-thousand (builder style),
    /// clamped to 0..=1000.
    #[must_use]
    pub fn racy_per_mille(mut self, per_mille: u32) -> Self {
        self.racy_per_mille = per_mille.min(1000);
        self
    }

    /// Sets the filler-snippet cap (builder style).
    #[must_use]
    pub fn fillers_max(mut self, max: u32) -> Self {
        self.fillers_max = max;
        self
    }
}

impl Default for GoTestSpec {
    fn default() -> Self {
        Self::default_mix()
    }
}

/// One generated test: a standalone Go-lite source file plus emission-time
/// ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoTest {
    /// Position in the corpus enumeration.
    pub index: u64,
    /// Stable display name: `gotest/<index>/<template>/<racy|clean>`.
    pub name: String,
    /// The complete `package main` source.
    pub source: String,
    /// Emission-time ground truth: does the test contain a race?
    pub expected_racy: bool,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic per-test emitter.
///
/// # Example
///
/// ```
/// use grs_corpus::{GoTestGen, GoTestSpec};
///
/// let gen = GoTestGen::new(GoTestSpec::default_mix(), 7);
/// let t = gen.emit(42);
/// assert_eq!(t, gen.emit(42), "emission is a pure function of the index");
/// assert!(t.source.starts_with("package main"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GoTestGen {
    spec: GoTestSpec,
    seed: u64,
}

/// The racy template family (one structural race each).
const RACY_TEMPLATES: &[&str] = &["unsync_counter", "loop_capture", "map_fanout", "wg_unsync"];

/// The clean template family (same shapes, synchronized or privatized).
const CLEAN_TEMPLATES: &[&str] = &[
    "mutex_counter",
    "chan_pipeline",
    "privatized",
    "rwlock_readers",
    "sequential",
];

impl GoTestGen {
    /// A generator for `spec` under `seed`.
    #[must_use]
    pub fn new(spec: GoTestSpec, seed: u64) -> Self {
        GoTestGen { spec, seed }
    }

    /// The generator's spec.
    #[must_use]
    pub fn spec(&self) -> &GoTestSpec {
        &self.spec
    }

    /// Emits test `index`. Deterministic: depends only on
    /// `(spec, seed, index)` — never on emission order — which is what
    /// keeps campaign digests invariant across worker counts.
    #[must_use]
    pub fn emit(&self, index: u64) -> GoTest {
        let mut rng = StdRng::seed_from_u64(splitmix64(
            self.seed ^ splitmix64(index.wrapping_add(0xc0_4b0c)),
        ));
        let racy = (rng.gen_range(0..1000u32)) < self.spec.racy_per_mille;
        let template = if racy {
            RACY_TEMPLATES[rng.gen_range(0..RACY_TEMPLATES.len())]
        } else {
            CLEAN_TEMPLATES[rng.gen_range(0..CLEAN_TEMPLATES.len())]
        };
        let mut body = String::new();
        let fillers = if self.spec.fillers_max == 0 {
            0
        } else {
            rng.gen_range(0..self.spec.fillers_max + 1)
        };
        for f in 0..fillers {
            push_filler(&mut body, &mut rng, f);
        }
        push_template(&mut body, template, &mut rng);
        let source = format!(
            "package main\n\nimport \"sync\"\n\nvar sink int\n\nfunc bump(v int) int {{\n\treturn v + 1\n}}\n\nfunc main() {{\n{body}}}\n",
        );
        GoTest {
            index,
            name: format!(
                "gotest/{index:06}/{template}/{}",
                if racy { "racy" } else { "clean" }
            ),
            source,
            expected_racy: racy,
        }
    }

    /// Emits tests `0..count` in order.
    pub fn iter(&self, count: u64) -> impl Iterator<Item = GoTest> + '_ {
        (0..count).map(|i| self.emit(i))
    }
}

/// One self-contained sequential snippet — construct-density noise that
/// must parse, lower, and run but never races (everything is
/// goroutine-local or properly bracketed).
fn push_filler(body: &mut String, rng: &mut StdRng, tag: u32) {
    match rng.gen_range(0..6) {
        0 => {
            body.push_str(&format!(
                "\tvar fmu{tag} sync.Mutex\n\tfmu{tag}.Lock()\n\tsink = bump(sink)\n\tfmu{tag}.Unlock()\n"
            ));
        }
        1 => {
            body.push_str(&format!(
                "\tvar frw{tag} sync.RWMutex\n\tfrw{tag}.RLock()\n\tfx{tag} := sink\n\t_ = fx{tag}\n\tfrw{tag}.RUnlock()\n"
            ));
        }
        2 => {
            body.push_str(&format!(
                "\tfch{tag} := make(chan int, 1)\n\tfch{tag} <- {}\n\tfv{tag} := <-fch{tag}\n\t_ = fv{tag}\n",
                rng.gen_range(1..100)
            ));
        }
        3 => {
            body.push_str(&format!(
                "\tvar fwg{tag} sync.WaitGroup\n\tfwg{tag}.Add(1)\n\tfwg{tag}.Done()\n\tfwg{tag}.Wait()\n"
            ));
        }
        4 => {
            body.push_str(&format!(
                "\tfm{tag} := make(map[int]int)\n\tfm{tag}[{k}] = {v}\n\t_ = fm{tag}[{k}]\n",
                k = rng.gen_range(0..8),
                v = rng.gen_range(1..100)
            ));
        }
        _ => {
            body.push_str(&format!(
                "\tfa{tag} := {}\n\tfor fi{tag} := 0; fi{tag} < 3; fi{tag} = fi{tag} + 1 {{\n\t\tfa{tag} = fa{tag} + fi{tag}\n\t}}\n\tif fa{tag} > {} {{\n\t\tfa{tag} = fa{tag} - 1\n\t}}\n\t_ = fa{tag}\n",
                rng.gen_range(1..50),
                rng.gen_range(1..100)
            ));
        }
    }
}

/// The concurrency scenario proper. Racy templates keep their two
/// conflicting accesses structurally unordered (no sync edge between the
/// goroutines), so a happens-before detector flags them on every schedule.
fn push_template(body: &mut String, template: &str, rng: &mut StdRng) {
    let k = rng.gen_range(2..4u32); // goroutine fan-out
    match template {
        // ── racy ────────────────────────────────────────────────────────
        "unsync_counter" => {
            // K goroutines bump the shared global, joined by channel.
            body.push_str(&format!(
                "\tdone := make(chan bool, {k})\n\tfor i := 0; i < {k}; i = i + 1 {{\n\t\tgo func() {{\n\t\t\tsink = bump(sink)\n\t\t\tdone <- true\n\t\t}}()\n\t}}\n\tfor i := 0; i < {k}; i = i + 1 {{\n\t\t<-done\n\t}}\n"
            ));
        }
        "loop_capture" => {
            // The classic Listing 1: the loop variable is captured by
            // reference; its reads race the loop's writes.
            let (a, b, c) = (
                rng.gen_range(1..50),
                rng.gen_range(1..50),
                rng.gen_range(1..50),
            );
            body.push_str(&format!(
                "\tjobs := []int{{{a}, {b}, {c}}}\n\tdone := make(chan bool, 3)\n\tfor _, job := range jobs {{\n\t\tgo func() {{\n\t\t\tsink = sink + job\n\t\t\tdone <- true\n\t\t}}()\n\t}}\n\t<-done\n\t<-done\n\t<-done\n"
            ));
        }
        "map_fanout" => {
            // Concurrent writers on one map — Observation 4.
            body.push_str(&format!(
                "\tres := make(map[int]int)\n\tdone := make(chan bool, {k})\n\tfor i := 0; i < {k}; i = i + 1 {{\n\t\tgo func(key int) {{\n\t\t\tres[key] = key * 2\n\t\t\tdone <- true\n\t\t}}(i)\n\t}}\n\tfor i := 0; i < {k}; i = i + 1 {{\n\t\t<-done\n\t}}\n\t_ = len(res)\n"
            ));
        }
        "wg_unsync" => {
            // WaitGroup joins the goroutines but nothing orders the
            // increments against each other.
            body.push_str(&format!(
                "\tvar wg sync.WaitGroup\n\twg.Add({k})\n\tfor i := 0; i < {k}; i = i + 1 {{\n\t\tgo func() {{\n\t\t\tsink = sink + 1\n\t\t\twg.Done()\n\t\t}}()\n\t}}\n\twg.Wait()\n"
            ));
        }
        // ── clean ───────────────────────────────────────────────────────
        "mutex_counter" => {
            body.push_str(&format!(
                "\tvar mu sync.Mutex\n\tvar wg sync.WaitGroup\n\twg.Add({k})\n\tfor i := 0; i < {k}; i = i + 1 {{\n\t\tgo func() {{\n\t\t\tmu.Lock()\n\t\t\tsink = bump(sink)\n\t\t\tmu.Unlock()\n\t\t\twg.Done()\n\t\t}}()\n\t}}\n\twg.Wait()\n"
            ));
        }
        "chan_pipeline" => {
            // Results flow through the channel; the accumulator is only
            // ever touched by main.
            body.push_str(&format!(
                "\tout := make(chan int, {k})\n\tfor i := 0; i < {k}; i = i + 1 {{\n\t\tgo func(v int) {{\n\t\t\tout <- bump(v)\n\t\t}}(i)\n\t}}\n\ttotal := 0\n\tfor i := 0; i < {k}; i = i + 1 {{\n\t\ttotal = total + <-out\n\t}}\n\t_ = total\n"
            ));
        }
        "privatized" => {
            // The Listing 1 fix: the loop variable is passed by value.
            let (a, b, c) = (
                rng.gen_range(1..50),
                rng.gen_range(1..50),
                rng.gen_range(1..50),
            );
            body.push_str(&format!(
                "\tjobs := []int{{{a}, {b}, {c}}}\n\tdone := make(chan int, 3)\n\tfor _, job := range jobs {{\n\t\tgo func(j int) {{\n\t\t\tj = bump(j)\n\t\t\tdone <- j\n\t\t}}(job)\n\t}}\n\tacc := 0\n\tacc = acc + <-done\n\tacc = acc + <-done\n\tacc = acc + <-done\n\t_ = acc\n"
            ));
        }
        "rwlock_readers" => {
            // One writer under Lock, K readers under RLock.
            body.push_str(&format!(
                "\tvar rw sync.RWMutex\n\tvar wg sync.WaitGroup\n\twg.Add({kp1})\n\tgo func() {{\n\t\trw.Lock()\n\t\tsink = sink + 1\n\t\trw.Unlock()\n\t\twg.Done()\n\t}}()\n\tfor i := 0; i < {k}; i = i + 1 {{\n\t\tgo func() {{\n\t\t\trw.RLock()\n\t\t\tr := sink\n\t\t\t_ = r\n\t\t\trw.RUnlock()\n\t\t\twg.Done()\n\t\t}}()\n\t}}\n\twg.Wait()\n",
                kp1 = k + 1
            ));
        }
        "sequential" => {
            // No concurrency at all: a map/slice/helper workout.
            let n = rng.gen_range(2..5);
            body.push_str(&format!(
                "\tm := make(map[int]int)\n\tfor i := 0; i < {n}; i = i + 1 {{\n\t\tm[i] = bump(i)\n\t}}\n\tvals := []int{{1, 2, 3}}\n\ttotal := 0\n\tfor _, v := range vals {{\n\t\ttotal = total + v + m[0]\n\t}}\n\tsink = sink + total\n"
            ));
        }
        other => unreachable!("unknown template {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emission_is_deterministic_and_index_sensitive() {
        let gen = GoTestGen::new(GoTestSpec::default_mix(), 9);
        for i in 0..64 {
            assert_eq!(gen.emit(i), gen.emit(i));
        }
        assert_ne!(gen.emit(0).source, gen.emit(1).source);
        let other_seed = GoTestGen::new(GoTestSpec::default_mix(), 10);
        assert_ne!(
            (0..32).map(|i| gen.emit(i).source).collect::<Vec<_>>(),
            (0..32).map(|i| other_seed.emit(i).source).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn every_emitted_test_parses_under_golite() {
        let gen = GoTestGen::new(GoTestSpec::default_mix().fillers_max(3), 4);
        for t in gen.iter(256) {
            grs_golite::scan_source(&t.source)
                .unwrap_or_else(|e| panic!("{}: generated test does not parse: {e}", t.name));
        }
    }

    #[test]
    fn racy_fraction_tracks_the_spec() {
        let gen = GoTestGen::new(GoTestSpec::default_mix().racy_per_mille(300), 1);
        let racy = gen.iter(2000).filter(|t| t.expected_racy).count();
        assert!(
            (450..750).contains(&racy),
            "racy count {racy} far from 600/2000"
        );
        let none = GoTestGen::new(GoTestSpec::default_mix().racy_per_mille(0), 1);
        assert_eq!(none.iter(200).filter(|t| t.expected_racy).count(), 0);
    }

    #[test]
    fn both_template_families_appear() {
        let gen = GoTestGen::new(GoTestSpec::default_mix().racy_per_mille(500), 2);
        let names: Vec<String> = gen.iter(400).map(|t| t.name).collect();
        for template in RACY_TEMPLATES.iter().chain(CLEAN_TEMPLATES) {
            assert!(
                names.iter().any(|n| n.contains(template)),
                "template {template} never emitted in 400 tests"
            );
        }
    }
}
