//! Monorepo-scale linting: the static race engine over a generated corpus.
//!
//! The paper's closing suggestion — that its bug patterns "can inspire
//! further research in static race detection for Go" — only means something
//! if the detector survives contact with repository-sized input. This
//! module runs `grs_golite::lint` over every file of a [`GoCorpus`] and
//! aggregates the findings per rule and per service, the shape a deployment
//! dashboard would want.
//!
//! The synthetic generator is itself a useful adversary: it emits `sink`
//! (a package global) written under a fresh mutex in some functions and
//! bare inside `go` closures in others — exactly the paper's missing-lock
//! class — so a scan of any non-trivial corpus must surface `GR007`.

use std::collections::BTreeMap;

use grs_golite::{diag, lint_file, parse_file, Finding, Rule};

use crate::gogen::GoCorpus;

/// Aggregated lint results over a file set.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every finding, tagged with its file path.
    pub findings: Vec<(String, Finding)>,
    /// Finding counts per rule ID (`GR001`…), all 18 rules present.
    pub per_rule: BTreeMap<&'static str, u64>,
    /// Files scanned.
    pub files: usize,
    /// Files that failed to parse (generator bugs; zero in practice).
    pub parse_failures: usize,
}

impl LintReport {
    /// Total findings.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.per_rule.values().sum()
    }

    /// Count for one rule.
    #[must_use]
    pub fn count(&self, rule: Rule) -> u64 {
        self.per_rule.get(rule.id()).copied().unwrap_or(0)
    }

    /// Findings per million scanned lines, the paper's density unit.
    #[must_use]
    pub fn per_mloc(&self, lines: u64) -> f64 {
        if lines == 0 {
            return 0.0;
        }
        self.total() as f64 * 1_000_000.0 / lines as f64
    }

    /// The whole report as a JSON array of diagnostics.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut items = Vec::with_capacity(self.findings.len());
        for (path, f) in &self.findings {
            items.push(diag::finding_json(path, f));
        }
        format!("[{}]", items.join(","))
    }

    /// Compiler-style one-line renderings, in (path, position) order.
    #[must_use]
    pub fn render_lines(&self) -> Vec<String> {
        self.findings
            .iter()
            .map(|(path, f)| diag::render_line(path, f))
            .collect()
    }
}

/// Lints an iterator of `(path, source)` pairs.
#[must_use]
pub fn lint_sources<'a, I>(sources: I) -> LintReport
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut report = LintReport::default();
    for r in Rule::ALL {
        report.per_rule.insert(r.id(), 0);
    }
    for (path, src) in sources {
        report.files += 1;
        let Ok(file) = parse_file(src) else {
            report.parse_failures += 1;
            continue;
        };
        for f in lint_file(&file) {
            *report.per_rule.entry(f.rule.id()).or_insert(0) += 1;
            report.findings.push((path.to_string(), f));
        }
    }
    // Deterministic, input-order-independent report: findings sort by
    // (path, line, col, rule ID), so `to_json` is byte-stable however the
    // file set was iterated.
    report
        .findings
        .sort_by(|(pa, fa), (pb, fb)| {
            (pa, fa.pos.line, fa.pos.col, fa.rule.id()).cmp(&(pb, fb.pos.line, fb.pos.col, fb.rule.id()))
        });
    report
}

/// Lints every file of a generated corpus.
#[must_use]
pub fn lint_corpus(corpus: &GoCorpus) -> LintReport {
    lint_sources(corpus.files.iter().map(|(p, s)| (p.as_str(), s.as_str())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gogen::GoCorpusSpec;

    #[test]
    fn corpus_scale_lint_finds_the_planted_missing_lock_shape() {
        let spec = GoCorpusSpec::paper_scaled(0.0002); // ~9K lines
        let corpus = GoCorpus::generate(&spec, 11);
        let report = lint_corpus(&corpus);
        assert_eq!(report.parse_failures, 0);
        assert!(report.files > 0);
        // The generator writes the package global `sink` under fresh
        // mutexes in some functions and bare inside goroutines in others.
        assert!(
            report.count(Rule::MissingLock) > 0,
            "per_rule: {:?}",
            report.per_rule
        );
    }

    #[test]
    fn corpus_lint_is_deterministic() {
        let spec = GoCorpusSpec::paper_scaled(0.0001);
        let a = lint_corpus(&GoCorpus::generate(&spec, 7));
        let b = lint_corpus(&GoCorpus::generate(&spec, 7));
        assert_eq!(a.per_rule, b.per_rule);
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let spec = GoCorpusSpec::paper_scaled(0.0001);
        let report = lint_corpus(&GoCorpus::generate(&spec, 7));
        let json = report.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(
            json.matches("\"rule_id\"").count() as u64,
            report.total(),
            "one JSON object per finding"
        );
    }
}
