//! The Java-lite monorepo generator (Table 1's comparison column).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Target densities (per MLoC) and repo shape for the Java column.
#[derive(Debug, Clone)]
pub struct JavaCorpusSpec {
    /// Total lines to generate.
    pub target_lines: u64,
    /// Number of services.
    pub services: u32,
    /// `.start()` thread creations per MLoC (paper: 4162 / 19 ≈ 219.1).
    pub start_per_mloc: f64,
    /// `synchronized` blocks per MLoC (paper: 2378 / 19 ≈ 125.2).
    pub synchronized_per_mloc: f64,
    /// `acquire`+`release` pairs per MLoC (paper: 652 / 19 ≈ 34.3 ops).
    pub acquire_release_per_mloc: f64,
    /// `lock`+`unlock` pairs per MLoC (paper: 624 / 19 ≈ 32.8 ops).
    pub lock_unlock_per_mloc: f64,
    /// Latch/Barrier/Phaser instances per MLoC (paper: 1007 / 19 ≈ 53.0).
    pub group_per_mloc: f64,
    /// Map constructs per MLoC (paper: 83392 / 19 ≈ 4389).
    pub map_per_mloc: f64,
}

impl JavaCorpusSpec {
    /// The paper's densities at a scaled-down line count (`scale = 1.0` is
    /// the full 19 MLoC / 857 services).
    #[must_use]
    pub fn paper_scaled(scale: f64) -> Self {
        JavaCorpusSpec {
            target_lines: (19_000_000.0 * scale) as u64,
            services: ((857.0 * scale).ceil() as u32).max(1),
            start_per_mloc: 4_162.0 / 19.0,
            synchronized_per_mloc: 2_378.0 / 19.0,
            acquire_release_per_mloc: 652.0 / 19.0,
            lock_unlock_per_mloc: 624.0 / 19.0,
            group_per_mloc: 1_007.0 / 19.0,
            map_per_mloc: 83_392.0 / 19.0,
        }
    }
}

impl Default for JavaCorpusSpec {
    fn default() -> Self {
        Self::paper_scaled(0.001)
    }
}

/// A generated Java monorepo.
#[derive(Debug)]
pub struct JavaCorpus {
    /// `(path, source)` pairs.
    pub files: Vec<(String, String)>,
    /// Number of services.
    pub services: u32,
}

impl JavaCorpus {
    /// Generates a corpus for `spec` under `seed`.
    #[must_use]
    pub fn generate(spec: &JavaCorpusSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let lines = spec.target_lines.max(200);
        let mloc = lines as f64 / 1_000_000.0;

        let mut work: Vec<Snip> = Vec::new();
        work.extend(
            std::iter::repeat_n(Snip::Start, (spec.start_per_mloc * mloc).round() as usize),
        );
        work.extend(
            std::iter::repeat_n(Snip::Synchronized, (spec.synchronized_per_mloc * mloc).round() as usize),
        );
        work.extend(
            std::iter::repeat_n(Snip::AcquireRelease, (spec.acquire_release_per_mloc * mloc / 2.0).round() as usize),
        );
        work.extend(
            std::iter::repeat_n(Snip::LockUnlock, (spec.lock_unlock_per_mloc * mloc / 2.0).round() as usize),
        );
        work.extend(
            std::iter::repeat_n(Snip::Group, (spec.group_per_mloc * mloc).round() as usize),
        );
        // Each map snippet (`Map<K,V> m = new HashMap<>()`) counts as TWO
        // constructs under the scanner, so the budget is halved.
        work.extend(
            std::iter::repeat_n(Snip::Map, (spec.map_per_mloc * mloc / 2.0).round() as usize),
        );
        work.shuffle(&mut rng);

        let files_total = (lines / 400).max(1) as usize;
        let per_file = work.len() / files_total + 1;
        let mut work_iter = work.into_iter().peekable();
        let mut files = Vec::with_capacity(files_total);

        for fi in 0..files_total {
            let service = fi as u32 % spec.services;
            let mut body = String::new();
            body.push_str(&format!(
                "package com.example.svc{service};\n\npublic class Handler{fi} {{\n    private int sink = 0;\n"
            ));
            let mut file_lines: u64 = 4;
            let target_file_lines = lines / files_total as u64;
            let mut method = 0;
            let mut taken = 0;
            while file_lines < target_file_lines
                || (taken < per_file && work_iter.peek().is_some())
            {
                body.push_str(&format!("    public int handle{method}(int x) {{\n"));
                file_lines += 1;
                method += 1;
                let stmts = rng.gen_range(6..20);
                let mut emitted = 0;
                while emitted < stmts {
                    if taken < per_file && work_iter.peek().is_some() && rng.gen_bool(0.2) {
                        let snip = work_iter.next().expect("peeked");
                        taken += 1;
                        let (text, n) = java_snippet(snip, &mut rng);
                        body.push_str(&text);
                        file_lines += n;
                        emitted += n;
                    } else {
                        body.push_str(&format!("        x = x + {};\n", rng.gen_range(1..50)));
                        file_lines += 1;
                        emitted += 1;
                    }
                }
                body.push_str("        return x;\n    }\n");
                file_lines += 2;
                if file_lines > target_file_lines * 3 {
                    break;
                }
            }
            body.push_str("}\n");
            files.push((format!("svc{service}/Handler{fi}.java"), body));
        }
        // Drain leftovers.
        if work_iter.peek().is_some() {
            let mut body = String::from(
                "package com.example.overflow;\n\npublic class Overflow {\n    public int run(int x) {\n",
            );
            for snip in work_iter {
                let (text, _) = java_snippet(snip, &mut rng);
                body.push_str(&text);
            }
            body.push_str("        return x;\n    }\n}\n");
            files.push(("overflow/Overflow.java".to_string(), body));
        }
        JavaCorpus {
            files,
            services: spec.services,
        }
    }

    /// Total lines across all files.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.files
            .iter()
            .map(|(_, s)| s.lines().count() as u64)
            .sum()
    }
}

/// One concurrency construct to embed in generated Java.
#[derive(Debug, Clone, Copy)]
enum Snip {
    Start,
    Synchronized,
    AcquireRelease,
    LockUnlock,
    Group,
    Map,
}

fn java_snippet(snip: Snip, rng: &mut StdRng) -> (String, u64) {
    match snip {
        Snip::Start => (
            "        new Thread(() -> { sink += 1; }).start();\n".to_string(),
            1,
        ),
        Snip::Synchronized => (
            "        synchronized (this) {\n            sink += 1;\n        }\n".to_string(),
            3,
        ),
        Snip::AcquireRelease => (
            "        semaphore.acquire();\n        sink += 1;\n        semaphore.release();\n"
                .to_string(),
            3,
        ),
        Snip::LockUnlock => (
            "        lock.lock();\n        sink += 1;\n        lock.unlock();\n".to_string(),
            3,
        ),
        Snip::Group => {
            let cls = ["CountDownLatch", "CyclicBarrier", "Phaser"][rng.gen_range(0..3)];
            (
                format!("        {cls} gate{} = new {cls}(2);\n", rng.gen_range(0..10_000)),
                1,
            )
        }
        Snip::Map => (
            format!(
                "        Map<String, Integer> m{} = new HashMap<>();\n",
                rng.gen_range(0..10_000)
            ),
            1,
        ),
    }
}
