//! The Go-lite monorepo generator.
//!
//! Emits syntactically valid Go-lite source whose construct densities match
//! a [`GoCorpusSpec`] (defaulting to the paper's Table 1 Go column), while
//! recording ground-truth [`ConstructCounts`] for every construct emitted.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use grs_golite::ConstructCounts;

/// Target densities (per million lines) and repo shape.
#[derive(Debug, Clone)]
pub struct GoCorpusSpec {
    /// Total lines to generate.
    pub target_lines: u64,
    /// Number of services (files are distributed across them).
    pub services: u32,
    /// `go` statements per MLoC (paper: 11515 / 46 MLoC ≈ 250.3).
    pub go_per_mloc: f64,
    /// `Lock`+`Unlock` calls per MLoC (paper: 19062 / 46 ≈ 414.4).
    pub lock_unlock_per_mloc: f64,
    /// `RLock`+`RUnlock` calls per MLoC (paper: 5511 / 46 ≈ 119.8).
    pub rlock_runlock_per_mloc: f64,
    /// Channel send/recv per MLoC (paper: 10120 / 46 ≈ 220.0).
    pub chan_ops_per_mloc: f64,
    /// `WaitGroup` instances per MLoC (paper: 4795 / 46 ≈ 104.2).
    pub waitgroup_per_mloc: f64,
    /// Map constructs per MLoC (paper: 273713 / 46 ≈ 5950).
    pub map_per_mloc: f64,
}

impl GoCorpusSpec {
    /// The paper's densities at a scaled-down line count.
    ///
    /// `scale = 1.0` would be the full 46 MLoC / 2100 services; benches use
    /// small fractions.
    #[must_use]
    pub fn paper_scaled(scale: f64) -> Self {
        GoCorpusSpec {
            target_lines: (46_000_000.0 * scale) as u64,
            services: ((2100.0 * scale).ceil() as u32).max(1),
            go_per_mloc: 11_515.0 / 46.0,
            lock_unlock_per_mloc: 19_062.0 / 46.0,
            rlock_runlock_per_mloc: 5_511.0 / 46.0,
            chan_ops_per_mloc: 10_120.0 / 46.0,
            waitgroup_per_mloc: 4_795.0 / 46.0,
            map_per_mloc: 273_713.0 / 46.0,
        }
    }
}

impl Default for GoCorpusSpec {
    fn default() -> Self {
        Self::paper_scaled(0.001)
    }
}

/// A generated Go monorepo: file sources plus emission-time ground truth.
#[derive(Debug)]
pub struct GoCorpus {
    /// `(path, source)` pairs.
    pub files: Vec<(String, String)>,
    /// Number of services.
    pub services: u32,
    /// Ground-truth construct counts accumulated during emission.
    pub truth: ConstructCounts,
}

impl GoCorpus {
    /// Generates a corpus for `spec` under `seed`.
    #[must_use]
    pub fn generate(spec: &GoCorpusSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut truth = ConstructCounts::default();
        let lines = spec.target_lines.max(200);
        let mloc = lines as f64 / 1_000_000.0;

        // Construct budgets for the whole repo.
        let go_budget = (spec.go_per_mloc * mloc).round() as u64;
        // Each lock snippet yields one Lock and one Unlock (2 ops).
        let lock_budget = (spec.lock_unlock_per_mloc * mloc / 2.0).round() as u64;
        let rlock_budget = (spec.rlock_runlock_per_mloc * mloc / 2.0).round() as u64;
        // Each channel snippet yields one send and one recv (2 ops).
        let chan_budget = (spec.chan_ops_per_mloc * mloc / 2.0).round() as u64;
        let wg_budget = (spec.waitgroup_per_mloc * mloc).round() as u64;
        let map_budget = (spec.map_per_mloc * mloc).round() as u64;

        // Build the snippet work list, then distribute over files.
        #[derive(Clone, Copy)]
        enum Snip {
            Go,
            Lock,
            RLock,
            Chan,
            Wg,
            Map,
        }
        let mut work: Vec<Snip> = Vec::new();
        work.extend(std::iter::repeat_n(Snip::Go, go_budget as usize));
        work.extend(std::iter::repeat_n(Snip::Lock, lock_budget as usize));
        work.extend(std::iter::repeat_n(Snip::RLock, rlock_budget as usize));
        work.extend(std::iter::repeat_n(Snip::Chan, chan_budget as usize));
        work.extend(std::iter::repeat_n(Snip::Wg, wg_budget as usize));
        work.extend(std::iter::repeat_n(Snip::Map, map_budget as usize));
        work.shuffle(&mut rng);

        let files_total = (lines / 400).max(1) as usize;
        let mut files = Vec::with_capacity(files_total);
        let per_file = work.len() / files_total + 1;
        let mut uniq = 0u64;
        let mut work_iter = work.into_iter().peekable();

        for fi in 0..files_total {
            let service = fi as u32 % spec.services;
            let mut body = String::new();
            body.push_str(&format!("package svc{service}\n\nimport \"sync\"\n\nvar sink int\n\n"));
            let mut file_lines: u64 = 6;
            let target_file_lines = lines / files_total as u64;
            let mut func_idx = 0;
            let mut taken = 0;
            while file_lines < target_file_lines || (taken < per_file && work_iter.peek().is_some())
            {
                // One function with a mix of snippets and filler.
                body.push_str(&format!("func handler{func_idx}(x int) int {{\n"));
                file_lines += 1;
                func_idx += 1;
                let stmts_in_func = rng.gen_range(8..28);
                let mut emitted = 0;
                while emitted < stmts_in_func {
                    let use_snippet = taken < per_file
                        && work_iter.peek().is_some()
                        && rng.gen_bool(0.25);
                    if use_snippet {
                        let snip = work_iter.next().expect("peeked");
                        taken += 1;
                        uniq += 1;
                        let (text, lines_added) = match snip {
                            Snip::Go => {
                                truth.go_statements += 1;
                                truth.func_lits += 1;
                                (
                                    format!(
                                        "\tgo func(v int) {{\n\t\tsink = sink + v\n\t}}({})\n",
                                        rng.gen_range(1..100)
                                    ),
                                    3,
                                )
                            }
                            Snip::Lock => {
                                truth.mutex_decls += 1;
                                truth.lock_calls += 1;
                                truth.unlock_calls += 1;
                                (
                                    format!(
                                        "\tvar mu{uniq} sync.Mutex\n\tmu{uniq}.Lock()\n\tsink = sink + 1\n\tmu{uniq}.Unlock()\n"
                                    ),
                                    4,
                                )
                            }
                            Snip::RLock => {
                                truth.rwmutex_decls += 1;
                                truth.rlock_calls += 1;
                                truth.runlock_calls += 1;
                                (
                                    format!(
                                        "\tvar rw{uniq} sync.RWMutex\n\trw{uniq}.RLock()\n\tx = x + sink\n\trw{uniq}.RUnlock()\n"
                                    ),
                                    4,
                                )
                            }
                            Snip::Chan => {
                                truth.chan_types += 1;
                                truth.chan_sends += 1;
                                truth.chan_recvs += 1;
                                (
                                    format!(
                                        "\tch{uniq} := make(chan int, 1)\n\tch{uniq} <- x\n\tx = <-ch{uniq}\n"
                                    ),
                                    3,
                                )
                            }
                            Snip::Wg => {
                                truth.waitgroup_decls += 1;
                                truth.waitgroup_calls += 3;
                                (
                                    format!(
                                        "\tvar wg{uniq} sync.WaitGroup\n\twg{uniq}.Add(1)\n\twg{uniq}.Done()\n\twg{uniq}.Wait()\n"
                                    ),
                                    4,
                                )
                            }
                            Snip::Map => {
                                truth.map_constructs += 1;
                                (
                                    format!(
                                        "\tm{uniq} := make(map[string]int)\n\tm{uniq}[\"k\"] = x\n\tx = m{uniq}[\"k\"]\n"
                                    ),
                                    3,
                                )
                            }
                        };
                        body.push_str(&text);
                        file_lines += lines_added;
                        emitted += lines_added;
                    } else {
                        // Filler statements.
                        match rng.gen_range(0..3) {
                            0 => {
                                body.push_str(&format!(
                                    "\tx = x + {}\n",
                                    rng.gen_range(1..50)
                                ));
                                file_lines += 1;
                                emitted += 1;
                            }
                            1 => {
                                body.push_str(&format!(
                                    "\tif x > {} {{\n\t\tx = x - 1\n\t}}\n",
                                    rng.gen_range(1..100)
                                ));
                                file_lines += 3;
                                emitted += 3;
                            }
                            _ => {
                                body.push_str(
                                    "\tfor i := 0; i < 3; i = i + 1 {\n\t\tx = x + i\n\t}\n",
                                );
                                file_lines += 3;
                                emitted += 3;
                            }
                        }
                    }
                }
                body.push_str("\treturn x\n}\n\n");
                file_lines += 3;
                truth.func_decls += 1;
                if file_lines >= target_file_lines && taken >= per_file {
                    break;
                }
                if file_lines > target_file_lines * 3 {
                    break; // safety: don't balloon a single file
                }
            }
            truth.lines += body.lines().count() as u64;
            files.push((format!("svc{service}/file{fi}.go"), body));
        }
        // Drain any leftover work into one final file so budgets are exact.
        if work_iter.peek().is_some() {
            let mut body =
                String::from("package svcoverflow\n\nimport \"sync\"\n\nvar sink int\n\n");
            body.push_str("func overflow(x int) int {\n");
            for snip in work_iter {
                uniq += 1;
                match snip {
                    Snip::Go => {
                        truth.go_statements += 1;
                        truth.func_lits += 1;
                        body.push_str("\tgo func(v int) {\n\t\tsink = sink + v\n\t}(1)\n");
                    }
                    Snip::Lock => {
                        truth.mutex_decls += 1;
                        truth.lock_calls += 1;
                        truth.unlock_calls += 1;
                        body.push_str(&format!(
                            "\tvar mu{uniq} sync.Mutex\n\tmu{uniq}.Lock()\n\tsink = sink + 1\n\tmu{uniq}.Unlock()\n"
                        ));
                    }
                    Snip::RLock => {
                        truth.rwmutex_decls += 1;
                        truth.rlock_calls += 1;
                        truth.runlock_calls += 1;
                        body.push_str(&format!(
                            "\tvar rw{uniq} sync.RWMutex\n\trw{uniq}.RLock()\n\tx = x + sink\n\trw{uniq}.RUnlock()\n"
                        ));
                    }
                    Snip::Chan => {
                        truth.chan_types += 1;
                        truth.chan_sends += 1;
                        truth.chan_recvs += 1;
                        body.push_str(&format!(
                            "\tch{uniq} := make(chan int, 1)\n\tch{uniq} <- x\n\tx = <-ch{uniq}\n"
                        ));
                    }
                    Snip::Wg => {
                        truth.waitgroup_decls += 1;
                        truth.waitgroup_calls += 3;
                        body.push_str(&format!(
                            "\tvar wg{uniq} sync.WaitGroup\n\twg{uniq}.Add(1)\n\twg{uniq}.Done()\n\twg{uniq}.Wait()\n"
                        ));
                    }
                    Snip::Map => {
                        truth.map_constructs += 1;
                        body.push_str(&format!(
                            "\tm{uniq} := make(map[string]int)\n\tm{uniq}[\"k\"] = x\n\tx = m{uniq}[\"k\"]\n"
                        ));
                    }
                }
            }
            body.push_str("\treturn x\n}\n");
            truth.func_decls += 1;
            truth.lines += body.lines().count() as u64;
            files.push(("svcoverflow/overflow.go".to_string(), body));
        }

        GoCorpus {
            files,
            services: spec.services,
            truth,
        }
    }

    /// Scans every file with the Go-lite AST scanner.
    ///
    /// # Panics
    ///
    /// Panics if a generated file fails to parse — that would be a
    /// generator bug, which the test suite is designed to catch.
    #[must_use]
    pub fn scan(&self) -> ConstructCounts {
        let mut total = ConstructCounts::default();
        for (path, src) in &self.files {
            let counts = grs_golite::scan_source(src)
                .unwrap_or_else(|e| panic!("generated file {path} does not parse: {e}"));
            total.merge(&counts);
        }
        total
    }

    /// Total generated lines.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.truth.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_corpus_parses_and_scan_matches_truth() {
        let spec = GoCorpusSpec::paper_scaled(0.0002); // ~9K lines
        let corpus = GoCorpus::generate(&spec, 11);
        let scanned = corpus.scan();
        let truth = &corpus.truth;
        assert_eq!(scanned.go_statements, truth.go_statements);
        assert_eq!(scanned.lock_calls, truth.lock_calls);
        assert_eq!(scanned.unlock_calls, truth.unlock_calls);
        assert_eq!(scanned.rlock_calls, truth.rlock_calls);
        assert_eq!(scanned.runlock_calls, truth.runlock_calls);
        assert_eq!(scanned.chan_sends, truth.chan_sends);
        assert_eq!(scanned.chan_recvs, truth.chan_recvs);
        assert_eq!(scanned.waitgroup_decls, truth.waitgroup_decls);
        assert_eq!(scanned.map_constructs, truth.map_constructs);
        assert_eq!(scanned.lines, truth.lines);
    }

    #[test]
    fn densities_land_near_the_spec() {
        let spec = GoCorpusSpec::paper_scaled(0.0005); // ~23K lines
        let corpus = GoCorpus::generate(&spec, 3);
        let c = corpus.scan();
        let per_mloc = |n: u64| n as f64 * 1e6 / c.lines as f64;
        // Within 35% of the target (small corpora are noisy; budgets are
        // exact but line counts wobble with filler).
        let go_density = per_mloc(c.go_statements);
        assert!(
            (go_density - spec.go_per_mloc).abs() / spec.go_per_mloc < 0.35,
            "go density {go_density} vs target {}",
            spec.go_per_mloc
        );
        let p2p = per_mloc(c.point_to_point());
        let target_p2p = spec.lock_unlock_per_mloc
            + spec.rlock_runlock_per_mloc
            + spec.chan_ops_per_mloc;
        assert!(
            (p2p - target_p2p).abs() / target_p2p < 0.35,
            "p2p density {p2p} vs target {target_p2p}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = GoCorpusSpec::paper_scaled(0.0001);
        let a = GoCorpus::generate(&spec, 5);
        let b = GoCorpus::generate(&spec, 5);
        assert_eq!(a.files, b.files);
        let c = GoCorpus::generate(&spec, 6);
        assert_ne!(a.files, c.files);
    }
}
