//! Synthetic monorepo generation and scanning — the substrate for Table 1.
//!
//! The paper measures concurrency-construct densities by scanning Uber's Go
//! monorepo (46 MLoC, 2100 services) and Java monorepo (19 MLoC, 857
//! services). Neither repository is available, so this crate generates
//! *synthetic* monorepos whose construct densities are calibrated to the
//! paper's Table 1, then runs the scanners over them:
//!
//! * Go sources are parsed with `grs-golite` and counted by its AST scanner
//!   (the high-fidelity path);
//! * Java sources are counted by a token-level textual scanner — which is
//!   faithful to the paper's own method: it describes its counts as a
//!   "coarse-grained and imperfect" look-up for `.start()`, `synchronized`,
//!   `acquire`/`release`, `lock`/`unlock`, and the latch/barrier classes.
//!
//! The generator tracks ground-truth counts as it emits code, so the test
//! suite can assert that the Go scanner recovers the truth *exactly* — the
//! part of Table 1 that is actually falsifiable in a reproduction.
//!
//! # Example
//!
//! ```
//! use grs_corpus::table1::{self, Table1Config};
//!
//! let table = table1::generate_and_scan(&Table1Config::scaled(0.0002), 1);
//! // Go uses several times more point-to-point sync per MLoC than Java:
//! assert!(table.p2p_ratio() > 2.0);
//! ```

pub mod gogen;
pub mod golint;
pub mod javagen;
pub mod javascan;
pub mod snippets;
pub mod table1;
pub mod testgen;

pub use gogen::{GoCorpus, GoCorpusSpec};
pub use snippets::{go_snippets, GoSnippet};
pub use testgen::{GoTest, GoTestGen, GoTestSpec};
pub use golint::{lint_corpus, LintReport};
pub use javagen::{JavaCorpus, JavaCorpusSpec};
pub use javascan::JavaCounts;
pub use table1::{Table1, Table1Config, Table1Row};
