//! The embedded Go-source snippet suite — paper listings as corpus data.
//!
//! These are the hand-adapted renditions of the paper's listings that the
//! campaign engine runs through the `grs-interp` frontend. They live here —
//! next to the generators — so `grs-fleet` treats them as just another
//! source-level unit stream: the same lowering path that compiles
//! [`GoTestGen`](crate::GoTestGen) output compiles these, and there is
//! exactly one place in the system that turns Go source into campaign
//! units.

/// One embedded Go source with ground truth.
#[derive(Debug, Clone, Copy)]
pub struct GoSnippet {
    /// Display name (`go/<pattern>/<racy|fixed>`).
    pub name: &'static str,
    /// Ground truth: does the snippet contain a race?
    pub expected_racy: bool,
    /// The complete `package main` source.
    pub source: &'static str,
}

/// The embedded snippet suite: racy/fixed twins of the paper's loop
/// capture (Listing 1), mutex-by-value (Listing 7), and concurrent-map
/// (Observation 4) bugs.
#[must_use]
pub fn go_snippets() -> &'static [GoSnippet] {
    &[
        GoSnippet {
            name: "go/loop_capture/racy",
            expected_racy: true,
            source: r#"
package main

func processJob(j int) int {
    return j * 2
}

func main() {
    jobs := []int{10, 20, 30}
    done := make(chan bool, 3)
    for _, job := range jobs {
        go func() {
            processJob(job)
            done <- true
        }()
    }
    <-done
    <-done
    <-done
}
"#,
        },
        GoSnippet {
            name: "go/loop_capture/fixed",
            expected_racy: false,
            source: r#"
package main

func processJob(j int) int {
    return j * 2
}

func main() {
    jobs := []int{10, 20, 30}
    done := make(chan bool, 3)
    for _, job := range jobs {
        go func(job int) {
            processJob(job)
            done <- true
        }(job)
    }
    <-done
    <-done
    <-done
}
"#,
        },
        GoSnippet {
            name: "go/mutex_by_value/racy",
            expected_racy: true,
            source: r#"
package main

var a int

func criticalSection(m sync.Mutex) {
    m.Lock()
    a = a + 1
    m.Unlock()
}

func main() {
    var mutex sync.Mutex
    done := make(chan bool, 2)
    go func(m sync.Mutex) {
        criticalSection(m)
        done <- true
    }(mutex)
    go func(m sync.Mutex) {
        criticalSection(m)
        done <- true
    }(mutex)
    <-done
    <-done
}
"#,
        },
        GoSnippet {
            name: "go/mutex_by_value/fixed",
            expected_racy: false,
            source: r#"
package main

var a int

func criticalSection(m *sync.Mutex) {
    m.Lock()
    a = a + 1
    m.Unlock()
}

func main() {
    var mutex sync.Mutex
    done := make(chan bool, 2)
    go func() {
        criticalSection(&mutex)
        done <- true
    }()
    go func() {
        criticalSection(&mutex)
        done <- true
    }()
    <-done
    <-done
}
"#,
        },
        GoSnippet {
            name: "go/concurrent_map/racy",
            expected_racy: true,
            source: r#"
package main

func getOrder(uuid int) string {
    if uuid > 1 {
        return "failed"
    }
    return ""
}

func main() {
    uuids := []int{1, 2, 3}
    errMap := make(map[int]string)
    done := make(chan bool, 3)
    for _, uuid := range uuids {
        go func(uuid int) {
            err := getOrder(uuid)
            if err != "" {
                errMap[uuid] = err
            }
            done <- true
        }(uuid)
    }
    <-done
    <-done
    <-done
    _ = len(errMap)
}
"#,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snippets_parse_and_cover_both_verdicts() {
        let snippets = go_snippets();
        assert!(snippets.iter().any(|s| s.expected_racy));
        assert!(snippets.iter().any(|s| !s.expected_racy));
        for s in snippets {
            grs_golite::scan_source(s.source)
                .unwrap_or_else(|e| panic!("{}: snippet does not parse: {e}", s.name));
        }
    }
}
