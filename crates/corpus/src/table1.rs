//! The Table 1 experiment: generate both monorepos, scan them, and compare
//! per-MLoC densities.

use crate::gogen::{GoCorpus, GoCorpusSpec};
use crate::javagen::{JavaCorpus, JavaCorpusSpec};
use crate::javascan::{scan_java, JavaCounts};

/// Scale factors for the two corpora.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Go corpus spec.
    pub go: GoCorpusSpec,
    /// Java corpus spec.
    pub java: JavaCorpusSpec,
}

impl Table1Config {
    /// Both corpora at the same fraction of the paper's sizes.
    ///
    /// Note: Java's sync-construct densities are ~50× sparser than its map
    /// density, so very small scales give integer-noise ratios; prefer
    /// [`Table1Config::balanced`] for density comparisons.
    #[must_use]
    pub fn scaled(scale: f64) -> Self {
        Table1Config {
            go: GoCorpusSpec::paper_scaled(scale),
            java: JavaCorpusSpec::paper_scaled(scale),
        }
    }

    /// Asymmetric scales chosen so both corpora contain enough sync
    /// constructs for stable per-MLoC densities (the Java scanner is
    /// textual and cheap, so its corpus can be much larger).
    #[must_use]
    pub fn balanced(go_scale: f64) -> Self {
        Table1Config {
            go: GoCorpusSpec::paper_scaled(go_scale),
            java: JavaCorpusSpec::paper_scaled(go_scale * 10.0),
        }
    }
}

impl Default for Table1Config {
    fn default() -> Self {
        Self::scaled(0.001)
    }
}

/// One column of Table 1 (normalized to what both languages share).
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// Lines of code scanned.
    pub loc: u64,
    /// Number of services.
    pub services: u32,
    /// Concurrency-creation constructs.
    pub concurrency_creation: u64,
    /// Point-to-point synchronization constructs.
    pub point_to_point: u64,
    /// Group-communication constructs.
    pub group_sync: u64,
    /// Map constructs.
    pub maps: u64,
}

impl Table1Row {
    /// Per-MLoC density of `n`.
    #[must_use]
    pub fn per_mloc(&self, n: u64) -> f64 {
        if self.loc == 0 {
            0.0
        } else {
            n as f64 * 1e6 / self.loc as f64
        }
    }
}

/// The reproduced Table 1.
#[derive(Debug, Clone, Copy)]
pub struct Table1 {
    /// The Go column.
    pub go: Table1Row,
    /// The Java column.
    pub java: Table1Row,
}

impl Table1 {
    /// Go/Java ratio of point-to-point sync densities (paper: ≈ 3.7×).
    #[must_use]
    pub fn p2p_ratio(&self) -> f64 {
        self.go.per_mloc(self.go.point_to_point) / self.java.per_mloc(self.java.point_to_point)
    }

    /// Go/Java ratio of group-sync densities (paper: ≈ 1.9×).
    #[must_use]
    pub fn group_ratio(&self) -> f64 {
        self.go.per_mloc(self.go.group_sync) / self.java.per_mloc(self.java.group_sync)
    }

    /// Go/Java ratio of concurrency-creation densities (paper: ≈ 1.14×,
    /// "not significantly different").
    #[must_use]
    pub fn creation_ratio(&self) -> f64 {
        self.go.per_mloc(self.go.concurrency_creation)
            / self.java.per_mloc(self.java.concurrency_creation)
    }

    /// Go/Java ratio of map-construct densities (paper: ≈ 1.34×).
    #[must_use]
    pub fn map_ratio(&self) -> f64 {
        self.go.per_mloc(self.go.maps) / self.java.per_mloc(self.java.maps)
    }

    /// Renders the table in the paper's layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("| Feature                     |        Java |          Go |\n");
        s.push_str("|-----------------------------|-------------|-------------|\n");
        s.push_str(&format!(
            "| LoC                         | {:>11} | {:>11} |\n",
            self.java.loc, self.go.loc
        ));
        s.push_str(&format!(
            "| services                    | {:>11} | {:>11} |\n",
            self.java.services, self.go.services
        ));
        s.push_str(&format!(
            "| concurrency creation        | {:>11} | {:>11} |\n",
            self.java.concurrency_creation, self.go.concurrency_creation
        ));
        s.push_str(&format!(
            "|   total/MLoC                | {:>11.1} | {:>11.1} |\n",
            self.java.per_mloc(self.java.concurrency_creation),
            self.go.per_mloc(self.go.concurrency_creation)
        ));
        s.push_str(&format!(
            "| point-to-point sync         | {:>11} | {:>11} |\n",
            self.java.point_to_point, self.go.point_to_point
        ));
        s.push_str(&format!(
            "|   total/MLoC                | {:>11.1} | {:>11.1} |\n",
            self.java.per_mloc(self.java.point_to_point),
            self.go.per_mloc(self.go.point_to_point)
        ));
        s.push_str(&format!(
            "| group communication         | {:>11} | {:>11} |\n",
            self.java.group_sync, self.go.group_sync
        ));
        s.push_str(&format!(
            "|   total/MLoC                | {:>11.1} | {:>11.1} |\n",
            self.java.per_mloc(self.java.group_sync),
            self.go.per_mloc(self.go.group_sync)
        ));
        s.push_str(&format!(
            "| map constructs/MLoC         | {:>11.1} | {:>11.1} |\n",
            self.java.per_mloc(self.java.maps),
            self.go.per_mloc(self.go.maps)
        ));
        s
    }
}

/// Generates both corpora under `seed`, scans them, and assembles Table 1.
#[must_use]
pub fn generate_and_scan(config: &Table1Config, seed: u64) -> Table1 {
    let go_corpus = GoCorpus::generate(&config.go, seed);
    let go_counts = go_corpus.scan();
    let java_corpus = JavaCorpus::generate(&config.java, seed.wrapping_add(1));
    let mut java_counts = JavaCounts::default();
    for (_, src) in &java_corpus.files {
        java_counts.merge(&scan_java(src));
    }
    Table1 {
        go: Table1Row {
            loc: go_counts.lines,
            services: go_corpus.services,
            concurrency_creation: go_counts.concurrency_creation(),
            point_to_point: go_counts.point_to_point(),
            group_sync: go_counts.group_sync(),
            maps: go_counts.map_constructs,
        },
        java: Table1Row {
            loc: java_counts.lines,
            services: java_corpus.services,
            concurrency_creation: java_counts.concurrency_creation(),
            point_to_point: java_counts.point_to_point(),
            group_sync: java_counts.group_sync(),
            maps: java_counts.map_constructs,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_the_paper_shape() {
        let t = generate_and_scan(&Table1Config::balanced(0.002), 7);
        // Paper: Go ≈ 3.7× point-to-point, ≈ 1.9× group, ≈ 1.14× creation.
        assert!(
            (2.8..=4.6).contains(&t.p2p_ratio()),
            "p2p ratio {} (paper 3.7)",
            t.p2p_ratio()
        );
        assert!(
            (1.4..=2.5).contains(&t.group_ratio()),
            "group ratio {} (paper 1.9)",
            t.group_ratio()
        );
        assert!(
            (0.9..=1.5).contains(&t.creation_ratio()),
            "creation ratio {} (paper ~1.14)",
            t.creation_ratio()
        );
        assert!(
            (1.0..=1.8).contains(&t.map_ratio()),
            "map ratio {} (paper 1.34)",
            t.map_ratio()
        );
    }

    #[test]
    fn render_contains_both_columns() {
        let t = generate_and_scan(&Table1Config::scaled(0.0002), 3);
        let rendered = t.render();
        assert!(rendered.contains("concurrency creation"));
        assert!(rendered.contains("point-to-point"));
        assert!(rendered.contains("group communication"));
    }

    #[test]
    fn experiment_is_deterministic() {
        let a = generate_and_scan(&Table1Config::scaled(0.0002), 9);
        let b = generate_and_scan(&Table1Config::scaled(0.0002), 9);
        assert_eq!(a.go.point_to_point, b.go.point_to_point);
        assert_eq!(a.java.point_to_point, b.java.point_to_point);
    }
}
