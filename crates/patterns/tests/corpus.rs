//! The corpus contract: every racy pattern is detected by the explorer, and
//! no fixed variant ever produces a report (under the seeds explored).

use grs_detector::{ExploreConfig, Explorer};
use grs_patterns::registry;

#[test]
fn every_racy_pattern_is_detected() {
    let explorer = Explorer::new(ExploreConfig::quick().runs(60));
    let mut missed = Vec::new();
    for pattern in registry() {
        let result = explorer.explore(&pattern.racy_program());
        if !result.found_race() {
            missed.push(pattern.id);
        }
    }
    assert!(
        missed.is_empty(),
        "racy patterns never detected across 60 runs: {missed:?}"
    );
}

#[test]
fn no_fixed_pattern_is_flagged() {
    let explorer = Explorer::new(ExploreConfig::quick().runs(40));
    let mut false_positives = Vec::new();
    for pattern in registry() {
        let result = explorer.explore(&pattern.fixed_program());
        if result.found_race() {
            false_positives.push((pattern.id, result.unique_races[0].to_string()));
        }
    }
    assert!(
        false_positives.is_empty(),
        "fixed variants flagged: {false_positives:#?}"
    );
}

#[test]
fn fixed_variants_run_clean() {
    // Beyond race-freedom: the fixed programs must not deadlock or leak.
    let explorer = Explorer::new(ExploreConfig::quick().runs(20));
    for pattern in registry() {
        let result = explorer.explore(&pattern.fixed_program());
        assert_eq!(result.deadlock_runs, 0, "{} deadlocked", pattern.id);
        assert_eq!(result.error_runs, 0, "{} errored", pattern.id);
    }
}

#[test]
fn detection_rates_are_schedule_dependent() {
    // §3.2's core observation: detection is probabilistic. At least one
    // pattern should have an intermediate detection rate (not ~0, not
    // always 1.0 across every pattern).
    let explorer = Explorer::new(ExploreConfig::quick().runs(60));
    let rates: Vec<(&str, f64)> = registry()
        .iter()
        .map(|p| (p.id, explorer.explore(&p.racy_program()).detection_rate()))
        .collect();
    assert!(
        rates.iter().any(|&(_, r)| r < 1.0),
        "every pattern detected in every run — flakiness not reproduced: {rates:?}"
    );
    assert!(rates.iter().all(|&(_, r)| r > 0.0));
}

#[test]
fn future_pattern_leaks_goroutines_when_cancelled() {
    // Listing 9's second bug: the sender blocks forever when the context
    // wins the select.
    let pattern = grs_patterns::find("future_cancel").expect("exists");
    let explorer = Explorer::new(ExploreConfig::quick().runs(60));
    let result = explorer.explore(&pattern.racy_program());
    assert!(
        result.leaked_runs > 0,
        "cancellation path never leaked the future goroutine"
    );
    // And the fixed variant never leaks.
    let fixed = explorer.explore(&pattern.fixed_program());
    assert_eq!(fixed.leaked_runs, 0);
}

#[test]
fn rlock_write_report_shows_lock_held() {
    // Listing 11 is special: the race happens WHILE a lock is held — the
    // TSan-style report should say so on at least one side.
    let pattern = grs_patterns::find("rlock_write").expect("exists");
    let result = Explorer::new(ExploreConfig::quick().runs(80)).explore(&pattern.racy_program());
    let race = result.unique_races.first().expect("detected");
    assert!(
        !race.prior.locks_held.is_empty() || !race.current.locks_held.is_empty(),
        "reader-lock race should show a held lock: {race}"
    );
}
