//! Go-source renditions of the pattern corpus, one per lint rule.
//!
//! The executable patterns in this crate exercise the *dynamic* detector;
//! these are the same bugs written as Go-lite source, so the *static*
//! engine (`grs-golite`'s `GR001`–`GR018`) can be scored against the
//! dynamic explorer on identical material. Each rendition carries the
//! pattern ID of its executable twin — the agreement experiment in
//! `grs::experiments` joins the two corpora on that key.
//!
//! `GR013`–`GR018` are the interprocedural rules: each of those
//! renditions splits its bug across at least two functions, so it is
//! invisible to a single-function analysis and only falls out of the
//! call-graph summaries.
//!
//! This crate deliberately does not depend on the lint engine: a rendition
//! names its rule by stable ID string, and the engine side resolves it.

/// One bug written twice: racy Go and the developers' fix.
#[derive(Debug, Clone, Copy)]
pub struct GoRendition {
    /// ID of the executable [`crate::Pattern`] this is the source form of.
    pub pattern_id: &'static str,
    /// The lint rule (`GR001`…`GR018`) that must fire on `racy` and stay
    /// silent on `fixed`.
    pub rule: &'static str,
    /// Go-lite source containing the race.
    pub racy: &'static str,
    /// Go-lite source with the paper's fix applied.
    pub fixed: &'static str,
}

/// All renditions, one per lint rule, in rule-ID order.
#[must_use]
pub fn renditions() -> Vec<GoRendition> {
    vec![
        GoRendition {
            pattern_id: "loop_index_capture",
            rule: "GR001",
            racy: r#"
package worker

func ProcessAll(jobs []int) {
    for _, job := range jobs {
        go func() {
            process(job)
        }()
    }
}
"#,
            fixed: r#"
package worker

func ProcessAll(jobs []int) {
    for _, job := range jobs {
        job := job
        go func() {
            process(job)
        }()
    }
}
"#,
        },
        GoRendition {
            pattern_id: "err_capture",
            rule: "GR002",
            racy: r#"
package fetch

func Fetch() {
    data, err := load()
    go func() {
        err = send(data)
    }()
    if err != nil {
        logError(err)
    }
}
"#,
            fixed: r#"
package fetch

func Fetch() {
    data, err := load()
    go func() {
        err := send(data)
        logError(err)
    }()
    if err != nil {
        logError(err)
    }
}
"#,
        },
        GoRendition {
            pattern_id: "named_return_capture",
            rule: "GR003",
            racy: r#"
package compute

func Compute() (result int) {
    go func() {
        result = expensive()
    }()
    waitDone()
    return result
}
"#,
            fixed: r#"
package compute

func Compute() (result int) {
    local := 0
    go func() {
        local = expensive()
    }()
    waitDone()
    result = local
    return result
}
"#,
        },
        GoRendition {
            pattern_id: "map_concurrent_write",
            rule: "GR004",
            racy: r#"
package cachepkg

func Warm(keys []string) {
    cache := makeCache()
    for _, k := range keys {
        k := k
        go func() {
            cache[k] = fetch(k)
        }()
    }
}
"#,
            fixed: r#"
package cachepkg

func Warm(keys []string) {
    cache := makeCache()
    for _, k := range keys {
        cache[k] = fetch(k)
    }
}
"#,
        },
        GoRendition {
            pattern_id: "mutex_by_value",
            rule: "GR005",
            racy: r#"
package store

func Push(mu sync.Mutex, v int) {
    mu.Lock()
    enqueue(v)
    mu.Unlock()
}
"#,
            fixed: r#"
package store

func Push(mu *sync.Mutex, v int) {
    mu.Lock()
    enqueue(v)
    mu.Unlock()
}
"#,
        },
        GoRendition {
            pattern_id: "waitgroup_add_inside",
            rule: "GR006",
            racy: r#"
package fanout

func FanOut(jobs []int) {
    var wg sync.WaitGroup
    for _, job := range jobs {
        job := job
        go func() {
            wg.Add(1)
            process(job)
            wg.Done()
        }()
    }
    wg.Wait()
}
"#,
            fixed: r#"
package fanout

func FanOut(jobs []int) {
    var wg sync.WaitGroup
    for _, job := range jobs {
        job := job
        wg.Add(1)
        go func() {
            process(job)
            wg.Done()
        }()
    }
    wg.Wait()
}
"#,
        },
        GoRendition {
            pattern_id: "partial_lock",
            rule: "GR007",
            racy: r#"
package config

var mu sync.Mutex
var version int

func SetConfig(v int) {
    mu.Lock()
    version = v
    mu.Unlock()
}

func GetConfig() int {
    return version
}
"#,
            fixed: r#"
package config

var mu sync.Mutex
var version int

func SetConfig(v int) {
    mu.Lock()
    version = v
    mu.Unlock()
}

func GetConfig() int {
    mu.Lock()
    v := version
    mu.Unlock()
    return v
}
"#,
        },
        GoRendition {
            pattern_id: "inconsistent_lock",
            rule: "GR008",
            racy: r#"
package session

func (s *Store) Add() {
    s.muA.Lock()
    s.count = s.count + 1
    s.muA.Unlock()
}

func (s *Store) Remove() {
    s.muB.Lock()
    s.count = s.count - 1
    s.muB.Unlock()
}
"#,
            fixed: r#"
package session

func (s *Store) Add() {
    s.mu.Lock()
    s.count = s.count + 1
    s.mu.Unlock()
}

func (s *Store) Remove() {
    s.mu.Lock()
    s.count = s.count - 1
    s.mu.Unlock()
}
"#,
        },
        GoRendition {
            pattern_id: "rlock_write",
            rule: "GR009",
            racy: r#"
package health

func (g *Gate) updateGate() {
    g.mu.RLock()
    if g.ready == 0 {
        g.ready = 1
    }
    g.mu.RUnlock()
}

func (g *Gate) Check() int {
    g.mu.RLock()
    r := g.ready
    g.mu.RUnlock()
    return r
}
"#,
            fixed: r#"
package health

func (g *Gate) updateGate() {
    g.mu.Lock()
    if g.ready == 0 {
        g.ready = 1
    }
    g.mu.Unlock()
}

func (g *Gate) Check() int {
    g.mu.RLock()
    r := g.ready
    g.mu.RUnlock()
    return r
}
"#,
        },
        GoRendition {
            pattern_id: "partial_atomic",
            rule: "GR010",
            racy: r#"
package metrics

var hits int64

func Inc() {
    atomic.AddInt64(&hits, 1)
}

func Snapshot() int64 {
    return hits
}
"#,
            fixed: r#"
package metrics

var hits int64

func Inc() {
    atomic.AddInt64(&hits, 1)
}

func Snapshot() int64 {
    return atomic.LoadInt64(&hits)
}
"#,
        },
        GoRendition {
            pattern_id: "double_checked_locking",
            rule: "GR011",
            racy: r#"
package pool

var mu sync.Mutex
var initialized int
var conn int

func Get() int {
    if initialized == 0 {
        mu.Lock()
        initialized = 1
        conn = dial()
        mu.Unlock()
    }
    mu.Lock()
    c := conn
    mu.Unlock()
    return c
}
"#,
            fixed: r#"
package pool

var mu sync.Mutex
var initialized int
var conn int

func Get() int {
    mu.Lock()
    if initialized == 0 {
        initialized = 1
        conn = dial()
    }
    c := conn
    mu.Unlock()
    return c
}
"#,
        },
        GoRendition {
            pattern_id: "statement_order",
            rule: "GR012",
            racy: r#"
package server

func Serve() {
    var srv int
    go func() {
        handle(srv)
    }()
    srv = newServer()
}
"#,
            fixed: r#"
package server

func Serve() {
    var srv int
    srv = newServer()
    go func() {
        handle(srv)
    }()
}
"#,
        },
        GoRendition {
            pattern_id: "helper_hidden_lock",
            rule: "GR013",
            racy: r#"
package counter

var mu sync.Mutex
var count int

func Incr() {
    mu.Lock()
    bump()
    mu.Unlock()
}

func bump() {
    count = count + 1
}

func Read() int {
    return count
}
"#,
            fixed: r#"
package counter

var mu sync.Mutex
var count int

func Incr() {
    mu.Lock()
    bump()
    mu.Unlock()
}

func bump() {
    count = count + 1
}

func Read() int {
    mu.Lock()
    v := count
    mu.Unlock()
    return v
}
"#,
        },
        GoRendition {
            pattern_id: "caller_side_locks",
            rule: "GR014",
            racy: r#"
package tally

var muA sync.Mutex
var muB sync.Mutex
var total int

func AddA(n int) {
    muA.Lock()
    bump(n)
    muA.Unlock()
}

func AddB(n int) {
    muB.Lock()
    bump(n)
    muB.Unlock()
}

func bump(n int) {
    total = total + n
}
"#,
            fixed: r#"
package tally

var mu sync.Mutex
var total int

func AddA(n int) {
    mu.Lock()
    bump(n)
    mu.Unlock()
}

func AddB(n int) {
    mu.Lock()
    bump(n)
    mu.Unlock()
}

func bump(n int) {
    total = total + n
}
"#,
        },
        GoRendition {
            pattern_id: "closure_to_worker",
            rule: "GR015",
            racy: r#"
package workpool

func spawnWorker(fn func()) {
    go fn()
}

func ProcessAll(jobs []int) {
    for _, job := range jobs {
        spawnWorker(func() {
            process(job)
        })
    }
}
"#,
            fixed: r#"
package workpool

func spawnWorker(fn func()) {
    go fn()
}

func ProcessAll(jobs []int) {
    for _, job := range jobs {
        job := job
        spawnWorker(func() {
            process(job)
        })
    }
}
"#,
        },
        GoRendition {
            pattern_id: "lock_dropped_before_call",
            rule: "GR016",
            racy: r#"
package notifier

var mu sync.Mutex
var state int

func Update(v int) {
    mu.Lock()
    state = v
    mu.Unlock()
    notify()
}

func notify() {
    emit(state)
}
"#,
            fixed: r#"
package notifier

var mu sync.Mutex
var state int

func Update(v int) {
    mu.Lock()
    state = v
    notify()
    mu.Unlock()
}

func notify() {
    emit(state)
}
"#,
        },
        GoRendition {
            pattern_id: "spawn_in_callee_map_write",
            rule: "GR017",
            racy: r#"
package warmer

func Warm(keys []string) {
    cache := makeCache()
    fill(cache, keys)
    use(cache)
}

func fill(m map[string]int, keys []string) {
    for _, k := range keys {
        go put(m, k)
    }
}

func put(m map[string]int, k string) {
    m[k] = 1
}
"#,
            fixed: r#"
package warmer

func Warm(keys []string) {
    cache := makeCache()
    fill(cache, keys)
    use(cache)
}

func fill(m map[string]int, keys []string) {
    for _, k := range keys {
        put(m, k)
    }
}

func put(m map[string]int, k string) {
    m[k] = 1
}
"#,
        },
        GoRendition {
            pattern_id: "recursive_accessor",
            rule: "GR018",
            racy: r#"
package summing

var total int

func sum(n int) {
    if n > 0 {
        total = total + n
        sum(n - 1)
    }
}

func Run() {
    go sum(8)
    report(total)
}
"#,
            fixed: r#"
package summing

var total int

func sum(n int) {
    if n > 0 {
        total = total + n
        sum(n - 1)
    }
}

func Run() {
    var wg sync.WaitGroup
    wg.Add(1)
    go func() {
        sum(8)
        wg.Done()
    }()
    wg.Wait()
    report(total)
}
"#,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find;

    #[test]
    fn every_rendition_has_an_executable_twin() {
        for r in renditions() {
            assert!(
                find(r.pattern_id).is_some(),
                "no executable pattern named {:?}",
                r.pattern_id
            );
        }
    }

    #[test]
    fn renditions_cover_all_eighteen_rules_in_order() {
        let rules: Vec<&str> = renditions().iter().map(|r| r.rule).collect();
        let expected: Vec<String> = (1..=18).map(|n| format!("GR{n:03}")).collect();
        assert_eq!(rules, expected);
    }
}
