//! Observation 7: mixing message passing with shared memory (Listing 9).
//!
//! The paper's `Future` couples a channel (for signaling) with shared
//! `response`/`err` fields. The cancellation arm of the `select` writes the
//! same `err` field the completion goroutine writes — a race — and when the
//! context wins, nobody ever receives from the channel, leaking the sender
//! forever.

use grs_runtime::chan::select2_recv;
use grs_runtime::{GoContext, Program, Selected2};

use crate::{Category, Pattern};

/// The mixed channel/shared-memory patterns.
#[must_use]
pub fn patterns() -> Vec<Pattern> {
    vec![
        Pattern {
            id: "future_cancel",
            listing: Some(9),
            observation: 7,
            category: Category::MessagePassingShm,
            description: "a Future's completion goroutine and the \
                          context-cancellation select arm both write f.err",
            racy: listing9_racy,
            fixed: listing9_fixed,
        },
        Pattern {
            id: "chan_plus_flag",
            listing: None,
            observation: 7,
            category: Category::MessagePassingShm,
            description: "a done-channel signals completion but a side flag \
                          is read without the channel edge",
            racy: chan_plus_flag_racy,
            fixed: chan_plus_flag_fixed,
        },
    ]
}

/// Listing 9: `Future.Start` + `Future.Wait` with context cancellation.
fn listing9_racy() -> Program {
    Program::new("listing9_future_cancel", |ctx| {
        let _f = ctx.frame("main");
        // The Future's fields:
        let response = ctx.cell("f.response", 0i64);
        let err = ctx.cell("f.err", 0i64);
        let ch = ctx.chan::<i64>("f.ch", 0);
        let gctx = GoContext::with_cancel(ctx, "ctx");

        // f.Start()
        {
            let _s = ctx.frame("Future.Start");
            let (response, err, ch) = (response.clone(), err.clone(), ch.clone());
            ctx.go("future-body", move |ctx| {
                let _f = ctx.frame("registered-func");
                ctx.sleep(3); // resp, err := f.f() — takes a while
                ctx.write(&response, 42);
                ctx.write(&err, 0); // ◀ write to f.err
                ch.send(ctx, 1); // may block forever!
            });
        }

        // The canceller models the context deadline firing.
        {
            let g = gctx.clone();
            ctx.go("deadline", move |ctx| {
                ctx.sleep(2);
                g.cancel(ctx);
            });
        }

        // f.Wait(ctx)
        {
            let _w = ctx.frame("Future.Wait");
            match select2_recv(ctx, &ch, gctx.done()) {
                Selected2::First(_) => {
                    // Future completed: HB edge via the channel; safe.
                    let _ = ctx.read(&err);
                }
                Selected2::Second(_) => {
                    // Context cancelled:
                    ctx.write(&err, -1); // ▶ f.err = ErrCancelled — races!
                }
            }
        }
    })
}

/// The standard fix: a buffered channel (no leak) and a mutex around the
/// shared fields.
fn listing9_fixed() -> Program {
    Program::new("listing9_fixed_future", |ctx| {
        let _f = ctx.frame("main");
        let response = ctx.cell("f.response", 0i64);
        let err = ctx.cell("f.err", 0i64);
        let mu = ctx.mutex("f.mu");
        let ch = ctx.chan::<i64>("f.ch", 1); // buffered: sender never blocks
        let gctx = GoContext::with_cancel(ctx, "ctx");

        {
            let _s = ctx.frame("Future.Start");
            let (response, err, mu, ch) =
                (response.clone(), err.clone(), mu.clone(), ch.clone());
            ctx.go("future-body", move |ctx| {
                let _f = ctx.frame("registered-func");
                ctx.sleep(3);
                mu.lock(ctx);
                ctx.write(&response, 42);
                ctx.write(&err, 0);
                mu.unlock(ctx);
                ch.send(ctx, 1);
            });
        }
        {
            let g = gctx.clone();
            ctx.go("deadline", move |ctx| {
                ctx.sleep(2);
                g.cancel(ctx);
            });
        }
        {
            let _w = ctx.frame("Future.Wait");
            match select2_recv(ctx, &ch, gctx.done()) {
                Selected2::First(_) => {
                    mu.lock(ctx);
                    let _ = ctx.read(&err);
                    mu.unlock(ctx);
                }
                Selected2::Second(_) => {
                    mu.lock(ctx);
                    ctx.write(&err, -1);
                    mu.unlock(ctx);
                }
            }
        }
    })
}

/// A done-channel used for signaling while a side result is read without
/// the corresponding receive.
fn chan_plus_flag_racy() -> Program {
    Program::new("chan_plus_flag", |ctx| {
        let _f = ctx.frame("FetchAll");
        let partial = ctx.cell("partialResult", 0i64);
        let done = ctx.chan::<()>("done", 1);
        let (p2, d2) = (partial.clone(), done.clone());
        ctx.go("fetcher", move |ctx| {
            let _f = ctx.frame("fetch");
            ctx.write(&p2, 7); // ◀ result written before signalling
            d2.send(ctx, ());
        });
        // BUG: peek at the partial result without receiving from `done`.
        let _ = ctx.read(&partial); // ▶ unordered read
        let _ = done.recv(ctx);
    })
}

fn chan_plus_flag_fixed() -> Program {
    Program::new("chan_plus_flag_fixed", |ctx| {
        let _f = ctx.frame("FetchAll");
        let partial = ctx.cell("partialResult", 0i64);
        let done = ctx.chan::<()>("done", 1);
        let (p2, d2) = (partial.clone(), done.clone());
        ctx.go("fetcher", move |ctx| {
            let _f = ctx.frame("fetch");
            ctx.write(&p2, 7);
            d2.send(ctx, ());
        });
        let _ = done.recv(ctx); // the channel edge first
        let _ = ctx.read(&partial); // now ordered
    })
}
