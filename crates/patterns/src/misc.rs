//! The remaining Table 3 categories: contract violations, globals, atomics,
//! statement order, multi-component interactions, metrics/logging, and the
//! three "fixed by avoidance" buckets.

use grs_runtime::{GoMap, Program};

use crate::{Category, Pattern};

/// The language-agnostic miscellaneous patterns.
#[must_use]
pub fn patterns() -> Vec<Pattern> {
    vec![
        Pattern {
            id: "contract_violation",
            listing: None,
            observation: 10,
            category: Category::ContractViolation,
            description: "an API documented thread-safe keeps an unguarded \
                          internal cache",
            racy: contract_racy,
            fixed: contract_fixed,
        },
        Pattern {
            id: "global_variable",
            listing: None,
            observation: 10,
            category: Category::GlobalVar,
            description: "package-level variable mutated by concurrent \
                          request handlers",
            racy: global_racy,
            fixed: global_fixed,
        },
        Pattern {
            id: "partial_atomic",
            listing: None,
            observation: 10,
            category: Category::AtomicMisuse,
            description: "atomic used for the write but not the read of the \
                          same variable (§4.9.2)",
            racy: atomic_racy,
            fixed: atomic_fixed,
        },
        Pattern {
            id: "statement_order",
            listing: None,
            observation: 10,
            category: Category::StatementOrder,
            description: "goroutine launched before the state it reads is \
                          initialized",
            racy: order_racy,
            fixed: order_fixed,
        },
        Pattern {
            id: "complex_interaction",
            listing: None,
            observation: 10,
            category: Category::ComplexInteraction,
            description: "a config hot-reloader and a request pipeline race \
                          through two components",
            racy: complex_racy,
            fixed: complex_fixed,
        },
        Pattern {
            id: "racy_metrics",
            listing: None,
            observation: 10,
            category: Category::MetricsLogging,
            description: "per-request metrics counters bumped without \
                          synchronization",
            racy: metrics_racy,
            fixed: metrics_fixed,
        },
        Pattern {
            id: "fixed_by_removing_concurrency",
            listing: None,
            observation: 10,
            category: Category::RemovedConcurrency,
            description: "racy fan-out whose eventual fix was to serialize \
                          the work",
            racy: removed_concurrency_racy,
            fixed: removed_concurrency_fixed,
        },
        Pattern {
            id: "fixed_by_disabling_test",
            listing: None,
            observation: 9,
            category: Category::DisabledTests,
            description: "racy parallel test whose \"fix\" was to stop \
                          running it in parallel",
            racy: disabled_test_racy,
            fixed: disabled_test_fixed,
        },
        Pattern {
            id: "fixed_by_refactor",
            listing: None,
            observation: 10,
            category: Category::MajorRefactor,
            description: "shared mutable aggregation replaced wholesale by a \
                          channel pipeline",
            racy: refactor_racy,
            fixed: refactor_fixed,
        },
    ]
}

/// A "thread-safe" client with an unguarded memoization map.
fn contract_racy() -> Program {
    Program::new("contract_violation", |ctx| {
        let _f = ctx.frame("main");
        let cache: GoMap<i64, i64> = GoMap::make(ctx, "client.cache");
        for req in 0..3i64 {
            let cache = cache.clone();
            ctx.go("caller", move |ctx| {
                let _f = ctx.frame("Client.Resolve");
                // Documented: "Resolve is safe for concurrent use." It is not.
                if cache.get(ctx, &req).is_none() {
                    cache.insert(ctx, req, req * 2); // ◀▶
                }
            });
        }
        ctx.sleep(4);
    })
}

fn contract_fixed() -> Program {
    Program::new("contract_fixed", |ctx| {
        let _f = ctx.frame("main");
        let cache: GoMap<i64, i64> = GoMap::make(ctx, "client.cache");
        let mu = ctx.mutex("client.mu");
        let wg = ctx.waitgroup("wg");
        for req in 0..3i64 {
            wg.add(ctx, 1);
            let (cache, mu, wg) = (cache.clone(), mu.clone(), wg.clone());
            ctx.go("caller", move |ctx| {
                let _f = ctx.frame("Client.Resolve");
                mu.lock(ctx);
                if cache.get(ctx, &req).is_none() {
                    cache.insert(ctx, req, req * 2);
                }
                mu.unlock(ctx);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
    })
}

/// A package-level `var requestCount int` bumped by handlers.
fn global_racy() -> Program {
    Program::new("global_variable", |ctx| {
        let _f = ctx.frame("Server");
        let global = ctx.cell("pkg.requestCount", 0i64);
        for _ in 0..3 {
            let global = global.clone();
            ctx.go("handler", move |ctx| {
                let _f = ctx.frame("ServeHTTP");
                ctx.update(&global, |v| v + 1); // ◀▶
            });
        }
        ctx.sleep(4);
    })
}

fn global_fixed() -> Program {
    Program::new("global_fixed_atomic", |ctx| {
        let _f = ctx.frame("Server");
        let global = ctx.atomic("pkg.requestCount", 0);
        for _ in 0..3 {
            let global = global.clone();
            ctx.go("handler", move |ctx| {
                let _f = ctx.frame("ServeHTTP");
                global.add(ctx, 1); // atomic.AddInt64
            });
        }
        ctx.sleep(4);
    })
}

/// §4.9.2's atomic half-measure.
fn atomic_racy() -> Program {
    Program::new("partial_atomic", |ctx| {
        let _f = ctx.frame("RateLimiter");
        let tokens = ctx.atomic("tokens", 10);
        let t2 = tokens.clone();
        ctx.go("refill", move |ctx| {
            let _f = ctx.frame("refill");
            t2.store(ctx, 10); // ◀ atomic write...
        });
        let _f2 = ctx.frame("Allow");
        let _ = tokens.load_plain(ctx); // ▶ ...plain read
    })
}

fn atomic_fixed() -> Program {
    Program::new("full_atomic", |ctx| {
        let _f = ctx.frame("RateLimiter");
        let tokens = ctx.atomic("tokens", 10);
        let t2 = tokens.clone();
        ctx.go("refill", move |ctx| {
            let _f = ctx.frame("refill");
            t2.store(ctx, 10);
        });
        let _f2 = ctx.frame("Allow");
        let _ = tokens.load(ctx); // ✓ atomic read
    })
}

/// Goroutine launched one statement too early.
fn order_racy() -> Program {
    Program::new("statement_order", |ctx| {
        let _f = ctx.frame("NewPoller");
        let interval = ctx.cell("p.interval", 0i64);
        let i2 = interval.clone();
        ctx.go("poll-loop", move |ctx| {
            let _f = ctx.frame("poll");
            let _ = ctx.read(&i2); // ◀ reads config...
        });
        ctx.write(&interval, 30); // ▶ ...initialized after the go
    })
}

fn order_fixed() -> Program {
    Program::new("statement_order_fixed", |ctx| {
        let _f = ctx.frame("NewPoller");
        let interval = ctx.cell("p.interval", 0i64);
        ctx.write(&interval, 30); // ✓ initialize first
        let i2 = interval.clone();
        ctx.go("poll-loop", move |ctx| {
            let _f = ctx.frame("poll");
            let _ = ctx.read(&i2); // ordered by the spawn edge
        });
    })
}

/// Two components: a hot-reloader swaps config while the pipeline reads two
/// dependent fields, through a channel used only for *notification*.
fn complex_racy() -> Program {
    Program::new("complex_interaction", |ctx| {
        let _f = ctx.frame("Gateway");
        let host = ctx.cell("cfg.host", 1i64);
        let port = ctx.cell("cfg.port", 80i64);
        let reloaded = ctx.chan::<()>("reloaded", 1);
        let (h2, p2, n2) = (host.clone(), port.clone(), reloaded.clone());
        ctx.go("hot-reloader", move |ctx| {
            let _f = ctx.frame("reload");
            ctx.write(&h2, 2); // ◀ swap the config fields
            n2.send(ctx, ()); // notify (but the reader doesn't wait!)
            ctx.write(&p2, 8080); // second field after the notify
        });
        let _f2 = ctx.frame("route");
        let _ = ctx.read(&host); // ▶ torn read across components
        let _ = ctx.read(&port);
        let _ = reloaded.recv(ctx);
    })
}

fn complex_fixed() -> Program {
    Program::new("complex_fixed_publish", |ctx| {
        let _f = ctx.frame("Gateway");
        let host = ctx.cell("cfg.host", 1i64);
        let port = ctx.cell("cfg.port", 80i64);
        let reloaded = ctx.chan::<()>("reloaded", 1);
        let (h2, p2, n2) = (host.clone(), port.clone(), reloaded.clone());
        ctx.go("hot-reloader", move |ctx| {
            let _f = ctx.frame("reload");
            ctx.write(&h2, 2);
            ctx.write(&p2, 8080);
            n2.send(ctx, ()); // ✓ publish completely, then notify
        });
        let _f2 = ctx.frame("route");
        let _ = reloaded.recv(ctx); // ✓ wait for the notification first
        let _ = ctx.read(&host);
        let _ = ctx.read(&port);
    })
}

/// Fire-and-forget metrics from request handlers.
fn metrics_racy() -> Program {
    Program::new("racy_metrics", |ctx| {
        let _f = ctx.frame("API");
        let latency_sum = ctx.cell("metrics.latencySum", 0i64);
        for r in 0..3i64 {
            let m = latency_sum.clone();
            ctx.go("handler", move |ctx| {
                let _f = ctx.frame("recordLatency");
                ctx.update(&m, |v| v + r); // ◀▶ metrics are "just counters"
            });
        }
        ctx.sleep(4);
        let _f2 = ctx.frame("scrape");
        let _ = ctx.read(&latency_sum);
    })
}

fn metrics_fixed() -> Program {
    Program::new("metrics_fixed_atomic", |ctx| {
        let _f = ctx.frame("API");
        let latency_sum = ctx.atomic("metrics.latencySum", 0);
        let wg = ctx.waitgroup("wg");
        for r in 0..3i64 {
            wg.add(ctx, 1);
            let (m, wg) = (latency_sum.clone(), wg.clone());
            ctx.go("handler", move |ctx| {
                let _f = ctx.frame("recordLatency");
                m.add(ctx, r);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
        let _f2 = ctx.frame("scrape");
        let _ = latency_sum.load(ctx);
    })
}

/// Racy fan-out "fixed" by serializing — the conservative strategy the
/// paper notes developers resort to when they cannot root-cause.
fn removed_concurrency_racy() -> Program {
    Program::new("fixed_by_removing_concurrency", |ctx| {
        let _f = ctx.frame("EnrichAll");
        let enriched = ctx.cell("enrichedCount", 0i64);
        for _ in 0..3 {
            let e = enriched.clone();
            ctx.go("enricher", move |ctx| {
                let _f = ctx.frame("enrich");
                ctx.update(&e, |v| v + 1); // ◀▶
            });
        }
        ctx.sleep(4);
    })
}

fn removed_concurrency_fixed() -> Program {
    Program::new("concurrency_removed", |ctx| {
        let _f = ctx.frame("EnrichAll");
        let enriched = ctx.cell("enrichedCount", 0i64);
        for _ in 0..3 {
            // The "fix": no more goroutines.
            let _f = ctx.frame("enrich");
            ctx.update(&enriched, |v| v + 1);
        }
    })
}

/// A racy parallel test whose "fix" was dropping `t.Parallel()`.
fn disabled_test_racy() -> Program {
    Program::new("fixed_by_disabling_test", |ctx| {
        let _f = ctx.frame("TestSuite");
        let shared = ctx.cell("sharedServer.state", 0i64);
        for case in 0..3i64 {
            let s = shared.clone();
            ctx.go("parallel-subtest", move |ctx| {
                let _f = ctx.frame("subtest");
                ctx.write(&s, case); // ◀▶
            });
        }
        ctx.sleep(4);
    })
}

fn disabled_test_fixed() -> Program {
    Program::new("test_serialized", |ctx| {
        let _f = ctx.frame("TestSuite");
        let shared = ctx.cell("sharedServer.state", 0i64);
        for case in 0..3i64 {
            // t.Parallel() removed: subtests run one after another.
            let _f = ctx.frame("subtest");
            ctx.write(&shared, case);
        }
    })
}

/// Aggregation over shared state, later refactored into a channel pipeline.
fn refactor_racy() -> Program {
    Program::new("fixed_by_refactor", |ctx| {
        let _f = ctx.frame("Aggregate");
        let totals = ctx.cell("totals", 0i64);
        for i in 0..3i64 {
            let t = totals.clone();
            ctx.go("shard", move |ctx| {
                let _f = ctx.frame("sumShard");
                ctx.update(&t, |v| v + i); // ◀▶ shared accumulator
            });
        }
        ctx.sleep(4);
        let _ = ctx.read(&totals);
    })
}

fn refactor_fixed() -> Program {
    Program::new("refactored_to_pipeline", |ctx| {
        let _f = ctx.frame("Aggregate");
        let results = ctx.chan::<i64>("results", 3);
        for i in 0..3i64 {
            let tx = results.clone();
            ctx.go("shard", move |ctx| {
                let _f = ctx.frame("sumShard");
                tx.send(ctx, i); // ✓ ownership transferred by message
            });
        }
        let mut total = 0;
        for _ in 0..3 {
            total += results.recv(ctx).value().unwrap_or(0);
        }
        assert_eq!(total, 3);
    })
}
