//! Observation 4 (slices, Listing 5) and Observation 5 (maps, Listing 6).

use grs_runtime::{GoMap, GoSlice, Program};

use crate::{Category, Pattern};

/// The slice and map patterns.
#[must_use]
pub fn patterns() -> Vec<Pattern> {
    vec![
        Pattern {
            id: "slice_header_copy",
            listing: Some(5),
            observation: 4,
            category: Category::SliceConcurrent,
            description: "lock-protected append races with the unprotected \
                          slice-header copy made by passing the slice by value",
            racy: listing5_racy,
            fixed: listing5_fixed,
        },
        Pattern {
            id: "slice_concurrent_append",
            listing: None,
            observation: 4,
            category: Category::SliceConcurrent,
            description: "plain concurrent appends to a shared slice with no \
                          lock at all (the common Table 2 case)",
            racy: slice_append_racy,
            fixed: slice_append_fixed,
        },
        Pattern {
            id: "map_concurrent_write",
            listing: Some(6),
            observation: 5,
            category: Category::MapConcurrent,
            description: "per-item goroutines write disjoint keys of one \
                          map; the sparse structure still races",
            racy: listing6_racy,
            fixed: listing6_fixed,
        },
        Pattern {
            id: "map_read_during_write",
            listing: None,
            observation: 5,
            category: Category::MapConcurrent,
            description: "map iteration in one goroutine races an insert in \
                          another",
            racy: map_iter_racy,
            fixed: map_iter_fixed,
        },
    ]
}

/// Listing 5: `safeAppend` locks correctly, but the call site passes the
/// slice by value — copying the meta fields without the lock.
fn listing5_racy() -> Program {
    Program::new("listing5_slice_header_copy", |ctx| {
        let _f = ctx.frame("ProcessAll");
        let my_results = GoSlice::<i64>::empty(ctx, "myResults");
        let mutex = ctx.mutex("mutex");
        for id in 0..3i64 {
            // `}(uuid, myResults)` — the by-value pass copies the header
            // WITHOUT holding the lock:  ▶
            let arg_copy = my_results.copy_value(ctx);
            let (mutex, my_results) = (mutex.clone(), my_results.clone());
            ctx.go("anon-goroutine", move |ctx| {
                let _f = ctx.frame("worker");
                let res = id * 10; // res := Foo(id)
                {
                    let _s = ctx.frame("safeAppend");
                    mutex.lock(ctx);
                    my_results.append(ctx, res); // ◀ locked append
                    mutex.unlock(ctx);
                }
                // The copied slice is also readable here, as in the paper.
                let _ = arg_copy;
            });
        }
    })
}

/// The paper's suggested refactor: no by-value pass, only the closure
/// capture, all accesses behind the mutex.
fn listing5_fixed() -> Program {
    Program::new("listing5_fixed_pointer_arg", |ctx| {
        let _f = ctx.frame("ProcessAll");
        let my_results = GoSlice::<i64>::empty(ctx, "myResults");
        let mutex = ctx.mutex("mutex");
        let wg = ctx.waitgroup("wg");
        for id in 0..3i64 {
            wg.add(ctx, 1);
            let (mutex, my_results, wg) = (mutex.clone(), my_results.clone(), wg.clone());
            ctx.go("anon-goroutine", move |ctx| {
                let _f = ctx.frame("worker");
                let res = id * 10;
                {
                    let _s = ctx.frame("safeAppend");
                    mutex.lock(ctx);
                    my_results.append(ctx, res);
                    mutex.unlock(ctx);
                }
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
        mutex.lock(ctx);
        let _ = my_results.len(ctx);
        mutex.unlock(ctx);
    })
}

/// The plain version dominating Table 2: concurrent unguarded appends.
fn slice_append_racy() -> Program {
    Program::new("slice_concurrent_append", |ctx| {
        let _f = ctx.frame("CollectResults");
        let results = GoSlice::<i64>::empty(ctx, "results");
        for i in 0..3i64 {
            let results = results.clone();
            ctx.go("worker", move |ctx| {
                let _f = ctx.frame("appendResult");
                results.append(ctx, i); // ◀▶ unguarded header read+write
            });
        }
        ctx.sleep(4);
        let _ = results.len(ctx);
    })
}

fn slice_append_fixed() -> Program {
    Program::new("slice_append_fixed_locked", |ctx| {
        let _f = ctx.frame("CollectResults");
        let results = GoSlice::<i64>::empty(ctx, "results");
        let mu = ctx.mutex("mu");
        let wg = ctx.waitgroup("wg");
        for i in 0..3i64 {
            wg.add(ctx, 1);
            let (results, mu, wg) = (results.clone(), mu.clone(), wg.clone());
            ctx.go("worker", move |ctx| {
                let _f = ctx.frame("appendResult");
                mu.lock(ctx);
                results.append(ctx, i);
                mu.unlock(ctx);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
        mu.lock(ctx);
        let _ = results.len(ctx);
        mu.unlock(ctx);
    })
}

/// Listing 6: `processOrders` records per-uuid failures in a shared map
/// from per-item goroutines.
fn listing6_racy() -> Program {
    Program::new("listing6_map_concurrent", |ctx| {
        let _f = ctx.frame("processOrders");
        let err_map: GoMap<i64, i64> = GoMap::make(ctx, "errMap");
        let uuids = [1i64, 2, 3];
        for &uuid in &uuids {
            let err_map = err_map.clone();
            ctx.go("anon-goroutine", move |ctx| {
                let _f = ctx.frame("GetOrder");
                // if err := GetOrder(uuid); err != nil {
                //     errMap[uuid] = err            ◀▶ structure write
                err_map.insert(ctx, uuid, uuid * 100);
            });
        }
        ctx.sleep(4);
        // return combineErrors(errMap)
        let _ = err_map.len(ctx);
    })
}

/// Fix: a mutex around the map plus a `WaitGroup` before the combine.
fn listing6_fixed() -> Program {
    Program::new("listing6_fixed_locked_map", |ctx| {
        let _f = ctx.frame("processOrders");
        let err_map: GoMap<i64, i64> = GoMap::make(ctx, "errMap");
        let mu = ctx.mutex("mu");
        let wg = ctx.waitgroup("wg");
        let uuids = [1i64, 2, 3];
        for &uuid in &uuids {
            wg.add(ctx, 1);
            let (err_map, mu, wg) = (err_map.clone(), mu.clone(), wg.clone());
            ctx.go("anon-goroutine", move |ctx| {
                let _f = ctx.frame("GetOrder");
                mu.lock(ctx);
                err_map.insert(ctx, uuid, uuid * 100);
                mu.unlock(ctx);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
        mu.lock(ctx);
        let _ = err_map.len(ctx);
        mu.unlock(ctx);
    })
}

/// Iteration in one goroutine vs insert in another.
fn map_iter_racy() -> Program {
    Program::new("map_read_during_write", |ctx| {
        let _f = ctx.frame("ServeMetrics");
        let stats: GoMap<i64, i64> = GoMap::make(ctx, "stats");
        stats.insert(ctx, 1, 1);
        let writer_map = stats.clone();
        ctx.go("recorder", move |ctx| {
            let _f = ctx.frame("Record");
            writer_map.insert(ctx, 2, 2); // ▶ insert
        });
        let _f2 = ctx.frame("Dump");
        let _ = stats.iterate(ctx); // ◀ range over the map
    })
}

fn map_iter_fixed() -> Program {
    Program::new("map_iter_fixed_rwlock", |ctx| {
        let _f = ctx.frame("ServeMetrics");
        let stats: GoMap<i64, i64> = GoMap::make(ctx, "stats");
        let rw = ctx.rwmutex("rw");
        rw.lock(ctx);
        stats.insert(ctx, 1, 1);
        rw.unlock(ctx);
        let (writer_map, rw2) = (stats.clone(), rw.clone());
        ctx.go("recorder", move |ctx| {
            let _f = ctx.frame("Record");
            rw2.lock(ctx);
            writer_map.insert(ctx, 2, 2);
            rw2.unlock(ctx);
        });
        let _f2 = ctx.frame("Dump");
        rw.rlock(ctx);
        let _ = stats.iterate(ctx);
        rw.runlock(ctx);
    })
}
