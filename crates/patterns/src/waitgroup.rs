//! Observation 8: incorrect use of flexible group synchronization
//! (Listing 10).

use grs_runtime::{GoSlice, Program};

use crate::{Category, Pattern};

/// The `WaitGroup` misuse patterns.
#[must_use]
pub fn patterns() -> Vec<Pattern> {
    vec![
        Pattern {
            id: "waitgroup_add_inside",
            listing: Some(10),
            observation: 8,
            category: Category::GroupSync,
            description: "wg.Add(1) placed inside the goroutine body lets \
                          Wait() return before workers registered",
            racy: listing10_racy,
            fixed: listing10_fixed,
        },
        Pattern {
            id: "waitgroup_premature_done",
            listing: None,
            observation: 8,
            category: Category::GroupSync,
            description: "Done() called before the goroutine finished \
                          publishing its result",
            racy: premature_done_racy,
            fixed: premature_done_fixed,
        },
    ]
}

const ITEMS: usize = 4;

/// Listing 10: `go func(idx int){ wg.Add(1); defer wg.Done(); results[idx]
/// = ... }(i)` then `wg.Wait()`.
fn listing10_racy() -> Program {
    Program::new("listing10_wg_add_inside", |ctx| {
        let _f = ctx.frame("WaitGrpExample");
        let wg = ctx.waitgroup("wg");
        let results = GoSlice::<i64>::make(ctx, "results", ITEMS);
        for i in 0..ITEMS {
            let (wg, results) = (wg.clone(), results.clone());
            ctx.go("anon-goroutine", move |ctx| {
                let _f = ctx.frame("processItem");
                wg.add(ctx, 1); // ✗ should be before the `go`
                results.set(ctx, i, 1); // ◀ write
                wg.done(ctx);
            });
        }
        wg.wait(ctx); // can unblock before any Add ran
        let mut total = 0;
        for i in 0..ITEMS {
            total += results.get(ctx, i); // ▶ read, possibly concurrent
        }
        let _ = total;
    })
}

/// Fix: `wg.Add(1)` before each `go`.
fn listing10_fixed() -> Program {
    Program::new("listing10_fixed_add_before_go", |ctx| {
        let _f = ctx.frame("WaitGrpExample");
        let wg = ctx.waitgroup("wg");
        let results = GoSlice::<i64>::make(ctx, "results", ITEMS);
        for i in 0..ITEMS {
            wg.add(ctx, 1); // ✓ registered before the goroutine exists
            let (wg, results) = (wg.clone(), results.clone());
            ctx.go("anon-goroutine", move |ctx| {
                let _f = ctx.frame("processItem");
                results.set(ctx, i, 1);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
        let mut total = 0;
        for i in 0..ITEMS {
            total += results.get(ctx, i);
        }
        assert_eq!(total, ITEMS as i64);
    })
}

/// "We also found data races arising from a premature placement of the
/// Done() call": Done before the result write.
fn premature_done_racy() -> Program {
    Program::new("wg_premature_done", |ctx| {
        let _f = ctx.frame("GatherStats");
        let wg = ctx.waitgroup("wg");
        let stat = ctx.cell("stat", 0i64);
        wg.add(ctx, 1);
        let (wg2, stat2) = (wg.clone(), stat.clone());
        ctx.go("collector", move |ctx| {
            let _f = ctx.frame("collect");
            wg2.done(ctx); // ✗ signalled before publishing
            ctx.write(&stat2, 5); // ◀ write after Done
        });
        wg.wait(ctx);
        let _ = ctx.read(&stat); // ▶ read believed safe
    })
}

fn premature_done_fixed() -> Program {
    Program::new("wg_done_after_publish", |ctx| {
        let _f = ctx.frame("GatherStats");
        let wg = ctx.waitgroup("wg");
        let stat = ctx.cell("stat", 0i64);
        wg.add(ctx, 1);
        let (wg2, stat2) = (wg.clone(), stat.clone());
        ctx.go("collector", move |ctx| {
            let _f = ctx.frame("collect");
            ctx.write(&stat2, 5);
            wg2.done(ctx); // ✓ publish, then signal
        });
        wg.wait(ctx);
        assert_eq!(ctx.read(&stat), 5);
    })
}
