//! Observation 3: races due to transparent capture-by-reference
//! (Listings 1–4).
//!
//! Go closures capture every free variable by reference without any marker
//! in the syntax; combined with `go func(){...}()` this silently shares the
//! enclosing function's locals with the new goroutine. In the runtime
//! model, cloning a [`grs_runtime::Cell`] is exactly that aliasing.

use grs_runtime::Program;

use crate::{Category, Pattern};

/// The Observation-3 patterns.
#[must_use]
pub fn patterns() -> Vec<Pattern> {
    vec![
        Pattern {
            id: "loop_index_capture",
            listing: Some(1),
            observation: 3,
            category: Category::LoopIndexCapture,
            description: "goroutine reads the loop index variable while the \
                          loop advances it",
            racy: listing1_racy,
            fixed: listing1_fixed,
        },
        Pattern {
            id: "err_capture",
            listing: Some(2),
            observation: 3,
            category: Category::ErrCapture,
            description: "the idiomatic err variable is redefined in the \
                          enclosing function while a goroutine assigns it",
            racy: listing2_racy,
            fixed: listing2_fixed,
        },
        Pattern {
            id: "named_return_capture",
            listing: Some(3),
            observation: 3,
            category: Category::NamedReturnCapture,
            description: "`return 20` compiles to a write of the named \
                          return variable a goroutine is reading",
            racy: listing3_racy,
            fixed: listing3_fixed,
        },
        Pattern {
            id: "named_return_defer",
            listing: Some(4),
            observation: 3,
            category: Category::NamedReturnCapture,
            description: "a deferred function writes the named return err \
                          after return, racing a goroutine's read",
            racy: listing4_racy,
            fixed: listing4_fixed,
        },
    ]
}

/// Listing 1: `for _, job := range jobs { go func() { ProcessJob(job) }() }`.
fn listing1_racy() -> Program {
    Program::new("listing1_loop_index_capture", |ctx| {
        let _f = ctx.frame("ProcessJobs");
        let jobs = [11i64, 22, 33];
        // `job` is ONE variable reused across iterations, as in Go.
        let job = ctx.cell("job", 0i64);
        for &j in &jobs {
            ctx.write(&job, j); // ◀ the range loop advances `job`
            let job = job.clone(); // captured by reference
            ctx.go("anon-goroutine", move |ctx| {
                let _f = ctx.frame("ProcessJob");
                let _v = ctx.read(&job); // ▶ concurrent read of `job`
            });
        }
    })
}

/// The Go-recommended fix: privatize the loop variable (`job := job`).
fn listing1_fixed() -> Program {
    Program::new("listing1_fixed_privatized", |ctx| {
        let _f = ctx.frame("ProcessJobs");
        let jobs = [11i64, 22, 33];
        for &j in &jobs {
            // `job := job` — each iteration gets its own variable; we pass
            // the value into the goroutine instead of sharing the cell.
            ctx.go("anon-goroutine", move |ctx| {
                let _f = ctx.frame("ProcessJob");
                let job = ctx.cell("job-private", j);
                let _v = ctx.read(&job);
            });
        }
    })
}

/// Listing 2: `x, err := Foo(); go func(){ _, err = Bar(); ... }();
/// y, err := Baz()` — both writes target the same `err`.
fn listing2_racy() -> Program {
    Program::new("listing2_err_capture", |ctx| {
        let _f = ctx.frame("HandleRequest");
        let err = ctx.cell("err", 0i64); // 0 = nil
        // x, err := Foo()
        ctx.write(&err, 0);
        let _ = ctx.read(&err); // if err != nil
        let err_in_goroutine = err.clone();
        ctx.go("anon-goroutine", move |ctx| {
            let _f = ctx.frame("AsyncWork");
            // _, err = Bar()  ◀ write to the captured err
            ctx.write(&err_in_goroutine, 1);
            let _ = ctx.read(&err_in_goroutine); // if err != nil
        });
        // y, err := Baz()  ▶ concurrent write to the same err
        ctx.write(&err, 0);
        let _ = ctx.read(&err);
    })
}

/// Fix: the goroutine declares its own error variable (`err2 :=`).
fn listing2_fixed() -> Program {
    Program::new("listing2_fixed_fresh_err", |ctx| {
        let _f = ctx.frame("HandleRequest");
        let err = ctx.cell("err", 0i64);
        ctx.write(&err, 0);
        let _ = ctx.read(&err);
        ctx.go("anon-goroutine", move |ctx| {
            let _f = ctx.frame("AsyncWork");
            let err2 = ctx.cell("err2", 0i64); // fresh variable
            ctx.write(&err2, 1);
            let _ = ctx.read(&err2);
        });
        ctx.write(&err, 0);
        let _ = ctx.read(&err);
    })
}

/// Listing 3: `func NamedReturnCallee() (result int) { ... go func(){ use
/// result }(); return 20 }` — the constant return writes `result`.
fn listing3_racy() -> Program {
    Program::new("listing3_named_return", |ctx| {
        let _f = ctx.frame("NamedReturnCallee");
        let result = ctx.cell("result", 0i64);
        ctx.write(&result, 10); // result = 10
        let captured = result.clone();
        ctx.go("anon-goroutine", move |ctx| {
            let _f = ctx.frame("UseResult");
            let _ = ctx.read(&captured); // ◀ read of the named return
        });
        // `return 20` — the compiler copies 20 into `result`:
        ctx.write(&result, 20); // ▶ the hidden write
    })
}

/// Fix: snapshot the value before launching the goroutine.
fn listing3_fixed() -> Program {
    Program::new("listing3_fixed_snapshot", |ctx| {
        let _f = ctx.frame("NamedReturnCallee");
        let result = ctx.cell("result", 0i64);
        ctx.write(&result, 10);
        let snapshot = ctx.read(&result); // capture by VALUE
        ctx.go("anon-goroutine", move |ctx| {
            let _f = ctx.frame("UseResult");
            let local = ctx.cell("result-copy", snapshot);
            let _ = ctx.read(&local);
        });
        ctx.write(&result, 20);
    })
}

/// Listing 4: `func Redeem(request) (resp Response, err error) {
/// defer func(){ resp, err = c.Foo(request, err) }(); err = CheckRequest(...);
/// go func(){ ProcessRequest(request, err != nil) }(); return }`.
fn listing4_racy() -> Program {
    Program::new("listing4_named_return_defer", |ctx| {
        let _f = ctx.frame("Redeem");
        let err = ctx.cell("err", 0i64);
        let resp = ctx.cell("resp", 0i64);
        // err = CheckRequest(request)
        ctx.write(&err, 0);
        let err_in_goroutine = err.clone();
        ctx.go("anon-goroutine", move |ctx| {
            let _f = ctx.frame("ProcessRequest");
            // ProcessRequest(request, err != nil)  ◀ read of err
            let _ = ctx.read(&err_in_goroutine);
        });
        // `return` — then the deferred function runs:
        {
            let _d = ctx.frame("deferred");
            // resp, err = c.Foo(request, err)  ▶ write of err after return
            let _ = ctx.read(&err);
            ctx.write(&resp, 1);
            ctx.write(&err, 1);
        }
    })
}

/// Fix: pass the error value into the goroutine instead of the variable.
fn listing4_fixed() -> Program {
    Program::new("listing4_fixed_value_arg", |ctx| {
        let _f = ctx.frame("Redeem");
        let err = ctx.cell("err", 0i64);
        let resp = ctx.cell("resp", 0i64);
        ctx.write(&err, 0);
        let err_is_nil = ctx.read(&err) == 0; // evaluated BEFORE the go
        ctx.go("anon-goroutine", move |ctx| {
            let _f = ctx.frame("ProcessRequest");
            let local = ctx.cell("errNotNil", i64::from(!err_is_nil));
            let _ = ctx.read(&local);
        });
        {
            let _d = ctx.frame("deferred");
            let _ = ctx.read(&err);
            ctx.write(&resp, 1);
            ctx.write(&err, 1);
        }
    })
}
