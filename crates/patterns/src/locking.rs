//! Observation 10: incorrect or missing mutual exclusion — the single
//! largest category of the study (470 missing/partial-lock races,
//! Listing 11's reader-lock mutation).

use grs_runtime::Program;

use crate::{Category, Pattern};

/// The locking-mistake patterns.
#[must_use]
pub fn patterns() -> Vec<Pattern> {
    vec![
        Pattern {
            id: "missing_lock",
            listing: None,
            observation: 10,
            category: Category::MissingLock,
            description: "shared counter updated with no lock at all",
            racy: missing_lock_racy,
            fixed: missing_lock_fixed,
        },
        Pattern {
            id: "partial_lock",
            listing: None,
            observation: 10,
            category: Category::MissingLock,
            description: "locked in one place, forgotten in another touching \
                          the same variable",
            racy: partial_lock_racy,
            fixed: partial_lock_fixed,
        },
        Pattern {
            id: "inconsistent_lock",
            listing: None,
            observation: 10,
            category: Category::MissingLock,
            description: "two call sites guard the same variable with \
                          different mutexes",
            racy: inconsistent_lock_racy,
            fixed: inconsistent_lock_fixed,
        },
        Pattern {
            id: "premature_unlock",
            listing: None,
            observation: 10,
            category: Category::MissingLock,
            description: "unlock called before the last access of the \
                          critical section",
            racy: premature_unlock_racy,
            fixed: premature_unlock_fixed,
        },
        Pattern {
            id: "rlock_write",
            listing: Some(11),
            observation: 10,
            category: Category::RLockWrite,
            description: "a read-locked critical section mutates shared \
                          state (HealthGate.updateGate)",
            racy: listing11_racy,
            fixed: listing11_fixed,
        },
    ]
}

fn missing_lock_racy() -> Program {
    Program::new("missing_lock", |ctx| {
        let _f = ctx.frame("ServeRequests");
        let hits = ctx.cell("hits", 0i64);
        for _ in 0..3 {
            let hits = hits.clone();
            ctx.go("handler", move |ctx| {
                let _f = ctx.frame("handle");
                ctx.update(&hits, |v| v + 1); // ◀▶ no lock anywhere
            });
        }
        ctx.sleep(4);
    })
}

fn missing_lock_fixed() -> Program {
    Program::new("missing_lock_fixed", |ctx| {
        let _f = ctx.frame("ServeRequests");
        let hits = ctx.cell("hits", 0i64);
        let mu = ctx.mutex("mu");
        let wg = ctx.waitgroup("wg");
        for _ in 0..3 {
            wg.add(ctx, 1);
            let (hits, mu, wg) = (hits.clone(), mu.clone(), wg.clone());
            ctx.go("handler", move |ctx| {
                let _f = ctx.frame("handle");
                mu.lock(ctx);
                ctx.update(&hits, |v| v + 1);
                mu.unlock(ctx);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
    })
}

/// The subtle variant: the getter forgot the lock the setter uses.
fn partial_lock_racy() -> Program {
    Program::new("partial_lock", |ctx| {
        let _f = ctx.frame("ConfigService");
        let mu = ctx.mutex("mu");
        let version = ctx.cell("config.version", 1i64);
        let (mu2, v2) = (mu.clone(), version.clone());
        ctx.go("Updater", move |ctx| {
            let _f = ctx.frame("SetConfig");
            mu2.lock(ctx);
            ctx.write(&v2, 2); // ◀ writer locks correctly
            mu2.unlock(ctx);
        });
        let _f2 = ctx.frame("GetConfig");
        let _ = ctx.read(&version); // ▶ reader forgot the lock
        let _ = mu;
    })
}

fn partial_lock_fixed() -> Program {
    Program::new("partial_lock_fixed", |ctx| {
        let _f = ctx.frame("ConfigService");
        let mu = ctx.mutex("mu");
        let version = ctx.cell("config.version", 1i64);
        let (mu2, v2) = (mu.clone(), version.clone());
        ctx.go("Updater", move |ctx| {
            let _f = ctx.frame("SetConfig");
            mu2.lock(ctx);
            ctx.write(&v2, 2);
            mu2.unlock(ctx);
        });
        let _f2 = ctx.frame("GetConfig");
        mu.lock(ctx);
        let _ = ctx.read(&version);
        mu.unlock(ctx);
    })
}

/// Both call sites *do* lock — just not the same mutex, so the two
/// critical sections are free to overlap.
fn inconsistent_lock_racy() -> Program {
    Program::new("inconsistent_lock", |ctx| {
        let _f = ctx.frame("SessionStore");
        let mu_a = ctx.mutex("s.muA");
        let mu_b = ctx.mutex("s.muB");
        let count = ctx.cell("s.count", 0i64);
        let (m, c) = (mu_a.clone(), count.clone());
        ctx.go("adder", move |ctx| {
            let _f = ctx.frame("Add");
            m.lock(ctx);
            ctx.update(&c, |v| v + 1); // ◀ guarded by muA
            m.unlock(ctx);
        });
        let _f2 = ctx.frame("Remove");
        mu_b.lock(ctx);
        ctx.update(&count, |v| v - 1); // ▶ guarded by muB — disjoint
        mu_b.unlock(ctx);
    })
}

/// Fix: one mutex owns the variable; every call site takes it.
fn inconsistent_lock_fixed() -> Program {
    Program::new("inconsistent_lock_fixed", |ctx| {
        let _f = ctx.frame("SessionStore");
        let mu = ctx.mutex("s.mu");
        let count = ctx.cell("s.count", 0i64);
        let (m, c) = (mu.clone(), count.clone());
        ctx.go("adder", move |ctx| {
            let _f = ctx.frame("Add");
            m.lock(ctx);
            ctx.update(&c, |v| v + 1);
            m.unlock(ctx);
        });
        let _f2 = ctx.frame("Remove");
        mu.lock(ctx);
        ctx.update(&count, |v| v - 1);
        mu.unlock(ctx);
    })
}

/// Unlock too early, leaving the last access outside the critical section.
fn premature_unlock_racy() -> Program {
    Program::new("premature_unlock", |ctx| {
        let _f = ctx.frame("Accumulate");
        let mu = ctx.mutex("mu");
        let total = ctx.cell("total", 0i64);
        let (mu2, t2) = (mu.clone(), total.clone());
        ctx.go("adder", move |ctx| {
            let _f = ctx.frame("add");
            mu2.lock(ctx);
            let v = ctx.read(&t2);
            mu2.unlock(ctx); // ✗ released before the write-back
            ctx.write(&t2, v + 1); // ▶ outside the critical section
        });
        mu.lock(ctx);
        ctx.update(&total, |v| v + 10); // ◀
        mu.unlock(ctx);
    })
}

fn premature_unlock_fixed() -> Program {
    Program::new("premature_unlock_fixed", |ctx| {
        let _f = ctx.frame("Accumulate");
        let mu = ctx.mutex("mu");
        let total = ctx.cell("total", 0i64);
        let (mu2, t2) = (mu.clone(), total.clone());
        ctx.go("adder", move |ctx| {
            let _f = ctx.frame("add");
            mu2.lock(ctx);
            let v = ctx.read(&t2);
            ctx.write(&t2, v + 1); // ✓ still inside
            mu2.unlock(ctx);
        });
        mu.lock(ctx);
        ctx.update(&total, |v| v + 10);
        mu.unlock(ctx);
    })
}

/// Listing 11: `updateGate` takes `RLock` but sets `g.ready` and performs a
/// non-idempotent network call.
fn listing11_racy() -> Program {
    Program::new("listing11_rlock_write", |ctx| {
        let _f = ctx.frame("HealthChecker");
        let rw = ctx.rwmutex("g.mutex");
        let ready = ctx.cell("g.ready", 0i64);
        let accepts = ctx.cell("g.gate.accepts", 0i64);
        for _ in 0..2 {
            let (rw, ready, accepts) = (rw.clone(), ready.clone(), accepts.clone());
            ctx.go("updateGate", move |ctx| {
                let _f = ctx.frame("HealthGate.updateGate");
                rw.rlock(ctx);
                // ... several read-only operations ...
                if ctx.read(&ready) == 0 {
                    ctx.write(&ready, 1); // ◀▶ write under RLock
                    ctx.update(&accepts, |v| v + 1); // more than one Accept()
                }
                rw.runlock(ctx);
            });
        }
        ctx.sleep(6);
    })
}

/// Fix: upgrade to the write lock for the mutating path.
fn listing11_fixed() -> Program {
    Program::new("listing11_fixed_write_lock", |ctx| {
        let _f = ctx.frame("HealthChecker");
        let rw = ctx.rwmutex("g.mutex");
        let ready = ctx.cell("g.ready", 0i64);
        let accepts = ctx.cell("g.gate.accepts", 0i64);
        let wg = ctx.waitgroup("wg");
        for _ in 0..2 {
            wg.add(ctx, 1);
            let (rw, ready, accepts, wg) =
                (rw.clone(), ready.clone(), accepts.clone(), wg.clone());
            ctx.go("updateGate", move |ctx| {
                let _f = ctx.frame("HealthGate.updateGate");
                rw.lock(ctx); // ✓ exclusive
                if ctx.read(&ready) == 0 {
                    ctx.write(&ready, 1);
                    ctx.update(&accepts, |v| v + 1);
                }
                rw.unlock(ctx);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
        rw.rlock(ctx);
        assert_eq!(ctx.read(&accepts), 1, "Accept() must be idempotent");
        rw.runlock(ctx);
    })
}
