//! Observation 6: pass-by-value vs pass-by-reference confusion
//! (Listings 7–8).

use grs_runtime::Program;

use crate::{Category, Pattern};

/// The by-value/by-pointer patterns.
#[must_use]
pub fn patterns() -> Vec<Pattern> {
    vec![
        Pattern {
            id: "mutex_by_value",
            listing: Some(7),
            observation: 6,
            category: Category::PassByValue,
            description: "a sync.Mutex passed by value gives each goroutine \
                          its own copy; the critical sections exclude nothing",
            racy: listing7_racy,
            fixed: listing7_fixed,
        },
        Pattern {
            id: "accidental_pointer_receiver",
            listing: None,
            observation: 6,
            category: Category::PassByValue,
            description: "a method meant to work on a value copy accidentally \
                          takes a pointer receiver, sharing internal state",
            racy: pointer_receiver_racy,
            fixed: pointer_receiver_fixed,
        },
    ]
}

/// Listing 7: `go CriticalSection(mutex)` copies the mutex.
fn listing7_racy() -> Program {
    Program::new("listing7_mutex_by_value", |ctx| {
        let _f = ctx.frame("main");
        let a = ctx.cell("a", 0i64); // the global being "protected"
        let mutex = ctx.mutex("mutex");
        for _ in 0..2 {
            // `go CriticalSection(mutex)` — pass by VALUE: a fresh copy.  ▶
            let m_copy = mutex.copy_value(ctx);
            let a = a.clone();
            ctx.go("CriticalSection", move |ctx| {
                let _f = ctx.frame("CriticalSection");
                m_copy.lock(ctx);
                ctx.update(&a, |v| v + 1); // ◀▶ unprotected in reality
                m_copy.unlock(ctx);
            });
        }
        ctx.sleep(4);
    })
}

/// Fix: pass `&mutex`; the handle clone aliases the same lock.
fn listing7_fixed() -> Program {
    Program::new("listing7_fixed_mutex_pointer", |ctx| {
        let _f = ctx.frame("main");
        let a = ctx.cell("a", 0i64);
        let mutex = ctx.mutex("mutex");
        let wg = ctx.waitgroup("wg");
        for _ in 0..2 {
            wg.add(ctx, 1);
            // `go CriticalSection(&mutex)` — same lock object.
            let (m, a, wg) = (mutex.clone(), a.clone(), wg.clone());
            ctx.go("CriticalSection", move |ctx| {
                let _f = ctx.frame("CriticalSection");
                m.lock(ctx);
                ctx.update(&a, |v| v + 1);
                m.unlock(ctx);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
    })
}

/// The converse: a developer intends each goroutine to mutate its own copy
/// of a struct, but the method has a pointer receiver, so all goroutines
/// share one instance.
fn pointer_receiver_racy() -> Program {
    Program::new("accidental_pointer_receiver", |ctx| {
        let _f = ctx.frame("RunWorkers");
        // `func (s *Stats) bump()` — receiver is a pointer: shared state.
        let shared_counter = ctx.cell("stats.count", 0i64);
        for _ in 0..3 {
            let c = shared_counter.clone();
            ctx.go("worker", move |ctx| {
                let _f = ctx.frame("Stats.bump");
                ctx.update(&c, |v| v + 1); // ◀▶ all hit the same instance
            });
        }
        ctx.sleep(4);
    })
}

/// Fix: value receiver — each goroutine gets its own copy.
fn pointer_receiver_fixed() -> Program {
    Program::new("value_receiver_fixed", |ctx| {
        let _f = ctx.frame("RunWorkers");
        for _ in 0..3 {
            ctx.go("worker", move |ctx| {
                let _f = ctx.frame("Stats.bump");
                // `func (s Stats) bump()` — private copy per goroutine.
                let own = ctx.cell("stats.count", 0i64);
                ctx.update(&own, |v| v + 1);
            });
        }
        ctx.sleep(4);
    })
}
