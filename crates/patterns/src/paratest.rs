//! Observation 9: the parallel table-driven testing idiom.
//!
//! Go's `testing.T.Parallel()` runs subtests concurrently. Table-driven
//! suites with tens of subtests share fixtures (or exercise product code
//! written without thread safety); the paper attributes 139 fixed races to
//! this idiom.

use grs_runtime::Program;

use crate::{Category, Pattern};

/// The parallel-testing patterns.
#[must_use]
pub fn patterns() -> Vec<Pattern> {
    vec![
        Pattern {
            id: "parallel_subtests_shared_fixture",
            listing: None,
            observation: 9,
            category: Category::ParallelTest,
            description: "table-driven subtests run with t.Parallel() mutate \
                          a shared test fixture",
            racy: shared_fixture_racy,
            fixed: shared_fixture_fixed,
        },
        Pattern {
            id: "parallel_subtests_product_state",
            listing: None,
            observation: 9,
            category: Category::ParallelTest,
            description: "parallel subtests drive a product API whose \
                          internal cache was written assuming serial calls",
            racy: product_state_racy,
            fixed: product_state_fixed,
        },
    ]
}

const SUBTESTS: usize = 4;

/// Subtests sharing one fixture struct, each "configuring" it before use.
fn shared_fixture_racy() -> Program {
    Program::new("parallel_subtests_shared_fixture", |ctx| {
        let _f = ctx.frame("TestHandlers");
        // One fixture, built once, shared by every subtest row.
        let fixture_mode = ctx.cell("fixture.mode", 0i64);
        for case in 0..SUBTESTS as i64 {
            let fixture_mode = fixture_mode.clone();
            // t.Run(name, func(t *testing.T){ t.Parallel(); ... })
            ctx.go("subtest", move |ctx| {
                let _f = ctx.frame("subtest.body");
                ctx.write(&fixture_mode, case); // ◀▶ per-case configuration
                let _ = ctx.read(&fixture_mode); // the assertion reads it back
            });
        }
        ctx.sleep(6);
    })
}

/// Fix: each subtest builds its own fixture (the standard guidance).
fn shared_fixture_fixed() -> Program {
    Program::new("parallel_subtests_own_fixture", |ctx| {
        let _f = ctx.frame("TestHandlers");
        for case in 0..SUBTESTS as i64 {
            ctx.go("subtest", move |ctx| {
                let _f = ctx.frame("subtest.body");
                let fixture_mode = ctx.cell("fixture.mode", 0i64); // private
                ctx.write(&fixture_mode, case);
                let _ = ctx.read(&fixture_mode);
            });
        }
        ctx.sleep(6);
    })
}

/// Product code with an internal memoization cell, safe serially, raced by
/// parallel subtests.
fn product_state_racy() -> Program {
    Program::new("parallel_subtests_product_state", |ctx| {
        let _f = ctx.frame("TestPricing");
        let memo = ctx.cell("pricer.memo", -1i64); // product-internal cache
        for case in 0..SUBTESTS as i64 {
            let memo = memo.clone();
            ctx.go("subtest", move |ctx| {
                let _f = ctx.frame("Pricer.Quote");
                // if p.memo < 0 { p.memo = compute() } — racy lazy init.
                if ctx.read(&memo) < 0 {
                    ctx.write(&memo, case * 10);
                }
                let _ = ctx.read(&memo);
            });
        }
        ctx.sleep(6);
    })
}

/// Fix: guard the lazy initialization with `sync.Once`.
fn product_state_fixed() -> Program {
    Program::new("parallel_subtests_product_once", |ctx| {
        let _f = ctx.frame("TestPricing");
        let memo = ctx.cell("pricer.memo", -1i64);
        let once = ctx.once("pricer.init");
        let wg = ctx.waitgroup("wg");
        for _case in 0..SUBTESTS as i64 {
            wg.add(ctx, 1);
            let (memo, once, wg) = (memo.clone(), once.clone(), wg.clone());
            ctx.go("subtest", move |ctx| {
                let _f = ctx.frame("Pricer.Quote");
                once.do_once(ctx, |ctx| ctx.write(&memo, 10));
                let _ = ctx.read(&memo);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
    })
}
