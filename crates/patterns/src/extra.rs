//! Second-wave pattern variants.
//!
//! The paper's categories each cover many manifestations (391 slice races
//! alone); this module adds further shapes per category beyond the primary
//! listings, so the mixture-recovery experiments rotate over a more
//! diverse population and the corpus covers idioms the text describes but
//! does not list (double-checked locking, shutdown-flag protocols,
//! map-fixture parallel tests, premature `Done`-style variants).

use grs_runtime::{GoMap, GoSlice, Program};

use crate::{Category, Pattern};

/// The extra pattern variants.
#[must_use]
pub fn patterns() -> Vec<Pattern> {
    vec![
        Pattern {
            id: "range_map_key_capture",
            listing: None,
            observation: 3,
            category: Category::LoopIndexCapture,
            description: "range-over-map key variable captured by the \
                          per-entry goroutine",
            racy: range_map_capture_racy,
            fixed: range_map_capture_fixed,
        },
        Pattern {
            id: "slice_reader_vs_appender",
            listing: None,
            observation: 4,
            category: Category::SliceConcurrent,
            description: "a monitoring goroutine len()s a slice another \
                          goroutine appends to",
            racy: slice_reader_racy,
            fixed: slice_reader_fixed,
        },
        Pattern {
            id: "map_delete_vs_get",
            listing: None,
            observation: 5,
            category: Category::MapConcurrent,
            description: "cache eviction deletes keys while request \
                          handlers read them",
            racy: map_delete_racy,
            fixed: map_delete_fixed,
        },
        Pattern {
            id: "struct_with_mutex_by_value",
            listing: Some(8),
            observation: 6,
            category: Category::PassByValue,
            description: "a struct embedding a sync.Mutex is copied; the \
                          copy's lock shares no state (Listing 8's caveat)",
            racy: struct_mutex_copy_racy,
            fixed: struct_mutex_copy_fixed,
        },
        Pattern {
            id: "shutdown_flag_race",
            listing: None,
            observation: 7,
            category: Category::MessagePassingShm,
            description: "a bool shutdown flag guards channel sends but is \
                          written without synchronization",
            racy: shutdown_flag_racy,
            fixed: shutdown_flag_fixed,
        },
        Pattern {
            id: "waitgroup_forgotten_wait",
            listing: None,
            observation: 8,
            category: Category::GroupSync,
            description: "results are consumed before wg.Wait() (wait \
                          placed after the read)",
            racy: forgotten_wait_racy,
            fixed: forgotten_wait_fixed,
        },
        Pattern {
            id: "parallel_subtests_shared_map",
            listing: None,
            observation: 9,
            category: Category::ParallelTest,
            description: "table-driven subtests record results in one \
                          shared map fixture",
            racy: subtest_map_racy,
            fixed: subtest_map_fixed,
        },
        Pattern {
            id: "double_checked_locking",
            listing: None,
            observation: 10,
            category: Category::MissingLock,
            description: "check-lock-check lazy init: the first check reads \
                          the pointer without the lock",
            racy: double_checked_racy,
            fixed: double_checked_fixed,
        },
        Pattern {
            id: "single_writer_many_readers",
            listing: None,
            observation: 10,
            category: Category::MissingLock,
            description: "a refresher goroutine rewrites a config snapshot \
                          read by handlers with no lock",
            racy: single_writer_racy,
            fixed: single_writer_fixed,
        },
        Pattern {
            id: "cas_with_plain_read",
            listing: None,
            observation: 10,
            category: Category::AtomicMisuse,
            description: "a CAS retry loop pairs atomic swaps with a plain \
                          initial read",
            racy: cas_plain_read_racy,
            fixed: cas_plain_read_fixed,
        },
    ]
}

fn range_map_capture_racy() -> Program {
    Program::new("range_map_key_capture", |ctx| {
        let _f = ctx.frame("NotifyAll");
        let subscribers: GoMap<i64, i64> = GoMap::make(ctx, "subscribers");
        for id in 0..3 {
            subscribers.insert(ctx, id, id * 7);
        }
        // `for id := range subscribers { go func(){ notify(id) }() }`
        let key = ctx.cell("id", 0i64);
        for (k, _) in subscribers.iterate(ctx) {
            ctx.write(&key, k); // ◀ the range variable advances
            let key = key.clone();
            ctx.go("notifier", move |ctx| {
                let _f = ctx.frame("notify");
                let _ = ctx.read(&key); // ▶ captured by reference
            });
        }
    })
}

fn range_map_capture_fixed() -> Program {
    Program::new("range_map_key_capture_fixed", |ctx| {
        let _f = ctx.frame("NotifyAll");
        let subscribers: GoMap<i64, i64> = GoMap::make(ctx, "subscribers");
        for id in 0..3 {
            subscribers.insert(ctx, id, id * 7);
        }
        for (k, _) in subscribers.iterate(ctx) {
            // `id := id` privatization: pass the value in.
            ctx.go("notifier", move |ctx| {
                let _f = ctx.frame("notify");
                let key = ctx.cell("id-private", k);
                let _ = ctx.read(&key);
            });
        }
    })
}

fn slice_reader_racy() -> Program {
    Program::new("slice_reader_vs_appender", |ctx| {
        let _f = ctx.frame("Collector");
        let buffer = GoSlice::<i64>::empty(ctx, "buffer");
        let b2 = buffer.clone();
        ctx.go("appender", move |ctx| {
            let _f = ctx.frame("collect");
            for i in 0..3 {
                b2.append(ctx, i); // ◀ header writes
            }
        });
        let _m = ctx.frame("monitor");
        for _ in 0..3 {
            let _ = buffer.len(ctx); // ▶ unguarded header read
            ctx.sleep(1);
        }
    })
}

fn slice_reader_fixed() -> Program {
    Program::new("slice_reader_fixed", |ctx| {
        let _f = ctx.frame("Collector");
        let buffer = GoSlice::<i64>::empty(ctx, "buffer");
        let mu = ctx.mutex("mu");
        let (b2, mu2) = (buffer.clone(), mu.clone());
        let done = ctx.chan::<()>("done", 1);
        let d2 = done.clone();
        ctx.go("appender", move |ctx| {
            let _f = ctx.frame("collect");
            for i in 0..3 {
                mu2.lock(ctx);
                b2.append(ctx, i);
                mu2.unlock(ctx);
            }
            d2.send(ctx, ());
        });
        let _m = ctx.frame("monitor");
        for _ in 0..3 {
            mu.lock(ctx);
            let _ = buffer.len(ctx);
            mu.unlock(ctx);
        }
        let _ = done.recv(ctx);
    })
}

fn map_delete_racy() -> Program {
    Program::new("map_delete_vs_get", |ctx| {
        let _f = ctx.frame("CacheService");
        let cache: GoMap<i64, i64> = GoMap::make(ctx, "cache");
        for k in 0..4 {
            cache.insert(ctx, k, k * 2);
        }
        let c2 = cache.clone();
        ctx.go("evictor", move |ctx| {
            let _f = ctx.frame("evict");
            c2.delete(ctx, &1); // ▶ structure write
            c2.delete(ctx, &3);
        });
        let _h = ctx.frame("handler");
        let _ = cache.get(ctx, &2); // ◀ structure read
        let _ = cache.get(ctx, &0);
    })
}

fn map_delete_fixed() -> Program {
    Program::new("map_delete_fixed", |ctx| {
        let _f = ctx.frame("CacheService");
        let cache: GoMap<i64, i64> = GoMap::make(ctx, "cache");
        let rw = ctx.rwmutex("rw");
        for k in 0..4 {
            cache.insert(ctx, k, k * 2);
        }
        let (c2, rw2) = (cache.clone(), rw.clone());
        ctx.go("evictor", move |ctx| {
            let _f = ctx.frame("evict");
            rw2.lock(ctx);
            c2.delete(ctx, &1);
            c2.delete(ctx, &3);
            rw2.unlock(ctx);
        });
        let _h = ctx.frame("handler");
        rw.rlock(ctx);
        let _ = cache.get(ctx, &2);
        let _ = cache.get(ctx, &0);
        rw.runlock(ctx);
    })
}

/// Listing 8's commentary: a struct containing a `sync.Mutex` copied by
/// value duplicates the lock.
fn struct_mutex_copy_racy() -> Program {
    Program::new("struct_with_mutex_by_value", |ctx| {
        let _f = ctx.frame("main");
        // type SafeCounter struct { mu sync.Mutex; n int }
        let shared_n = ctx.cell("counter.n", 0i64);
        let mu_original = ctx.mutex("counter.mu");
        for _ in 0..2 {
            // Passing the struct by value copies mu but (bug) the code
            // still targets the shared n through a captured pointer.
            let mu_copy = mu_original.copy_value(ctx); // ▶ distinct lock
            let n = shared_n.clone();
            ctx.go("incrementer", move |ctx| {
                let _f = ctx.frame("SafeCounter.Inc");
                mu_copy.lock(ctx);
                ctx.update(&n, |v| v + 1); // ◀▶ unprotected in effect
                mu_copy.unlock(ctx);
            });
        }
        ctx.sleep(4);
    })
}

fn struct_mutex_copy_fixed() -> Program {
    Program::new("struct_mutex_pointer_fixed", |ctx| {
        let _f = ctx.frame("main");
        let shared_n = ctx.cell("counter.n", 0i64);
        let mu = ctx.mutex("counter.mu");
        let wg = ctx.waitgroup("wg");
        for _ in 0..2 {
            wg.add(ctx, 1);
            let (mu, n, wg) = (mu.clone(), shared_n.clone(), wg.clone());
            ctx.go("incrementer", move |ctx| {
                let _f = ctx.frame("SafeCounter.Inc");
                mu.lock(ctx);
                ctx.update(&n, |v| v + 1);
                mu.unlock(ctx);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
    })
}

fn shutdown_flag_racy() -> Program {
    Program::new("shutdown_flag_race", |ctx| {
        let _f = ctx.frame("Dispatcher");
        let closed = ctx.cell("f.closed", 0i64);
        let events = ctx.chan::<i64>("events", 4);
        let (c2, e2) = (closed.clone(), events.clone());
        ctx.go("producer", move |ctx| {
            let _f = ctx.frame("Future.publish");
            // if !f.closed { f.ch <- ev }  — flag read without sync  ◀
            if ctx.read(&c2) == 0 {
                e2.send(ctx, 1);
            }
        });
        let _s = ctx.frame("Shutdown");
        ctx.write(&closed, 1); // ▶ flag write without sync
        let _ = events.try_recv(ctx);
    })
}

fn shutdown_flag_fixed() -> Program {
    Program::new("shutdown_flag_fixed", |ctx| {
        let _f = ctx.frame("Dispatcher");
        let closed = ctx.cell("f.closed", 0i64);
        let mu = ctx.mutex("f.mu");
        let events = ctx.chan::<i64>("events", 4);
        let (c2, m2, e2) = (closed.clone(), mu.clone(), events.clone());
        ctx.go("producer", move |ctx| {
            let _f = ctx.frame("Future.publish");
            m2.lock(ctx);
            if ctx.read(&c2) == 0 {
                e2.send(ctx, 1);
            }
            m2.unlock(ctx);
        });
        let _s = ctx.frame("Shutdown");
        mu.lock(ctx);
        ctx.write(&closed, 1);
        mu.unlock(ctx);
        let _ = events.try_recv(ctx);
    })
}

fn forgotten_wait_racy() -> Program {
    Program::new("waitgroup_forgotten_wait", |ctx| {
        let _f = ctx.frame("WaitGrpExample");
        let wg = ctx.waitgroup("wg");
        let summary = ctx.cell("summary", 0i64);
        wg.add(ctx, 1);
        let (wg2, s2) = (wg.clone(), summary.clone());
        ctx.go("processItem", move |ctx| {
            let _f = ctx.frame("processItem");
            ctx.write(&s2, 42); // ◀
            wg2.done(ctx);
        });
        let _ = ctx.read(&summary); // ▶ read BEFORE the wait
        wg.wait(ctx); // ✗ too late
    })
}

fn forgotten_wait_fixed() -> Program {
    Program::new("wait_before_read_fixed", |ctx| {
        let _f = ctx.frame("WaitGrpExample");
        let wg = ctx.waitgroup("wg");
        let summary = ctx.cell("summary", 0i64);
        wg.add(ctx, 1);
        let (wg2, s2) = (wg.clone(), summary.clone());
        ctx.go("processItem", move |ctx| {
            let _f = ctx.frame("processItem");
            ctx.write(&s2, 42);
            wg2.done(ctx);
        });
        wg.wait(ctx); // ✓ wait first
        assert_eq!(ctx.read(&summary), 42);
    })
}

fn subtest_map_racy() -> Program {
    Program::new("parallel_subtests_shared_map", |ctx| {
        let _f = ctx.frame("TestMatrix");
        let results: GoMap<i64, i64> = GoMap::make(ctx, "testResults");
        for case in 0..3 {
            let results = results.clone();
            ctx.go("subtest", move |ctx| {
                let _f = ctx.frame("subtest.record");
                results.insert(ctx, case, 1); // ◀▶ shared fixture map
            });
        }
        ctx.sleep(4);
    })
}

fn subtest_map_fixed() -> Program {
    Program::new("parallel_subtests_map_fixed", |ctx| {
        let _f = ctx.frame("TestMatrix");
        let results: GoMap<i64, i64> = GoMap::make(ctx, "testResults");
        let mu = ctx.mutex("fixture.mu");
        let wg = ctx.waitgroup("wg");
        for case in 0..3 {
            wg.add(ctx, 1);
            let (results, mu, wg) = (results.clone(), mu.clone(), wg.clone());
            ctx.go("subtest", move |ctx| {
                let _f = ctx.frame("subtest.record");
                mu.lock(ctx);
                results.insert(ctx, case, 1);
                mu.unlock(ctx);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
    })
}

fn double_checked_racy() -> Program {
    Program::new("double_checked_locking", |ctx| {
        let _f = ctx.frame("GetInstance");
        let instance = ctx.cell("instance", 0i64);
        let mu = ctx.mutex("initMu");
        for _ in 0..2 {
            let (instance, mu) = (instance.clone(), mu.clone());
            ctx.go("getter", move |ctx| {
                let _f = ctx.frame("getInstance");
                // if instance == nil {           ◀ unlocked first check
                if ctx.read(&instance) == 0 {
                    mu.lock(ctx);
                    if ctx.read(&instance) == 0 {
                        ctx.write(&instance, 99); // ▶ write under lock
                    }
                    mu.unlock(ctx);
                }
                let _ = ctx.read(&instance);
            });
        }
        ctx.sleep(6);
    })
}

fn double_checked_fixed() -> Program {
    Program::new("once_init_fixed", |ctx| {
        let _f = ctx.frame("GetInstance");
        let instance = ctx.cell("instance", 0i64);
        let once = ctx.once("initOnce");
        let wg = ctx.waitgroup("wg");
        for _ in 0..2 {
            wg.add(ctx, 1);
            let (instance, once, wg) = (instance.clone(), once.clone(), wg.clone());
            ctx.go("getter", move |ctx| {
                let _f = ctx.frame("getInstance");
                once.do_once(ctx, |ctx| ctx.write(&instance, 99));
                let _ = ctx.read(&instance);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
    })
}

fn single_writer_racy() -> Program {
    Program::new("single_writer_many_readers", |ctx| {
        let _f = ctx.frame("ConfigWatcher");
        let snapshot = ctx.cell("config.snapshot", 1i64);
        let s2 = snapshot.clone();
        ctx.go("refresher", move |ctx| {
            let _f = ctx.frame("refresh");
            for v in 2..5 {
                ctx.write(&s2, v); // ▶ periodic rewrite, no lock
                ctx.sleep(1);
            }
        });
        for _ in 0..3 {
            let s = snapshot.clone();
            ctx.go("handler", move |ctx| {
                let _f = ctx.frame("handle");
                let _ = ctx.read(&s); // ◀ unguarded read
            });
        }
        ctx.sleep(6);
    })
}

fn single_writer_fixed() -> Program {
    Program::new("single_writer_rwlock_fixed", |ctx| {
        let _f = ctx.frame("ConfigWatcher");
        let snapshot = ctx.cell("config.snapshot", 1i64);
        let rw = ctx.rwmutex("config.rw");
        let wg = ctx.waitgroup("wg");
        wg.add(ctx, 1);
        let (s2, rw2, wg2) = (snapshot.clone(), rw.clone(), wg.clone());
        ctx.go("refresher", move |ctx| {
            let _f = ctx.frame("refresh");
            for v in 2..5 {
                rw2.lock(ctx);
                ctx.write(&s2, v);
                rw2.unlock(ctx);
            }
            wg2.done(ctx);
        });
        for _ in 0..3 {
            wg.add(ctx, 1);
            let (s, rw, wg) = (snapshot.clone(), rw.clone(), wg.clone());
            ctx.go("handler", move |ctx| {
                let _f = ctx.frame("handle");
                rw.rlock(ctx);
                let _ = ctx.read(&s);
                rw.runlock(ctx);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
    })
}

fn cas_plain_read_racy() -> Program {
    Program::new("cas_with_plain_read", |ctx| {
        let _f = ctx.frame("IDAllocator");
        let next = ctx.atomic("nextID", 0);
        let n2 = next.clone();
        ctx.go("allocator", move |ctx| {
            let _f = ctx.frame("alloc");
            loop {
                let cur = n2.load(ctx);
                if n2.compare_and_swap(ctx, cur, cur + 1) {
                    break;
                }
            }
        });
        let _p = ctx.frame("peek");
        let _ = next.load_plain(ctx); // ◀▶ plain read vs atomic CAS
    })
}

fn cas_plain_read_fixed() -> Program {
    Program::new("cas_all_atomic_fixed", |ctx| {
        let _f = ctx.frame("IDAllocator");
        let next = ctx.atomic("nextID", 0);
        let n2 = next.clone();
        ctx.go("allocator", move |ctx| {
            let _f = ctx.frame("alloc");
            loop {
                let cur = n2.load(ctx);
                if n2.compare_and_swap(ctx, cur, cur + 1) {
                    break;
                }
            }
        });
        let _p = ctx.frame("peek");
        let _ = next.load(ctx); // ✓ atomic read
    })
}
