//! Executable reproductions of the data-race patterns of
//! *"A Study of Real-World Data Races in Golang"* (PLDI 2022), §4.
//!
//! The paper's artifact (Zenodo record 6330164) is a corpus of minimized Go
//! programs, one per pattern. This crate is the equivalent corpus for the
//! `grs-runtime` substrate: every listing of §4 — plus the language-agnostic
//! shapes of Table 3 — is a [`Pattern`] with
//!
//! * a **racy** program faithful to the listing's structure (function names
//!   appear as logical stack frames, so race reports read like the paper's),
//! * a **fixed** program applying the fix the study's developers applied,
//! * metadata tying it to the paper's observation number, listing number,
//!   and Table 2 / Table 3 category.
//!
//! The integration suite asserts, for every pattern, that the explorer
//! detects the racy variant and never flags the fixed one.
//!
//! # Example
//!
//! ```
//! use grs_detector::{ExploreConfig, Explorer};
//! use grs_patterns::{registry, Category};
//!
//! let patterns = registry();
//! assert!(patterns.len() >= 20);
//! let listing1 = patterns
//!     .iter()
//!     .find(|p| p.listing == Some(1))
//!     .expect("Listing 1 is in the corpus");
//! assert_eq!(listing1.category, Category::LoopIndexCapture);
//! let result = Explorer::new(ExploreConfig::quick()).explore(&listing1.racy_program());
//! assert!(result.found_race());
//! ```

pub mod byvalue;
pub mod capture;
pub mod extra;
pub mod gosrc;
pub mod interproc;
pub mod locking;
pub mod mapslice;
pub mod misc;
pub mod mixed;
pub mod paratest;
pub mod waitgroup;

use grs_runtime::Program;

/// Which of the paper's two summary tables a category belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Table {
    /// Table 2: races tied to Go language features and idioms.
    GoFeature,
    /// Table 3: language-agnostic races.
    LanguageAgnostic,
}

/// Root-cause category, matching the rows of Tables 2 and 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Capture-by-reference of a loop range variable (Obs. 3, Listing 1).
    LoopIndexCapture,
    /// Capture-by-reference of the idiomatic `err` variable (Obs. 3,
    /// Listing 2).
    ErrCapture,
    /// Capture of a named return variable (Obs. 3, Listings 3–4).
    NamedReturnCapture,
    /// Concurrent slice access (Obs. 4, Listing 5).
    SliceConcurrent,
    /// Concurrent map access (Obs. 5, Listing 6).
    MapConcurrent,
    /// Pass-by-value vs pass-by-reference confusion (Obs. 6, Listings 7–8).
    PassByValue,
    /// Mixing message passing with shared memory (Obs. 7, Listing 9).
    MessagePassingShm,
    /// Missing or incorrect group synchronization (Obs. 8, Listing 10).
    GroupSync,
    /// Parallel table-driven test suites (Obs. 9).
    ParallelTest,
    /// Missing or partial locking (Obs. 10).
    MissingLock,
    /// Mutating shared state under a reader lock (Obs. 10, Listing 11).
    RLockWrite,
    /// A nominally thread-safe API violating its contract.
    ContractViolation,
    /// Unsynchronized mutation of a global variable.
    GlobalVar,
    /// Missing or partial use of `sync/atomic`.
    AtomicMisuse,
    /// Incorrect order of statements around goroutine creation.
    StatementOrder,
    /// Complex multi-component interaction.
    ComplexInteraction,
    /// Racy metrics / logging.
    MetricsLogging,
    /// Root cause unknown; fixed by removing the concurrency.
    RemovedConcurrency,
    /// Root cause unknown; "fixed" by disabling the test.
    DisabledTests,
    /// Root cause unknown; fixed by a major refactor.
    MajorRefactor,
}

impl Category {
    /// All categories, Table 2 rows first.
    #[must_use]
    pub fn all() -> &'static [Category] {
        use Category::*;
        &[
            ErrCapture,
            LoopIndexCapture,
            NamedReturnCapture,
            SliceConcurrent,
            MapConcurrent,
            PassByValue,
            MessagePassingShm,
            GroupSync,
            ParallelTest,
            MissingLock,
            RLockWrite,
            ContractViolation,
            GlobalVar,
            AtomicMisuse,
            StatementOrder,
            ComplexInteraction,
            MetricsLogging,
            RemovedConcurrency,
            DisabledTests,
            MajorRefactor,
        ]
    }

    /// Which summary table the category appears in.
    #[must_use]
    pub fn table(self) -> Table {
        use Category::*;
        match self {
            ErrCapture | LoopIndexCapture | NamedReturnCapture | SliceConcurrent
            | MapConcurrent | PassByValue | MessagePassingShm | GroupSync | ParallelTest => {
                Table::GoFeature
            }
            _ => Table::LanguageAgnostic,
        }
    }

    /// The count of fixed races the paper attributes to this category.
    ///
    /// `None` for the err-capture row, whose count is not legible in our
    /// copy of the paper (the Table 2 cell is blank in the source text); the
    /// experiment harness excludes that row from quantitative comparison and
    /// says so in `EXPERIMENTS.md`.
    #[must_use]
    pub fn paper_count(self) -> Option<u32> {
        use Category::*;
        match self {
            ErrCapture => None,
            LoopIndexCapture => Some(48),
            NamedReturnCapture => Some(4),
            SliceConcurrent => Some(391),
            MapConcurrent => Some(38),
            PassByValue => Some(38),
            MessagePassingShm => Some(25),
            GroupSync => Some(24),
            ParallelTest => Some(139),
            MissingLock => Some(470),
            RLockWrite => Some(2),
            ContractViolation => Some(369),
            GlobalVar => Some(24),
            AtomicMisuse => Some(40),
            StatementOrder => Some(5),
            ComplexInteraction => Some(6),
            MetricsLogging => Some(18),
            RemovedConcurrency => Some(26),
            DisabledTests => Some(3),
            MajorRefactor => Some(30),
        }
    }

    /// The paper's row label.
    #[must_use]
    pub fn description(self) -> &'static str {
        use Category::*;
        match self {
            ErrCapture => "Capture-by-reference of err variable",
            LoopIndexCapture => "Capture-by-reference of loop range variable",
            NamedReturnCapture => "Capture of a named return",
            SliceConcurrent => "Concurrent slice access",
            MapConcurrent => "Concurrent map access",
            PassByValue => "Confusing pass-by-value vs pass-by-reference",
            MessagePassingShm => "Mixing message passing with shared memory",
            GroupSync => "Missing or incorrect use of group synchronization",
            ParallelTest => "Parallel test suite (table-driven testing)",
            MissingLock => "Missing or partial locking",
            RLockWrite => "Mutating inside a reader-only lock",
            ContractViolation => "Thread-safe APIs violating contract",
            GlobalVar => "Mutating a global variable",
            AtomicMisuse => "Missing or incorrect use of atomic ops",
            StatementOrder => "Incorrect order of statements",
            ComplexInteraction => "Complex multi-component interaction",
            MetricsLogging => "Racy metrics / logging",
            RemovedConcurrency => "Fixed by removing concurrency",
            DisabledTests => "Fixed by disabling tests",
            MajorRefactor => "Fixed by a major refactor",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.description())
    }
}

/// One pattern of the corpus: metadata plus program constructors.
#[derive(Debug, Clone, Copy)]
pub struct Pattern {
    /// Stable identifier, e.g. `"loop_index_capture"`.
    pub id: &'static str,
    /// The paper listing this reproduces, when there is one.
    pub listing: Option<u8>,
    /// The paper observation number (3–10).
    pub observation: u8,
    /// Root-cause category (Table 2/3 row).
    pub category: Category,
    /// One-line description of the bug shape.
    pub description: &'static str,
    pub(crate) racy: fn() -> Program,
    pub(crate) fixed: fn() -> Program,
}

impl Pattern {
    /// Constructs the racy variant (fresh program each call).
    #[must_use]
    pub fn racy_program(&self) -> Program {
        (self.racy)()
    }

    /// Constructs the fixed (race-free) variant.
    #[must_use]
    pub fn fixed_program(&self) -> Program {
        (self.fixed)()
    }
}

/// The full pattern corpus, in paper order.
#[must_use]
pub fn registry() -> Vec<Pattern> {
    let mut v = Vec::new();
    v.extend(capture::patterns());
    v.extend(mapslice::patterns());
    v.extend(byvalue::patterns());
    v.extend(mixed::patterns());
    v.extend(waitgroup::patterns());
    v.extend(paratest::patterns());
    v.extend(locking::patterns());
    v.extend(interproc::patterns());
    v.extend(misc::patterns());
    v.extend(extra::patterns());
    v
}

/// Looks a pattern up by id.
#[must_use]
pub fn find(id: &str) -> Option<Pattern> {
    registry().into_iter().find(|p| p.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let pats = registry();
        let mut ids: Vec<_> = pats.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), pats.len(), "duplicate pattern ids");
    }

    #[test]
    fn every_listing_is_covered() {
        let pats = registry();
        for listing in 1..=11u8 {
            if listing == 8 {
                continue; // Listing 8 is the sync.Mutex signature, not a bug
            }
            assert!(
                pats.iter().any(|p| p.listing == Some(listing)),
                "missing listing {listing}"
            );
        }
    }

    #[test]
    fn categories_cover_both_tables() {
        let pats = registry();
        let go_feature = pats
            .iter()
            .filter(|p| p.category.table() == Table::GoFeature);
        let agnostic = pats
            .iter()
            .filter(|p| p.category.table() == Table::LanguageAgnostic);
        assert!(go_feature.count() >= 9);
        assert!(agnostic.count() >= 8);
    }

    #[test]
    fn paper_counts_match_the_tables() {
        assert_eq!(Category::SliceConcurrent.paper_count(), Some(391));
        assert_eq!(Category::MissingLock.paper_count(), Some(470));
        assert_eq!(Category::ErrCapture.paper_count(), None);
        let table3_total: u32 = Category::all()
            .iter()
            .filter(|c| c.table() == Table::LanguageAgnostic)
            .filter_map(|c| c.paper_count())
            .sum();
        assert_eq!(
            table3_total,
            470 + 2 + 369 + 24 + 40 + 5 + 6 + 18 + 26 + 3 + 30
        );
    }

    #[test]
    fn find_locates_patterns() {
        assert!(find("loop_index_capture").is_some());
        assert!(find("nonexistent_pattern").is_none());
    }

    #[test]
    fn all_programs_construct() {
        for p in registry() {
            let racy = p.racy_program();
            let fixed = p.fixed_program();
            assert!(!racy.name().is_empty());
            assert!(!fixed.name().is_empty());
        }
    }
}
