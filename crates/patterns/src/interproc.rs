//! Cross-function variants of the §4 bugs: the race is invisible inside
//! any single function and only appears once calls are followed.
//!
//! These are the executable twins of the `GR013`–`GR018` renditions in
//! [`gosrc`](crate::gosrc): a lock hidden in a helper, caller-side locks
//! that never agree, a closure escaping into a spawning helper, a lock
//! released before the call that needed it, a map handed to a callee that
//! fills it concurrently, and a recursive accessor launched as a
//! goroutine. Logical frames reproduce the call chains, so race reports
//! show the interprocedural path the static engine must reconstruct.

use grs_runtime::Program;

use crate::{Category, Pattern};

/// The interprocedural patterns.
#[must_use]
pub fn patterns() -> Vec<Pattern> {
    vec![
        Pattern {
            id: "helper_hidden_lock",
            listing: None,
            observation: 10,
            category: Category::MissingLock,
            description: "the lock lives in the caller; a reader calling \
                          the same helper-updated state skips it",
            racy: helper_hidden_lock_racy,
            fixed: helper_hidden_lock_fixed,
        },
        Pattern {
            id: "caller_side_locks",
            listing: None,
            observation: 10,
            category: Category::MissingLock,
            description: "two callers guard the same helper-updated state \
                          with different mutexes",
            racy: caller_side_locks_racy,
            fixed: caller_side_locks_fixed,
        },
        Pattern {
            id: "closure_to_worker",
            listing: None,
            observation: 3,
            category: Category::LoopIndexCapture,
            description: "loop-variable closure handed to a helper that \
                          launches it as a goroutine",
            racy: closure_to_worker_racy,
            fixed: closure_to_worker_fixed,
        },
        Pattern {
            id: "lock_dropped_before_call",
            listing: None,
            observation: 10,
            category: Category::MissingLock,
            description: "mutex released before a call whose body still \
                          reads the protected state",
            racy: lock_dropped_before_call_racy,
            fixed: lock_dropped_before_call_fixed,
        },
        Pattern {
            id: "spawn_in_callee_map_write",
            listing: None,
            observation: 5,
            category: Category::MapConcurrent,
            description: "map passed to a callee that fills it from \
                          goroutines spawned there",
            racy: spawn_in_callee_map_write_racy,
            fixed: spawn_in_callee_map_write_fixed,
        },
        Pattern {
            id: "recursive_accessor",
            listing: None,
            observation: 10,
            category: Category::GlobalVar,
            description: "recursive global updater launched as a goroutine, \
                          read by the parent with no join",
            racy: recursive_accessor_racy,
            fixed: recursive_accessor_fixed,
        },
    ]
}

/// `Incr` locks around `bump`, which does the write; `Read` never learned
/// the variable has a lock.
fn helper_hidden_lock_racy() -> Program {
    Program::new("helper_hidden_lock", |ctx| {
        let _f = ctx.frame("Counter");
        let mu = ctx.mutex("mu");
        let count = ctx.cell("count", 0i64);
        let (mu2, c2) = (mu.clone(), count.clone());
        ctx.go("incr", move |ctx| {
            let _f = ctx.frame("Incr");
            mu2.lock(ctx);
            {
                let _f = ctx.frame("bump");
                ctx.update(&c2, |v| v + 1); // ◀ guarded — but only via Incr
            }
            mu2.unlock(ctx);
        });
        let _f2 = ctx.frame("Read");
        let _ = ctx.read(&count); // ▶ bare: the lock is hidden in the caller
        let _ = mu;
    })
}

fn helper_hidden_lock_fixed() -> Program {
    Program::new("helper_hidden_lock_fixed", |ctx| {
        let _f = ctx.frame("Counter");
        let mu = ctx.mutex("mu");
        let count = ctx.cell("count", 0i64);
        let (mu2, c2) = (mu.clone(), count.clone());
        ctx.go("incr", move |ctx| {
            let _f = ctx.frame("Incr");
            mu2.lock(ctx);
            {
                let _f = ctx.frame("bump");
                ctx.update(&c2, |v| v + 1);
            }
            mu2.unlock(ctx);
        });
        let _f2 = ctx.frame("Read");
        mu.lock(ctx);
        let _ = ctx.read(&count);
        mu.unlock(ctx);
    })
}

/// Both callers lock before calling `bump` — with different mutexes, so
/// the helper's critical sections overlap freely.
fn caller_side_locks_racy() -> Program {
    Program::new("caller_side_locks", |ctx| {
        let _f = ctx.frame("Tally");
        let mu_a = ctx.mutex("muA");
        let mu_b = ctx.mutex("muB");
        let total = ctx.cell("total", 0i64);
        let (m, t) = (mu_a.clone(), total.clone());
        ctx.go("addA", move |ctx| {
            let _f = ctx.frame("AddA");
            m.lock(ctx);
            {
                let _f = ctx.frame("bump");
                ctx.update(&t, |v| v + 1); // ◀ under muA
            }
            m.unlock(ctx);
        });
        let _f2 = ctx.frame("AddB");
        mu_b.lock(ctx);
        {
            let _f = ctx.frame("bump");
            ctx.update(&total, |v| v + 2); // ▶ under muB — disjoint
        }
        mu_b.unlock(ctx);
    })
}

fn caller_side_locks_fixed() -> Program {
    Program::new("caller_side_locks_fixed", |ctx| {
        let _f = ctx.frame("Tally");
        let mu = ctx.mutex("mu");
        let total = ctx.cell("total", 0i64);
        let (m, t) = (mu.clone(), total.clone());
        ctx.go("addA", move |ctx| {
            let _f = ctx.frame("AddA");
            m.lock(ctx);
            {
                let _f = ctx.frame("bump");
                ctx.update(&t, |v| v + 1);
            }
            m.unlock(ctx);
        });
        let _f2 = ctx.frame("AddB");
        mu.lock(ctx);
        {
            let _f = ctx.frame("bump");
            ctx.update(&total, |v| v + 2);
        }
        mu.unlock(ctx);
    })
}

/// The closure capturing `job` is not `go`'d here — it escapes into
/// `spawnWorker`, which launches it while the loop advances the variable.
fn closure_to_worker_racy() -> Program {
    Program::new("closure_to_worker", |ctx| {
        let _f = ctx.frame("ProcessAll");
        let job = ctx.cell("job", 0i64);
        for i in 0..3 {
            ctx.write(&job, i); // ◀ the loop advances the shared variable
            let job = job.clone();
            // The helper frame reproduces `spawnWorker(fn)` → `go fn()`.
            let _h = ctx.frame("spawnWorker");
            ctx.go("worker", move |ctx| {
                let _f = ctx.frame("fn");
                let _ = ctx.read(&job); // ▶ reads whatever iteration is current
            });
        }
        ctx.sleep(4);
    })
}

fn closure_to_worker_fixed() -> Program {
    Program::new("closure_to_worker_fixed", |ctx| {
        let _f = ctx.frame("ProcessAll");
        for i in 0..3 {
            // `job := job`: a fresh per-iteration variable.
            let job = ctx.cell("job", i);
            let _h = ctx.frame("spawnWorker");
            ctx.go("worker", move |ctx| {
                let _f = ctx.frame("fn");
                let _ = ctx.read(&job);
            });
        }
        ctx.sleep(4);
    })
}

/// The critical section ends before `notify()` runs, so the call's read
/// of the protected state is bare.
fn lock_dropped_before_call_racy() -> Program {
    Program::new("lock_dropped_before_call", |ctx| {
        let _f = ctx.frame("Notifier");
        let mu = ctx.mutex("mu");
        let state = ctx.cell("state", 0i64);
        let (mu2, s2) = (mu.clone(), state.clone());
        ctx.go("updater", move |ctx| {
            let _f = ctx.frame("Update");
            mu2.lock(ctx);
            ctx.write(&s2, 1);
            mu2.unlock(ctx); // ✗ released here...
            let _f2 = ctx.frame("notify");
            let _ = ctx.read(&s2); // ▶ ...but the call still reads state
        });
        let _f3 = ctx.frame("Update");
        mu.lock(ctx);
        ctx.write(&state, 2); // ◀ guarded writer
        mu.unlock(ctx);
    })
}

fn lock_dropped_before_call_fixed() -> Program {
    Program::new("lock_dropped_before_call_fixed", |ctx| {
        let _f = ctx.frame("Notifier");
        let mu = ctx.mutex("mu");
        let state = ctx.cell("state", 0i64);
        let (mu2, s2) = (mu.clone(), state.clone());
        ctx.go("updater", move |ctx| {
            let _f = ctx.frame("Update");
            mu2.lock(ctx);
            ctx.write(&s2, 1);
            {
                let _f2 = ctx.frame("notify");
                let _ = ctx.read(&s2); // ✓ still inside the critical section
            }
            mu2.unlock(ctx);
        });
        let _f3 = ctx.frame("Update");
        mu.lock(ctx);
        ctx.write(&state, 2);
        mu.unlock(ctx);
    })
}

/// `Warm` hands its map to `fill`, which launches one `put` goroutine per
/// key: the map's buckets are written concurrently.
fn spawn_in_callee_map_write_racy() -> Program {
    Program::new("spawn_in_callee_map_write", |ctx| {
        let _f = ctx.frame("Warm");
        let buckets = ctx.cell("cache.buckets", 0i64);
        {
            let _h = ctx.frame("fill");
            for _ in 0..2 {
                let b = buckets.clone();
                ctx.go("put", move |ctx| {
                    let _f = ctx.frame("put");
                    ctx.update(&b, |v| v + 1); // ◀▶ concurrent map write
                });
            }
        }
        ctx.sleep(4);
        let _ = ctx.read(&buckets);
    })
}

fn spawn_in_callee_map_write_fixed() -> Program {
    Program::new("spawn_in_callee_map_write_fixed", |ctx| {
        let _f = ctx.frame("Warm");
        let buckets = ctx.cell("cache.buckets", 0i64);
        {
            let _h = ctx.frame("fill");
            for _ in 0..2 {
                let _f = ctx.frame("put");
                ctx.update(&buckets, |v| v + 1); // ✓ serial fill
            }
        }
        let _ = ctx.read(&buckets);
    })
}

/// A recursive updater of a global launched with `go`; the parent reads
/// the global with no join in between.
fn recursive_accessor_racy() -> Program {
    Program::new("recursive_accessor", |ctx| {
        let _f = ctx.frame("Run");
        let total = ctx.cell("total", 0i64);
        let t = total.clone();
        ctx.go("summer", move |ctx| {
            for _ in 0..3 {
                let _f = ctx.frame("sum");
                ctx.update(&t, |v| v + 1); // ◀ recursive writes
            }
        });
        let _f2 = ctx.frame("report");
        let _ = ctx.read(&total); // ▶ no join before the read
    })
}

fn recursive_accessor_fixed() -> Program {
    Program::new("recursive_accessor_fixed", |ctx| {
        let _f = ctx.frame("Run");
        let total = ctx.cell("total", 0i64);
        let wg = ctx.waitgroup("wg");
        wg.add(ctx, 1);
        let (t, wg2) = (total.clone(), wg.clone());
        ctx.go("summer", move |ctx| {
            for _ in 0..3 {
                let _f = ctx.frame("sum");
                ctx.update(&t, |v| v + 1);
            }
            wg2.done(ctx);
        });
        wg.wait(ctx); // ✓ the join orders the writes before the read
        let _f2 = ctx.frame("report");
        let _ = ctx.read(&total);
    })
}
