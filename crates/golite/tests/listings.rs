//! The paper's listings, written as Go source, parsed by Go-lite, and
//! checked against the static lints: each lint fires on its listing and
//! stays quiet on the fixed variant.

use grs_golite::{lint_file, parse_file, scan_file, Rule};

fn rules(src: &str) -> Vec<Rule> {
    let file = parse_file(src).unwrap_or_else(|e| panic!("parse error: {e}\n{src}"));
    lint_file(&file).into_iter().map(|f| f.rule).collect()
}

#[test]
fn listing1_loop_index_capture() {
    let src = r#"
package p

func ProcessJobs(jobs []Job) {
    for _, job := range jobs {
        go func() {
            ProcessJob(job)
        }()
    }
}
"#;
    assert!(rules(src).contains(&Rule::LoopVarCapture));

    // The privatizing idiom `}(job)`:
    let fixed = r#"
package p

func ProcessJobs(jobs []Job) {
    for _, job := range jobs {
        go func(job Job) {
            ProcessJob(job)
        }(job)
    }
}
"#;
    assert!(!rules(fixed).contains(&Rule::LoopVarCapture));
}

#[test]
fn listing2_err_capture() {
    let src = r#"
package p

func Handle() {
    x, err := Foo()
    if err != nil {
        return
    }
    go func() {
        _, err = Bar(x)
        if err != nil {
            log(err)
        }
    }()
    y, err := Baz()
    use(y, err)
}
"#;
    assert!(rules(src).contains(&Rule::ErrCapture));

    let fixed = r#"
package p

func Handle() {
    x, err := Foo()
    if err != nil {
        return
    }
    go func() {
        _, err2 := Bar(x)
        if err2 != nil {
            log(err2)
        }
    }()
    y, err := Baz()
    use(y, err)
}
"#;
    assert!(!rules(fixed).contains(&Rule::ErrCapture));
}

#[test]
fn listing3_named_return_capture() {
    let src = r#"
package p

func NamedReturnCallee() (result int) {
    result = 10
    if something() {
        return
    }
    go func() {
        use(result)
    }()
    return 20
}
"#;
    assert!(rules(src).contains(&Rule::NamedReturnCapture));

    let fixed = r#"
package p

func Callee() int {
    result := 10
    snapshot := result
    go func(r int) {
        use(r)
    }(snapshot)
    return 20
}
"#;
    assert!(!rules(fixed).contains(&Rule::NamedReturnCapture));
}

#[test]
fn listing4_named_return_with_defer() {
    let src = r#"
package p

func Redeem(request Entity) (resp Response, err error) {
    defer func() {
        resp, err = Foo(request, err)
    }()
    err = CheckRequest(request)
    go func() {
        ProcessRequest(request, err != nil)
    }()
    return
}
"#;
    assert!(rules(src).contains(&Rule::NamedReturnCapture));
}

#[test]
fn listing5_parses_safe_append() {
    // Listing 5's bug is a dynamic aliasing subtlety outside a syntactic
    // lint's reach; what matters here is that the idiomatic code parses and
    // scans correctly.
    let src = r#"
package p

func ProcessAll(uuids []string) {
    var myResults []string
    var mutex sync.Mutex
    safeAppend := func(res string) {
        mutex.Lock()
        myResults = append(myResults, res)
        mutex.Unlock()
    }
    for _, uuid := range uuids {
        go func(id string, results []string) {
            res := Foo(id)
            safeAppend(res)
        }(uuid, myResults)
    }
}
"#;
    let file = parse_file(src).expect("parses");
    let counts = scan_file(&file);
    assert_eq!(counts.go_statements, 1);
    assert_eq!(counts.lock_calls, 1);
    assert_eq!(counts.unlock_calls, 1);
    assert_eq!(counts.mutex_decls, 1);
    assert_eq!(counts.func_lits, 2);
}

#[test]
fn listing6_concurrent_map_write() {
    let src = r#"
package p

func processOrders(uuids []string) error {
    errMap := make(map[string]error)
    for _, uuid := range uuids {
        go func(uuid string) {
            err := GetOrder(uuid)
            if err != nil {
                errMap[uuid] = err
            }
        }(uuid)
    }
    return combineErrors(errMap)
}
"#;
    assert!(rules(src).contains(&Rule::MapWriteInGoroutine));

    let fixed = r#"
package p

func processOrders(uuids []string) error {
    errMap := make(map[string]error)
    var mu sync.Mutex
    for _, uuid := range uuids {
        go func(uuid string) {
            err := GetOrder(uuid)
            if err != nil {
                mu.Lock()
                local := err
                record(local)
                mu.Unlock()
            }
        }(uuid)
    }
    return combineErrors(errMap)
}
"#;
    assert!(!rules(fixed).contains(&Rule::MapWriteInGoroutine));
}

#[test]
fn listing7_mutex_by_value() {
    let src = r#"
package p

func CriticalSection(m sync.Mutex) {
    m.Lock()
    a = a + 1
    m.Unlock()
}

func main() {
    var mutex sync.Mutex
    go CriticalSection(mutex)
    go CriticalSection(mutex)
}
"#;
    assert!(rules(src).contains(&Rule::MutexByValue));

    let fixed = r#"
package p

func CriticalSection(m *sync.Mutex) {
    m.Lock()
    a = a + 1
    m.Unlock()
}

func main() {
    var mutex sync.Mutex
    go CriticalSection(&mutex)
    go CriticalSection(&mutex)
}
"#;
    assert!(!rules(fixed).contains(&Rule::MutexByValue));
}

#[test]
fn listing9_future_parses() {
    // Listing 9's select/channel structure; the race is dynamic, but the
    // parser must handle the full shape (methods, select, context).
    let src = r#"
package p

func (f *Future) Start() {
    go func() {
        resp, err := f.f()
        f.response = resp
        f.err = err
        f.ch <- 1
    }()
}

func (f *Future) Wait(ctx context.Context) error {
    select {
    case <-f.ch:
        return nil
    case <-ctx.Done():
        f.err = ErrCancelled
        return ErrCancelled
    }
}
"#;
    let file = parse_file(src).expect("parses");
    let counts = scan_file(&file);
    assert_eq!(counts.go_statements, 1);
    assert_eq!(counts.select_stmts, 1);
    assert_eq!(counts.chan_sends, 1);
    assert_eq!(counts.chan_recvs, 2);
}

#[test]
fn listing10_waitgroup_add_inside() {
    let src = r#"
package p

func WaitGrpExample(itemIds []int) int {
    var wg sync.WaitGroup
    results := make([]int, len(itemIds))
    for i, id := range itemIds {
        go func(i int, id int) {
            wg.Add(1)
            defer wg.Done()
            results[i] = process(id)
        }(i, id)
    }
    wg.Wait()
    sum := 0
    for _, r := range results {
        sum = sum + r
    }
    return sum
}
"#;
    assert!(rules(src).contains(&Rule::WaitGroupAddInGoroutine));

    let fixed = r#"
package p

func WaitGrpExample(itemIds []int) int {
    var wg sync.WaitGroup
    results := make([]int, len(itemIds))
    for i, id := range itemIds {
        wg.Add(1)
        go func(i int, id int) {
            defer wg.Done()
            results[i] = process(id)
        }(i, id)
    }
    wg.Wait()
    sum := 0
    for _, r := range results {
        sum = sum + r
    }
    return sum
}
"#;
    assert!(!rules(fixed).contains(&Rule::WaitGroupAddInGoroutine));
}

#[test]
fn listing11_write_under_rlock() {
    let src = r#"
package p

func (g *HealthGate) updateGate() {
    g.mutex.RLock()
    defer g.mutex.RUnlock()
    if ready() {
        g.ready = true
        g.gate.Accept()
    }
}
"#;
    assert!(rules(src).contains(&Rule::WriteUnderRLock));

    let fixed = r#"
package p

func (g *HealthGate) updateGate() {
    g.mutex.Lock()
    defer g.mutex.Unlock()
    if ready() {
        g.ready = true
        g.gate.Accept()
    }
}
"#;
    assert!(!rules(fixed).contains(&Rule::WriteUnderRLock));
}

#[test]
fn sequential_rlock_runlock_scopes_the_section() {
    let src = r#"
package p

func (s *Store) snapshot() int {
    s.mu.RLock()
    v := s.count
    s.mu.RUnlock()
    s.count = v + 1
    return v
}
"#;
    // The write happens AFTER RUnlock: no finding.
    assert!(!rules(src).contains(&Rule::WriteUnderRLock));

    let bad = r#"
package p

func (s *Store) snapshot() int {
    s.mu.RLock()
    v := s.count
    s.count = v + 1
    s.mu.RUnlock()
    return v
}
"#;
    assert!(rules(bad).contains(&Rule::WriteUnderRLock));
}

#[test]
fn shadowing_is_scope_aware() {
    // The pre-Go-1.22 fix idiom: a per-iteration copy BEFORE the `go`
    // statement shadows the loop variable, so the closure captures the
    // private copy. The old free-variable scan flagged this fixed code.
    let fixed_shadow = r#"
package p

func ProcessJobs(jobs []Job) {
    for _, job := range jobs {
        job := job
        go func() {
            ProcessJob(job)
        }()
    }
}
"#;
    assert!(!rules(fixed_shadow).contains(&Rule::LoopVarCapture));

    // A shadow AFTER the use does not protect it: the use still resolves
    // to the loop variable, and the race is real.
    let racy_shadow = r#"
package p

func ProcessJobs(jobs []Job) {
    for _, job := range jobs {
        go func() {
            ProcessJob(job)
            job := Refresh()
            ProcessJob(job)
        }()
    }
}
"#;
    assert!(rules(racy_shadow).contains(&Rule::LoopVarCapture));

    // Same discipline for err: an inner `err :=` is a different variable.
    let fixed_err = r#"
package p

func Handle() {
    x, err := Foo()
    go func() {
        err := Bar(x)
        if err != nil {
            log(err)
        }
    }()
    use(err)
}
"#;
    assert!(!rules(fixed_err).contains(&Rule::ErrCapture));
}

#[test]
fn missing_lock_partial_locking() {
    // Table 3's biggest class: guarded at the writer, bare at the reader.
    let src = r#"
package p

var config int
var mu sync.Mutex

func SetConfig(v int) {
    mu.Lock()
    config = v
    mu.Unlock()
}

func GetConfig() int {
    return config
}
"#;
    assert!(rules(src).contains(&Rule::MissingLock));

    let fixed = r#"
package p

var config int
var mu sync.Mutex

func SetConfig(v int) {
    mu.Lock()
    config = v
    mu.Unlock()
}

func GetConfig() int {
    mu.Lock()
    v := config
    mu.Unlock()
    return v
}
"#;
    assert!(!rules(fixed).contains(&Rule::MissingLock));
}

#[test]
fn inconsistent_lock_disjoint_mutexes() {
    let src = r#"
package p

var hits int

func (s *Server) CountA() {
    s.muA.Lock()
    hits = hits + 1
    s.muA.Unlock()
}

func (s *Server) CountB() {
    s.muB.Lock()
    hits = hits + 1
    s.muB.Unlock()
}
"#;
    assert!(rules(src).contains(&Rule::InconsistentLock));

    let fixed = r#"
package p

var hits int

func (s *Server) CountA() {
    s.muA.Lock()
    hits = hits + 1
    s.muA.Unlock()
}

func (s *Server) CountB() {
    s.muA.Lock()
    hits = hits + 1
    s.muA.Unlock()
}
"#;
    assert!(!rules(fixed).contains(&Rule::InconsistentLock));
}

#[test]
fn atomic_mixed_with_plain_access() {
    let src = r#"
package p

var ops int64

func Work() {
    go func() {
        atomic.AddInt64(&ops, 1)
    }()
    if ops > 100 {
        report(ops)
    }
}
"#;
    assert!(rules(src).contains(&Rule::AtomicMixedWithPlain));

    let fixed = r#"
package p

var ops int64

func Work() {
    go func() {
        atomic.AddInt64(&ops, 1)
    }()
    if atomic.LoadInt64(&ops) > 100 {
        report()
    }
}
"#;
    assert!(!rules(fixed).contains(&Rule::AtomicMixedWithPlain));
}

#[test]
fn double_checked_locking_idiom() {
    let src = r#"
package p

var instance *Config
var mu sync.Mutex

func GetInstance() *Config {
    if instance == nil {
        mu.Lock()
        if instance == nil {
            instance = New()
        }
        mu.Unlock()
    }
    return instance
}
"#;
    let rs = rules(src);
    assert!(rs.contains(&Rule::DoubleCheckedLocking), "{rs:?}");

    let fixed = r#"
package p

var instance *Config
var mu sync.Mutex

func GetInstance() *Config {
    mu.Lock()
    defer mu.Unlock()
    if instance == nil {
        instance = New()
    }
    return instance
}
"#;
    assert!(!rules(fixed).contains(&Rule::DoubleCheckedLocking));
}

#[test]
fn statement_order_goroutine_before_init() {
    let src = r#"
package p

func NewPoller() {
    p := Poller{}
    go func() {
        poll(p.interval)
    }()
    p.interval = 30
}
"#;
    assert!(rules(src).contains(&Rule::GoroutineBeforeInit));

    let fixed = r#"
package p

func NewPoller() {
    p := Poller{}
    p.interval = 30
    go func() {
        poll(p.interval)
    }()
}
"#;
    assert!(!rules(fixed).contains(&Rule::GoroutineBeforeInit));
}
