//! Grammar-coverage tests for the Go-lite parser: every supported
//! construct, the classic ambiguities, and error diagnostics with
//! positions.

use grs_golite::ast::*;
use grs_golite::parser::{parse_expr, parse_file};

fn parse_ok(src: &str) -> File {
    parse_file(src).unwrap_or_else(|e| panic!("parse error: {e}\nsource:\n{src}"))
}

fn first_func(file: &File) -> &FuncDecl {
    file.decls
        .iter()
        .find_map(|d| match d {
            Decl::Func(f) => Some(f),
            _ => None,
        })
        .expect("a function")
}

#[test]
fn package_and_imports() {
    let f = parse_ok(
        r#"
package server

import "sync"
import ctx "context"
import (
    "fmt"
    "strings"
)
"#,
    );
    assert_eq!(f.package, "server");
    assert_eq!(f.imports, vec!["sync", "context", "fmt", "strings"]);
}

#[test]
fn declarations_all_forms() {
    let f = parse_ok(
        r#"
package p

var a int
var b, c string
var d = 5
var (
    e int
    g = "hi"
)
const limit = 10
type ID int
type pair struct {
    x, y int
    tag  string
}
type handler func(int) error
type reader interface {
    Read(p []byte) (int, error)
}
"#,
    );
    assert_eq!(f.decls.len(), 9);
    let struct_decl = f
        .decls
        .iter()
        .find_map(|d| match d {
            Decl::Type(t) if t.name == "pair" => Some(t),
            _ => None,
        })
        .expect("pair");
    let Type::Struct(fields) = &struct_decl.ty else {
        panic!("not a struct");
    };
    assert_eq!(fields.len(), 3, "x, y share a type; tag separate");
}

#[test]
fn signatures_and_receivers() {
    let f = parse_ok(
        r#"
package p

func plain() {}
func args(a int, b, c string, v ...int) {}
func results() (int, error) { return 0, nil }
func named() (n int, err error) { return }
func (s *Server) Method(x int) int { return x }
func (s Server) ValueMethod() {}
"#,
    );
    let funcs: Vec<&FuncDecl> = f
        .decls
        .iter()
        .filter_map(|d| match d {
            Decl::Func(fd) => Some(fd),
            _ => None,
        })
        .collect();
    assert_eq!(funcs.len(), 6);
    assert_eq!(funcs[1].sig.params.len(), 4);
    assert_eq!(funcs[1].sig.params[1].ty, funcs[1].sig.params[2].ty);
    assert!(matches!(funcs[1].sig.params[3].ty, Type::Slice(_)));
    assert_eq!(funcs[2].sig.results.len(), 2);
    assert!(funcs[3].sig.has_named_results());
    let m = funcs[4].receiver.as_ref().expect("receiver");
    assert!(matches!(m.ty, Type::Pointer(_)));
    assert!(matches!(
        funcs[5].receiver.as_ref().expect("value receiver").ty,
        Type::Name(_)
    ));
}

#[test]
fn types_all_forms() {
    let f = parse_ok(
        r#"
package p

var a *int
var b []string
var c [4]byte
var d [N]byte
var e map[string][]int
var f chan int
var g chan<- int
var h <-chan int
var i func(int, string) (bool, error)
var j sync.Mutex
"#,
    );
    let tys: Vec<&Type> = f
        .decls
        .iter()
        .filter_map(|d| match d {
            Decl::Var(v) => v.ty.as_ref(),
            _ => None,
        })
        .collect();
    assert!(matches!(tys[0], Type::Pointer(_)));
    assert!(matches!(tys[1], Type::Slice(_)));
    assert!(matches!(tys[2], Type::Array(s, _) if s == "4"));
    assert!(matches!(tys[3], Type::Array(s, _) if s == "N"));
    assert!(matches!(tys[4], Type::Map(_, _)));
    assert!(matches!(tys[5], Type::Chan(ChanDir::Both, _)));
    assert!(matches!(tys[6], Type::Chan(ChanDir::Send, _)));
    assert!(matches!(tys[7], Type::Chan(ChanDir::Recv, _)));
    assert!(matches!(tys[8], Type::Func(_)));
    assert!(matches!(tys[9], Type::Name(n) if n == "sync.Mutex"));
}

#[test]
fn statement_forms() {
    let f = parse_ok(
        r#"
package p

func f(ch chan int, m map[string]int) {
    x := 1
    x, y := 2, 3
    x = y
    x += y
    x++
    y--
    ch <- x
    v := <-ch
    go g(v)
    defer h()
    var local [2]int
    _ = local
    if x > 0 {
        x = 0
    } else if y > 0 {
        y = 0
    } else {
        x = 1
    }
    if err := try(); err != nil {
        return
    }
    for {
        break
    }
    for x < 10 {
        x++
    }
    for i := 0; i < 3; i++ {
        continue
    }
    for k, v := range m {
        _ = k
        _ = v
    }
    for range ch {
        break
    }
    switch x {
    case 1, 2:
        x = 0
    default:
        x = 9
    }
    switch {
    case x > 0:
    }
    select {
    case v := <-ch:
        _ = v
    case ch <- 1:
    default:
    }
    {
        scoped := 1
        _ = scoped
    }
    return
}
"#,
    );
    let body = first_func(&f).body.as_ref().expect("body");
    assert!(body.stmts.len() >= 20);
}

#[test]
fn expressions_and_precedence() {
    let e = parse_expr("1 + 2*3 - 4%3").expect("parses");
    // (1 + (2*3)) - (4%3)
    let Expr::Binary { op: "-", lhs, .. } = &e else {
        panic!("top is -: {e:?}");
    };
    assert!(matches!(**lhs, Expr::Binary { op: "+", .. }));

    let e = parse_expr("a && b || c == d").expect("parses");
    let Expr::Binary { op: "||", .. } = &e else {
        panic!("|| binds loosest: {e:?}");
    };

    let e = parse_expr("!ok && -x < 3").expect("parses");
    assert!(matches!(e, Expr::Binary { op: "&&", .. }));

    let e = parse_expr("f(a)(b)[c].d").expect("parses");
    assert!(matches!(e, Expr::Selector(..)));
}

#[test]
fn composite_literals_and_calls() {
    let f = parse_ok(
        r#"
package p

func f() {
    s := []int{1, 2, 3}
    m := map[string]int{"a": 1, "b": 2}
    p := Point{x: 1, y: 2}
    q := pkg.Remote{a: 1}
    n := nested{inner: []int{1}, pairs: map[int]int{1: 2}}
    c := make(chan int, 8)
    mm := make(map[string]error)
    sl := make([]int, 4)
    b := []byte("text")
    _ = s
    _ = m
    _ = p
    _ = q
    _ = n
    _ = c
    _ = mm
    _ = sl
    _ = b
}
"#,
    );
    let body = first_func(&f).body.as_ref().expect("body");
    assert_eq!(body.stmts.len(), 18);
}

#[test]
fn composite_literal_vs_block_ambiguity() {
    // `if x == T{}` must NOT parse `T{}` as a composite literal in the
    // header; parenthesized it must.
    let f = parse_ok(
        r#"
package p

func f(x Point) bool {
    if x == (Point{}) {
        return true
    }
    for i := zero(); i < max; i++ {
    }
    return false
}
"#,
    );
    assert_eq!(first_func(&f).name, "f");
    // A bare `T{}` in a header parses as `(x == Point) {block}` — the `{}`
    // becomes the then-block, exactly gc's tokenization of the ambiguity.
    let g = parse_ok("package p\nfunc f(x Point) bool { if x == Point { } \nreturn false }");
    let body = first_func(&g).body.as_ref().expect("body");
    let Stmt::If { cond, .. } = &body.stmts[0] else {
        panic!("if statement");
    };
    assert!(
        matches!(cond, Expr::Binary { op: "==", rhs, .. }
            if matches!(**rhs, Expr::Ident(..))),
        "Point stays a bare identifier in the header: {cond:?}"
    );
}

#[test]
fn closures_and_goroutines() {
    let f = parse_ok(
        r#"
package p

func f(jobs []int) {
    total := 0
    add := func(n int) { total = total + n }
    for _, j := range jobs {
        go func(j int) {
            add(j)
        }(j)
    }
    go func() { add(1) }()
    defer func() { total = 0 }()
}
"#,
    );
    let body = first_func(&f).body.as_ref().expect("body");
    let go_count = body
        .stmts
        .iter()
        .filter(|s| matches!(s, Stmt::For { .. } | Stmt::Go { .. }))
        .count();
    assert_eq!(go_count, 2, "range loop + direct go");
}

#[test]
fn type_assertions_and_conversions() {
    parse_ok(
        r#"
package p

func f(v interface{}) int {
    n := v.(int)
    s := v.(string)
    _ = s
    t := v.(type2)
    _ = t
    return n
}
"#,
    );
}

#[test]
fn slices_of_slices_and_slicing() {
    let f = parse_ok(
        r#"
package p

func f(grid [][]int) []int {
    row := grid[0]
    part := row[1:3]
    head := row[:2]
    tail := row[2:]
    all := row[:]
    _ = part
    _ = head
    _ = tail
    _ = all
    return row
}
"#,
    );
    assert_eq!(first_func(&f).name, "f");
}

#[test]
fn error_positions_are_reported() {
    let err = parse_file("package p\nfunc f() {\n    x := := 2\n}\n").expect_err("bad");
    assert_eq!(err.pos.line, 3);
    let err = parse_file("package p\nfunc {").expect_err("bad");
    assert_eq!(err.pos.line, 2);
    let err = parse_file("func f() {}").expect_err("no package clause");
    assert_eq!(err.pos.line, 1);
}

#[test]
fn unterminated_constructs_error_cleanly() {
    assert!(parse_file("package p\nfunc f() {").is_err());
    assert!(parse_file("package p\nvar s = \"unterminated").is_err());
    assert!(parse_file("package p\n/* unterminated").is_err());
    assert!(parse_file("package p\ntype i interface {").is_err());
}

#[test]
fn grouped_type_declarations() {
    let f = parse_ok(
        r#"
package p

type (
    A int
    B string
)
"#,
    );
    // The group parses (first member kept, rest validated).
    assert!(matches!(&f.decls[0], Decl::Type(t) if t.name == "A"));
}

#[test]
fn struct_tags_and_embedded_fields() {
    let f = parse_ok(
        r#"
package p

type Entity struct {
    Base
    Name string `json:"name"`
    Age  int    `json:"age"`
}
"#,
    );
    let Decl::Type(t) = &f.decls[0] else {
        panic!("type decl");
    };
    let Type::Struct(fields) = &t.ty else {
        panic!("struct");
    };
    assert_eq!(fields.len(), 3);
    assert!(fields[0].name.is_empty(), "embedded field");
}
