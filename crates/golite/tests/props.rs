//! Property tests for the Go-lite frontend: the lexer/parser never panic,
//! generated programs round-trip through the scanner, and ASI behaves.


// Gated behind the `props` feature: proptest is an external crate and
// the tier-1 build must succeed without registry access (restore the
// dev-dependency to run these).
#![cfg(feature = "props")]

use grs_golite::lexer::tokenize;
use grs_golite::parser::parse_file;
use grs_golite::scan::scan_source;
use grs_golite::token::Tok;
use proptest::prelude::*;

/// Replaces every `Pos { line: _, col: _ }` in a debug rendering so two
/// ASTs can be compared structurally.
fn scrub_positions(file: &grs_golite::ast::File) -> String {
    let mut out = String::new();
    let rendered = format!("{file:?}");
    let mut rest = rendered.as_str();
    while let Some(i) = rest.find("Pos {") {
        out.push_str(&rest[..i]);
        out.push_str("Pos{..}");
        match rest[i..].find('}') {
            Some(j) => rest = &rest[i + j + 1..],
            None => {
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out
}

proptest! {
    /// The lexer is total: any byte soup either tokenizes or errors — it
    /// never panics, and positions stay in range.
    #[test]
    fn lexer_never_panics(src in "[ -~\n\t]{0,200}") {
        if let Ok(tokens) = tokenize(&src) {
            let max_line = src.lines().count() as u32 + 1;
            for t in &tokens {
                prop_assert!(t.pos.line <= max_line + 1);
            }
            prop_assert_eq!(tokens.last().map(|t| t.tok.clone()), Some(Tok::Eof));
        }
    }

    /// The parser is total over arbitrary token soup.
    #[test]
    fn parser_never_panics(src in "[ -~\n]{0,300}") {
        let _ = parse_file(&src);
    }

    /// Identifier-shaped programs built from fragments parse and scan
    /// without panicking.
    #[test]
    fn assembled_functions_parse(
        names in prop::collection::vec(
            // Any lowercase identifier that is not a Go keyword (proptest
            // found `go := 5`, which the parser rightly rejects).
            "[a-z][a-z0-9]{0,6}".prop_filter("not a keyword", |n| {
                grs_golite::token::Keyword::lookup(n).is_none()
            }),
            1..5,
        ),
        ints in prop::collection::vec(0i64..1000, 1..5),
    ) {
        let mut body = String::from("package p\n\nfunc f(x int) int {\n");
        for (n, v) in names.iter().zip(ints.iter()) {
            body.push_str(&format!("    {n} := {v}\n    x = x + {n}\n"));
        }
        body.push_str("    return x\n}\n");
        let file = parse_file(&body).expect("assembled program parses");
        let counts = scan_source(&body).expect("scans");
        prop_assert_eq!(counts.func_decls, 1);
        prop_assert_eq!(file.decls.len(), 1);
    }

    /// ASI: a newline after a complete expression statement terminates it;
    /// the same statements joined by explicit semicolons parse identically.
    #[test]
    fn asi_matches_explicit_semicolons(
        vals in prop::collection::vec(0i64..100, 1..6),
    ) {
        let stmts: Vec<String> = vals
            .iter()
            .enumerate()
            .map(|(i, v)| format!("x{i} := {v}"))
            .collect();
        let with_newlines = format!(
            "package p\nfunc f() {{\n{}\n}}\n",
            stmts.join("\n")
        );
        let with_semis = format!(
            "package p\nfunc f() {{ {} }}\n",
            stmts.join("; ")
        );
        let a = parse_file(&with_newlines).expect("newline form parses");
        let b = parse_file(&with_semis).expect("semicolon form parses");
        // Positions legitimately differ between the layouts; compare the
        // position-scrubbed structure.
        prop_assert_eq!(scrub_positions(&a), scrub_positions(&b));
    }

    /// Scanner counts are additive: scanning two files separately and
    /// merging equals scanning their concatenation (minus the second
    /// package clause, which we rename into a comment).
    #[test]
    fn scanner_counts_are_additive(goers in 0u8..5, senders in 0u8..5) {
        let mk = |goers: u8, senders: u8| {
            let mut s = String::from("package p\nfunc f(ch chan int) {\n");
            for _ in 0..goers {
                s.push_str("    go g()\n");
            }
            for _ in 0..senders {
                s.push_str("    ch <- 1\n");
            }
            s.push_str("}\nfunc g() {}\n");
            s
        };
        let a = scan_source(&mk(goers, senders)).expect("a");
        let b = scan_source(&mk(senders, goers)).expect("b");
        let mut merged = a;
        merged.merge(&b);
        prop_assert_eq!(merged.go_statements, u64::from(goers) + u64::from(senders));
        prop_assert_eq!(merged.chan_sends, u64::from(goers) + u64::from(senders));
    }
}
