//! Tokens and source positions for Go-lite.

use std::fmt;

/// A 1-based line/column source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column (byte-oriented).
    pub col: u32,
}

impl Pos {
    /// The start of a file.
    pub const START: Pos = Pos { line: 1, col: 1 };
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Go keywords recognized by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Break,
    Case,
    Chan,
    Const,
    Continue,
    Default,
    Defer,
    Else,
    Fallthrough,
    For,
    Func,
    Go,
    Goto,
    If,
    Import,
    Interface,
    Map,
    Package,
    Range,
    Return,
    Select,
    Struct,
    Switch,
    Type,
    Var,
}

impl Keyword {
    /// Looks up an identifier as a keyword.
    #[must_use]
    pub fn lookup(ident: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match ident {
            "break" => Break,
            "case" => Case,
            "chan" => Chan,
            "const" => Const,
            "continue" => Continue,
            "default" => Default,
            "defer" => Defer,
            "else" => Else,
            "fallthrough" => Fallthrough,
            "for" => For,
            "func" => Func,
            "go" => Go,
            "goto" => Goto,
            "if" => If,
            "import" => Import,
            "interface" => Interface,
            "map" => Map,
            "package" => Package,
            "range" => Range,
            "return" => Return,
            "select" => Select,
            "struct" => Struct,
            "switch" => Switch,
            "type" => Type,
            "var" => Var,
            _ => return None,
        })
    }

    /// The keyword's spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Break => "break",
            Case => "case",
            Chan => "chan",
            Const => "const",
            Continue => "continue",
            Default => "default",
            Defer => "defer",
            Else => "else",
            Fallthrough => "fallthrough",
            For => "for",
            Func => "func",
            Go => "go",
            Goto => "goto",
            If => "if",
            Import => "import",
            Interface => "interface",
            Map => "map",
            Package => "package",
            Range => "range",
            Return => "return",
            Select => "select",
            Struct => "struct",
            Switch => "switch",
            Type => "type",
            Var => "var",
        }
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Keyword.
    Kw(Keyword),
    /// Integer literal (value kept as text; Table 1 does not need values).
    Int(String),
    /// Float literal.
    Float(String),
    /// Interpreted or raw string literal (unquoted content).
    Str(String),
    /// Rune literal (unquoted content).
    Rune(String),

    // Operators and delimiters.
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&^`
    AmpCaret,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `<-`
    Arrow,
    /// `++`
    Inc,
    /// `--`
    Dec,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Assign,
    /// `:=`
    Define,
    /// `!`
    Not,
    /// `...`
    Ellipsis,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;` (explicit or inserted)
    Semi,
    /// `:`
    Colon,
    /// Compound assignment, e.g. `+=` (operator spelled out).
    OpAssign(&'static str),
    /// End of file.
    Eof,
}

impl Tok {
    /// True when automatic semicolon insertion applies after this token
    /// (Go spec: identifiers, literals, `break`/`continue`/`fallthrough`/
    /// `return`, `++`/`--`, and closing delimiters).
    #[must_use]
    pub fn triggers_asi(&self) -> bool {
        matches!(
            self,
            Tok::Ident(_)
                | Tok::Int(_)
                | Tok::Float(_)
                | Tok::Str(_)
                | Tok::Rune(_)
                | Tok::Kw(Keyword::Break)
                | Tok::Kw(Keyword::Continue)
                | Tok::Kw(Keyword::Fallthrough)
                | Tok::Kw(Keyword::Return)
                | Tok::Inc
                | Tok::Dec
                | Tok::RParen
                | Tok::RBracket
                | Tok::RBrace
        )
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Kw(k) => write!(f, "{}", k.as_str()),
            Tok::Int(s) | Tok::Float(s) => write!(f, "{s}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Rune(s) => write!(f, "'{s}'"),
            Tok::Plus => f.write_str("+"),
            Tok::Minus => f.write_str("-"),
            Tok::Star => f.write_str("*"),
            Tok::Slash => f.write_str("/"),
            Tok::Percent => f.write_str("%"),
            Tok::Amp => f.write_str("&"),
            Tok::Pipe => f.write_str("|"),
            Tok::Caret => f.write_str("^"),
            Tok::Shl => f.write_str("<<"),
            Tok::Shr => f.write_str(">>"),
            Tok::AmpCaret => f.write_str("&^"),
            Tok::AndAnd => f.write_str("&&"),
            Tok::OrOr => f.write_str("||"),
            Tok::Arrow => f.write_str("<-"),
            Tok::Inc => f.write_str("++"),
            Tok::Dec => f.write_str("--"),
            Tok::EqEq => f.write_str("=="),
            Tok::NotEq => f.write_str("!="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
            Tok::Assign => f.write_str("="),
            Tok::Define => f.write_str(":="),
            Tok::Not => f.write_str("!"),
            Tok::Ellipsis => f.write_str("..."),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
            Tok::LBrace => f.write_str("{"),
            Tok::RBrace => f.write_str("}"),
            Tok::Comma => f.write_str(","),
            Tok::Dot => f.write_str("."),
            Tok::Semi => f.write_str(";"),
            Tok::Colon => f.write_str(":"),
            Tok::OpAssign(op) => write!(f, "{op}"),
            Tok::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Start position.
    pub pos: Pos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [Keyword::Go, Keyword::Defer, Keyword::Select, Keyword::Chan] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::lookup("goroutine"), None);
    }

    #[test]
    fn asi_trigger_set() {
        assert!(Tok::Ident("x".into()).triggers_asi());
        assert!(Tok::Int("5".into()).triggers_asi());
        assert!(Tok::RParen.triggers_asi());
        assert!(Tok::Kw(Keyword::Return).triggers_asi());
        assert!(!Tok::Kw(Keyword::If).triggers_asi());
        assert!(!Tok::Comma.triggers_asi());
        assert!(!Tok::Arrow.triggers_asi());
    }

    #[test]
    fn display_is_spelling() {
        assert_eq!(Tok::Arrow.to_string(), "<-");
        assert_eq!(Tok::Define.to_string(), ":=");
        assert_eq!(Tok::Kw(Keyword::Func).to_string(), "func");
        assert_eq!(Pos { line: 3, col: 7 }.to_string(), "3:7");
    }
}
