//! File-level call graph over the resolved function declarations.
//!
//! Nodes are indices into the `Vec<FuncCfg>` produced by
//! [`build_file`](crate::cfg::build_file) (bodied functions only, in
//! declaration order). Edges come from the [`Event::Call`] events the CFG
//! builder records for callees that resolve within the file: named
//! package-level functions, methods on the enclosing receiver type, and
//! function-typed parameters (kept separately as [`ParamCall`]s, since
//! their concrete target is only known at each call site passing a
//! closure).
//!
//! Each [`CallSite`] carries the facts the summary layer needs to
//! propagate effects bottom-up: the lockset in force at the call, the
//! locks that were held earlier in the same context but released before
//! the call (the `lock-dropped-before-call` evidence), whether the call is
//! spawned (`go f(x)` or made from inside a goroutine body), and which
//! arguments are closures or trackable places.

use std::collections::{BTreeSet, HashMap};

use crate::cfg::{CallTarget, Event, FuncCfg, VarKey};
use crate::lockset::{block_entry_locksets, Lockset};
use crate::token::Pos;

/// One resolved call edge, with the caller-side facts at the site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Calling function (index into the CFG list).
    pub caller: usize,
    /// Called function (index into the CFG list).
    pub callee: usize,
    /// Source position of the call (the `go` keyword for spawned calls).
    pub pos: Pos,
    /// The callee runs on a goroutine: `go f(x)`, or the call is made
    /// from inside a goroutine body of the caller.
    pub spawned: bool,
    /// The spawn point when `spawned` (for MHP kill-point queries).
    pub spawn_pos: Option<Pos>,
    /// The site executes inside a loop (possibly concurrent with itself
    /// when also spawned).
    pub in_loop: bool,
    /// Locks held at the call site. A spawned callee inherits none of
    /// these — the summary layer drops them.
    pub locks: Lockset,
    /// Locks acquired earlier in the same context but no longer held at
    /// the call.
    pub dropped: BTreeSet<VarKey>,
    /// Function-literal arguments: `(argument index, literal position)`.
    pub closure_args: Vec<(usize, Pos)>,
    /// Trackable places passed as arguments:
    /// `(argument index, key, source spelling)`.
    pub var_args: Vec<(usize, VarKey, String)>,
}

/// A call through a function-typed parameter of the caller.
#[derive(Debug, Clone)]
pub struct ParamCall {
    /// Calling function (index into the CFG list).
    pub caller: usize,
    /// Which parameter of the caller is invoked.
    pub param: usize,
    /// Invoked via `go` (or from a goroutine body).
    pub spawned: bool,
    /// Source position of the call.
    pub pos: Pos,
}

/// The call graph of one file.
#[derive(Debug)]
pub struct CallGraph {
    /// All resolved call sites, in CFG walk order.
    pub sites: Vec<CallSite>,
    /// Calls through function-typed parameters.
    pub param_calls: Vec<ParamCall>,
    callees: Vec<BTreeSet<usize>>,
}

impl CallGraph {
    /// Builds the call graph for the CFGs of one file.
    #[must_use]
    pub fn build(cfgs: &[FuncCfg]) -> CallGraph {
        let mut by_name: HashMap<&str, usize> = HashMap::new();
        let mut by_method: HashMap<(&str, &str), usize> = HashMap::new();
        for (i, c) in cfgs.iter().enumerate() {
            match &c.recv_type {
                None => {
                    by_name.entry(c.func.as_str()).or_insert(i);
                }
                Some(r) => {
                    by_method.entry((r.as_str(), c.func.as_str())).or_insert(i);
                }
            }
        }

        let mut sites = Vec::new();
        let mut param_calls = Vec::new();
        let mut callees: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); cfgs.len()];

        for (caller, cfg) in cfgs.iter().enumerate() {
            let insets = block_entry_locksets(cfg);
            for ctx in &cfg.contexts {
                // Locks acquired so far in this context, in block-creation
                // order (which tracks execution order for straight-line
                // code — the shape the dropped-lock rule targets).
                let mut ever: BTreeSet<VarKey> = BTreeSet::new();
                for (bid, block) in cfg.blocks_of(ctx.id) {
                    let Some(entry) = &insets[bid.0] else { continue };
                    let mut cur = entry.clone();
                    for e in &block.events {
                        match e {
                            Event::Acquire { lock, mode, .. } => {
                                ever.insert(lock.clone());
                                let slot = cur.entry(lock.clone()).or_insert(*mode);
                                if *mode > *slot {
                                    *slot = *mode;
                                }
                            }
                            Event::Release { lock, .. } => {
                                cur.remove(lock);
                            }
                            Event::Access { .. } => {}
                            Event::Call {
                                target,
                                spawned,
                                in_loop,
                                closure_args,
                                var_args,
                                pos,
                            } => {
                                let site_spawned = *spawned || ctx.id != 0;
                                let spawn_pos = if *spawned {
                                    Some(*pos)
                                } else {
                                    ctx.spawn_pos
                                };
                                let site_in_loop = *in_loop || ctx.in_loop;
                                match target {
                                    CallTarget::Param(idx) => param_calls.push(ParamCall {
                                        caller,
                                        param: *idx,
                                        spawned: site_spawned,
                                        pos: *pos,
                                    }),
                                    _ => {
                                        let callee = match target {
                                            CallTarget::Named(n) => {
                                                by_name.get(n.as_str()).copied()
                                            }
                                            CallTarget::Method { recv, name } => by_method
                                                .get(&(recv.as_str(), name.as_str()))
                                                .copied(),
                                            CallTarget::Param(_) => None,
                                        };
                                        if let Some(callee) = callee {
                                            let dropped: BTreeSet<VarKey> = ever
                                                .iter()
                                                .filter(|l| !cur.contains_key(*l))
                                                .cloned()
                                                .collect();
                                            callees[caller].insert(callee);
                                            sites.push(CallSite {
                                                caller,
                                                callee,
                                                pos: *pos,
                                                spawned: site_spawned,
                                                spawn_pos,
                                                in_loop: site_in_loop,
                                                locks: cur.clone(),
                                                dropped,
                                                closure_args: closure_args.clone(),
                                                var_args: var_args.clone(),
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        CallGraph {
            sites,
            param_calls,
            callees,
        }
    }

    /// Number of functions (nodes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.callees.len()
    }

    /// True when the file has no bodied functions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.callees.is_empty()
    }

    /// Direct callees of `caller`.
    #[must_use]
    pub fn callees_of(&self, caller: usize) -> &BTreeSet<usize> {
        &self.callees[caller]
    }

    /// Call sites originating in `caller`.
    pub fn sites_from(&self, caller: usize) -> impl Iterator<Item = &CallSite> {
        self.sites.iter().filter(move |s| s.caller == caller)
    }

    /// Functions that have at least one in-file caller other than
    /// themselves (self-recursion alone does not make a function
    /// "called" — nothing else ever reaches it).
    #[must_use]
    pub fn called(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for (c, outs) in self.callees.iter().enumerate() {
            for &w in outs {
                if w != c {
                    out.insert(w);
                }
            }
        }
        out
    }

    /// Analysis roots: functions with no in-file caller, plus — so cyclic
    /// clusters unreachable from any such function still get analyzed —
    /// the lowest-index member of every unreached cycle.
    #[must_use]
    pub fn roots(&self) -> Vec<usize> {
        let n = self.callees.len();
        let called = self.called();
        let mut roots: Vec<usize> = (0..n).filter(|i| !called.contains(i)).collect();
        let mut reached = vec![false; n];
        let mut stack: Vec<usize> = roots.clone();
        while let Some(v) = stack.pop() {
            if std::mem::replace(&mut reached[v], true) {
                continue;
            }
            stack.extend(self.callees[v].iter().copied());
        }
        for i in 0..n {
            if !reached[i] {
                roots.push(i);
                let mut st = vec![i];
                while let Some(v) = st.pop() {
                    if std::mem::replace(&mut reached[v], true) {
                        continue;
                    }
                    st.extend(self.callees[v].iter().copied());
                }
            }
        }
        roots.sort_unstable();
        roots
    }

    /// Strongly connected components in bottom-up (callee-first) order:
    /// by the time a component is visited, the summaries of everything it
    /// calls outside itself are final. Tarjan's algorithm emits exactly
    /// this order.
    #[must_use]
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.callees.len();
        const UNSEEN: usize = usize::MAX;
        let mut index = vec![UNSEEN; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next = 0usize;
        let mut out = Vec::new();

        for start in 0..n {
            if index[start] != UNSEEN {
                continue;
            }
            // Iterative DFS: (node, next-child cursor).
            let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&(v, ci)) = frames.last() {
                if ci == 0 {
                    index[v] = next;
                    low[v] = next;
                    next += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let succ = self.callees[v].iter().nth(ci).copied();
                if let Some(w) = succ {
                    frames.last_mut().expect("frame").1 += 1;
                    if index[w] == UNSEEN {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(p, _)) = frames.last() {
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_file;
    use crate::parser::parse_file;
    use crate::resolve::resolve_file;

    fn graph_of(src: &str) -> (Vec<FuncCfg>, CallGraph) {
        let file = parse_file(src).expect("parses");
        let res = resolve_file(&file);
        let cfgs = build_file(&file, &res);
        let cg = CallGraph::build(&cfgs);
        (cfgs, cg)
    }

    #[test]
    fn resolves_named_and_method_calls() {
        let (cfgs, cg) = graph_of(
            r"
package p
func a() { b() }
func b() {}
func (s *S) m() { s.n() }
func (s *S) n() {}
",
        );
        assert_eq!(cfgs.len(), 4);
        assert_eq!(cg.sites.len(), 2);
        assert!(cg.callees_of(0).contains(&1));
        assert!(cg.callees_of(2).contains(&3));
        assert_eq!(cg.called(), [1usize, 3].into_iter().collect());
        assert_eq!(cg.roots(), vec![0, 2]);
    }

    #[test]
    fn call_sites_carry_locks_and_dropped_locks() {
        let (_, cg) = graph_of(
            r"
package p
func f() {
    mu.Lock()
    inside()
    mu.Unlock()
    outside()
}
func inside() {}
func outside() {}
",
        );
        let inside = cg.sites.iter().find(|s| s.callee == 1).expect("inside");
        assert_eq!(inside.locks.len(), 1);
        assert!(inside.dropped.is_empty());
        let outside = cg.sites.iter().find(|s| s.callee == 2).expect("outside");
        assert!(outside.locks.is_empty());
        assert_eq!(outside.dropped.len(), 1, "mu released before the call");
    }

    #[test]
    fn spawned_calls_and_param_calls() {
        let (_, cg) = graph_of(
            r"
package p
func spawn(fn func()) { go fn() }
func f(keys []int) {
    for _, k := range keys {
        go work(k)
    }
}
func work(k int) {}
",
        );
        assert_eq!(cg.param_calls.len(), 1);
        assert!(cg.param_calls[0].spawned);
        assert_eq!(cg.param_calls[0].param, 0);
        let work = cg.sites.iter().find(|s| s.callee == 2).expect("work");
        assert!(work.spawned);
        assert!(work.in_loop);
        assert!(work.spawn_pos.is_some());
    }

    #[test]
    fn sccs_are_callee_first_and_group_cycles() {
        let (_, cg) = graph_of(
            r"
package p
func top() { even(4) }
func even(n int) { odd(n) }
func odd(n int) { even(n) }
func leaf() {}
",
        );
        let sccs = cg.sccs();
        let cycle = sccs
            .iter()
            .position(|c| c.len() == 2)
            .expect("even/odd cycle");
        let top = sccs.iter().position(|c| c == &vec![0]).expect("top");
        assert!(cycle < top, "callees come before callers: {sccs:?}");
        // Self-recursion alone does not count as being called.
        let (_, cg2) = graph_of("package p\nfunc r(n int) { r(n) }\n");
        assert_eq!(cg2.roots(), vec![0]);
    }
}
