//! Bottom-up per-function summaries and the interprocedural race rules.
//!
//! Each function gets a [`FuncSummary`]: its file-wide variable accesses
//! annotated with the locks held (its own *plus* the caller's at each call
//! site — a spawned call inherits nothing), whether the access runs on a
//! spawned goroutine, and the call chain it was reached through. Summaries
//! are computed bottom-up over the call graph's SCCs, iterating each
//! component to a fixpoint so recursion and mutual calls converge (the
//! per-access dedup keeps the *shortest* chain, which is what makes the
//! fixpoint finite).
//!
//! Three effect sets ride along for the escape rules:
//!
//! * `spawns_params` — function-typed parameters the callee launches with
//!   `go` (directly or through further calls),
//! * `map_write_params` / `spawned_map_write_params` — map-typed
//!   parameters the callee writes through an index expression, serially
//!   or from a spawned goroutine.
//!
//! [`interproc_findings`] then evaluates the cross-function rules — the
//! interprocedural halves of MissingLock/InconsistentLock, escaping
//! captures handed to spawning helpers, locks dropped before a call that
//! touches the protected state, maps handed to callees that fill them
//! concurrently, and spawned call chains unsynchronized with the parent
//! (gated by [`Mhp`] so a `Wait`/receive between spawn and access
//! suppresses the report).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Decl, File};
use crate::callgraph::{CallGraph, CallSite};
use crate::cfg::{FuncCfg, LockMode, VarKey, VarRoot};
use crate::lockset::{self, Lockset};
use crate::mhp::Mhp;
use crate::resolve::{Resolution, SymbolId, SymbolKind};
use crate::token::Pos;

/// Chains deeper than this stop propagating (they add no new evidence the
/// shorter prefixes have not already contributed).
const MAX_CHAIN: usize = 8;
/// Per-function access cap, bounding summary growth on generated code.
const MAX_ACCESSES: usize = 200;

/// One hop of a call chain: the callee entered, at the caller-side
/// position of the call.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChainHop {
    /// Name of the function called.
    pub func: String,
    /// Position of the call site.
    pub pos: Pos,
}

/// A file-wide variable access as seen from a function's entry, with
/// every caller-side fact folded in.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryAccess {
    /// The accessed variable (always file-wide).
    pub var: VarKey,
    /// Source spelling.
    pub display: String,
    /// Write vs read.
    pub write: bool,
    /// Performed through `sync/atomic`.
    pub atomic: bool,
    /// Locks in force at the access, including locks the call chain's
    /// sites held (none survive a spawned hop).
    pub locks: Lockset,
    /// The access runs on a goroutine relative to the summarized function.
    pub spawned: bool,
    /// The spawn happened inside a loop (self-concurrent).
    pub in_loop_spawn: bool,
    /// The spawn point, in the summarized function's source, when spawned.
    pub spawn_pos: Option<Pos>,
    /// Locks held earlier on the chain but released before it was entered.
    pub dropped: BTreeSet<VarKey>,
    /// Call chain from the summarized function to the access (empty for
    /// the function's own accesses).
    pub chain: Vec<ChainHop>,
    /// Position of the access itself.
    pub pos: Pos,
    /// Name of the function that lexically contains the access.
    pub func: String,
}

impl SummaryAccess {
    /// Locks that actually protect this access (`Read`-mode locks do not
    /// protect writes).
    #[must_use]
    pub fn effective(&self) -> BTreeSet<VarKey> {
        self.locks
            .iter()
            .filter(|(_, m)| **m == LockMode::Write || !self.write)
            .map(|(k, _)| k.clone())
            .collect()
    }
}

/// The bottom-up summary of one function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FuncSummary {
    /// File-wide accesses reachable from this function, own and inherited.
    pub accesses: Vec<SummaryAccess>,
    /// Parameter indices launched as goroutines (transitively).
    pub spawns_params: BTreeSet<usize>,
    /// Parameter indices written through `m[k] = v`, serially.
    pub map_write_params: BTreeSet<usize>,
    /// Parameter indices written through `m[k] = v` from a spawned
    /// goroutine (directly or in a callee).
    pub spawned_map_write_params: BTreeSet<usize>,
}

/// Summaries for every bodied function of a file.
#[derive(Debug)]
pub struct Summaries {
    /// One summary per CFG, aligned with the CFG list.
    pub funcs: Vec<FuncSummary>,
    param_syms: Vec<Vec<Option<SymbolId>>>,
}

impl Summaries {
    /// Computes all summaries bottom-up over `cg`'s SCCs.
    #[must_use]
    pub fn compute(file: &File, res: &Resolution, cfgs: &[FuncCfg], cg: &CallGraph) -> Summaries {
        let param_syms = param_symbols(file, res);
        let mut own = own_summaries(cfgs, &param_syms);
        for pc in &cg.param_calls {
            if pc.spawned {
                own[pc.caller].spawns_params.insert(pc.param);
            }
        }
        let mut funcs = own.clone();

        for scc in cg.sccs() {
            // Non-trivial components iterate to a fixpoint; singletons
            // without a self-loop converge in one pass.
            for _ in 0..10 {
                let mut changed = false;
                for &f in &scc {
                    let mut next = own[f].clone();
                    for site in cg.sites_from(f) {
                        incorporate(&mut next, site, &funcs[site.callee], cfgs, &param_syms);
                    }
                    dedup_accesses(&mut next.accesses);
                    if next != funcs[f] {
                        funcs[f] = next;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        Summaries { funcs, param_syms }
    }

    /// The parameter index of `sym` in function `func`, if it is one.
    #[must_use]
    pub fn param_index(&self, func: usize, sym: SymbolId) -> Option<usize> {
        self.param_syms
            .get(func)?
            .iter()
            .position(|p| *p == Some(sym))
    }
}

/// Parameter symbols per bodied function, in signature order.
fn param_symbols(file: &File, res: &Resolution) -> Vec<Vec<Option<SymbolId>>> {
    file.decls
        .iter()
        .filter_map(|d| match d {
            Decl::Func(f) if f.body.is_some() => Some(
                f.sig
                    .params
                    .iter()
                    .map(|p| {
                        res.symbols()
                            .iter()
                            .find(|s| {
                                s.kind == SymbolKind::Param
                                    && s.decl_pos == Some(f.pos)
                                    && s.name == p.name
                            })
                            .map(|s| s.id)
                    })
                    .collect(),
            ),
            _ => None,
        })
        .collect()
}

/// The call-free part of every summary: each function's own accesses and
/// direct parameter effects.
fn own_summaries(cfgs: &[FuncCfg], param_syms: &[Vec<Option<SymbolId>>]) -> Vec<FuncSummary> {
    let mut out = vec![FuncSummary::default(); cfgs.len()];
    for a in lockset::collect_accesses(cfgs) {
        if a.init {
            continue;
        }
        let s = &mut out[a.func_idx];
        if a.var.is_file_wide() {
            let spawn_pos = cfgs[a.func_idx].contexts[a.ctx as usize].spawn_pos;
            s.accesses.push(SummaryAccess {
                var: a.var.clone(),
                display: a.display.clone(),
                write: a.write,
                atomic: a.atomic,
                locks: a.raw.clone(),
                spawned: a.ctx != 0,
                in_loop_spawn: a.ctx != 0 && a.ctx_in_loop,
                spawn_pos,
                dropped: BTreeSet::new(),
                chain: Vec::new(),
                pos: a.pos,
                func: a.func.clone(),
            });
        } else if a.write && a.indexed {
            // `m[k] = v` where m is a parameter: a map-write effect.
            if let VarRoot::Local(sym) = a.var.root {
                if let Some(j) = param_syms[a.func_idx].iter().position(|p| *p == Some(sym)) {
                    if a.ctx != 0 {
                        s.spawned_map_write_params.insert(j);
                    } else {
                        s.map_write_params.insert(j);
                    }
                }
            }
        }
    }
    out
}

fn union(a: &Lockset, b: &Lockset) -> Lockset {
    let mut out = a.clone();
    for (k, m) in b {
        let e = out.entry(k.clone()).or_insert(*m);
        if *m > *e {
            *e = *m;
        }
    }
    out
}

/// Folds one call site's view of the callee summary into `next`.
fn incorporate(
    next: &mut FuncSummary,
    site: &CallSite,
    callee: &FuncSummary,
    cfgs: &[FuncCfg],
    param_syms: &[Vec<Option<SymbolId>>],
) {
    for a in &callee.accesses {
        if a.chain.len() >= MAX_CHAIN || next.accesses.len() >= MAX_ACCESSES * 2 {
            continue;
        }
        // A spawned callee starts on a fresh goroutine: none of the
        // caller's locks extend into it.
        let locks = if site.spawned {
            a.locks.clone()
        } else {
            union(&a.locks, &site.locks)
        };
        let spawned = a.spawned || site.spawned;
        let spawn_pos = if site.spawned {
            site.spawn_pos
        } else if a.spawned {
            // The callee spawns internally; from here, the spawn happens
            // at the call site.
            Some(site.pos)
        } else {
            None
        };
        let mut dropped = site.dropped.clone();
        dropped.extend(a.dropped.iter().cloned());
        let mut chain = vec![ChainHop {
            func: cfgs[site.callee].func.clone(),
            pos: site.pos,
        }];
        chain.extend(a.chain.iter().cloned());
        next.accesses.push(SummaryAccess {
            var: a.var.clone(),
            display: a.display.clone(),
            write: a.write,
            atomic: a.atomic,
            locks,
            spawned,
            in_loop_spawn: a.in_loop_spawn || (site.spawned && site.in_loop),
            spawn_pos,
            dropped,
            chain,
            pos: a.pos,
            func: a.func.clone(),
        });
    }

    // Parameter-to-parameter effect propagation: passing our own
    // parameter into an effectful slot of the callee gives us the effect.
    for (idx, key, _) in &site.var_args {
        let VarRoot::Local(sym) = &key.root else {
            continue;
        };
        let Some(j) = param_syms[site.caller].iter().position(|p| *p == Some(*sym)) else {
            continue;
        };
        if callee.spawns_params.contains(idx) {
            next.spawns_params.insert(j);
        }
        if callee.map_write_params.contains(idx) {
            if site.spawned {
                next.spawned_map_write_params.insert(j);
            } else {
                next.map_write_params.insert(j);
            }
        }
        if callee.spawned_map_write_params.contains(idx) {
            next.spawned_map_write_params.insert(j);
        }
    }
}

/// Keeps one access per `(var, pos, write, atomic, locks, spawned)` — the
/// one with the shortest chain — in a deterministic order.
fn dedup_accesses(accesses: &mut Vec<SummaryAccess>) {
    accesses.sort_by(|x, y| {
        (&x.var, x.pos, x.write, x.atomic, &x.locks, x.spawned, x.chain.len(), &x.chain).cmp(&(
            &y.var,
            y.pos,
            y.write,
            y.atomic,
            &y.locks,
            y.spawned,
            y.chain.len(),
            &y.chain,
        ))
    });
    accesses.dedup_by(|b, a| {
        a.var == b.var
            && a.pos == b.pos
            && a.write == b.write
            && a.atomic == b.atomic
            && a.locks == b.locks
            && a.spawned == b.spawned
    });
    accesses.truncate(MAX_ACCESSES);
}

/// The interprocedural rules, mirroring `LockRule` one layer up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterRule {
    /// Bare on some call paths, guarded on others (GR013).
    MissingLockInterproc,
    /// Every chain locks, but no lock is common (GR014).
    InconsistentLockInterproc,
    /// A closure capturing a loop variable or `err` handed to a helper
    /// that spawns it (GR015).
    EscapingCapture,
    /// A lock released before a call whose chain touches the protected
    /// variable (GR016).
    LockDroppedBeforeCall,
    /// A map passed to a callee that writes it from spawned goroutines
    /// (GR017).
    SpawnInCalleeMapWrite,
    /// A spawned call chain's access unsynchronized with — and parallel
    /// to — the parent's own access (GR018).
    UnsyncedSpawnedCall,
}

/// One interprocedural finding.
#[derive(Debug, Clone)]
pub struct InterFinding {
    /// Which rule fired.
    pub rule: InterRule,
    /// The variable involved, when the rule is about one.
    pub var: Option<VarKey>,
    /// Position of the report.
    pub pos: Pos,
    /// Enclosing function of the report position.
    pub func: String,
    /// Human-readable explanation.
    pub message: String,
    /// Shortest call chain evidencing the finding (may be empty).
    pub chain: Vec<ChainHop>,
}

/// Evaluates GR013–GR018 over the summaries.
///
/// `skip_vars` holds the variables already reported by the intraprocedural
/// lockset pass — one diagnostic per variable, the sharper one wins.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn interproc_findings(
    res: &Resolution,
    cfgs: &[FuncCfg],
    cg: &CallGraph,
    sums: &Summaries,
    mhp: &Mhp,
    skip_vars: &BTreeSet<VarKey>,
) -> Vec<InterFinding> {
    let mut findings = Vec::new();

    // GR015: a closure capturing a loop variable (or `err`) passed to a
    // helper that launches it on a goroutine — the capture escapes the
    // iteration exactly like a direct `go func(){...}()` would.
    for site in &cg.sites {
        for (idx, lit_pos) in &site.closure_args {
            if !sums.funcs[site.callee].spawns_params.contains(idx) {
                continue;
            }
            for &sym in res.captures_at(*lit_pos) {
                let s = res.symbol(sym);
                let risky = s.kind == SymbolKind::LoopVar || s.name == "err";
                if !risky {
                    continue;
                }
                let callee_name = cfgs[site.callee].func.clone();
                findings.push(InterFinding {
                    rule: InterRule::EscapingCapture,
                    var: None,
                    pos: *lit_pos,
                    func: cfgs[site.caller].func.clone(),
                    message: format!(
                        "closure captures '{}' by reference and escapes into \
                         '{}', which launches it as a goroutine; every spawn \
                         shares the same variable",
                        s.name, callee_name,
                    ),
                    chain: vec![ChainHop {
                        func: callee_name.clone(),
                        pos: site.pos,
                    }],
                });
            }
        }
    }

    // GR017: handing a map we own to a callee that fills it from spawned
    // goroutines. Reported at the owner only — a callee passing its own
    // parameter along propagates the effect instead.
    for site in &cg.sites {
        for (idx, key, disp) in &site.var_args {
            if !sums.funcs[site.callee]
                .spawned_map_write_params
                .contains(idx)
            {
                continue;
            }
            if let VarRoot::Local(sym) = &key.root {
                if sums.param_index(site.caller, *sym).is_some() {
                    continue;
                }
            }
            if skip_vars.contains(key) {
                continue;
            }
            let callee_name = cfgs[site.callee].func.clone();
            findings.push(InterFinding {
                rule: InterRule::SpawnInCalleeMapWrite,
                var: Some(key.clone()),
                pos: site.pos,
                func: cfgs[site.caller].func.clone(),
                message: format!(
                    "map '{disp}' is passed to '{callee_name}', which writes it \
                     from goroutines spawned there; concurrent map writes are a \
                     runtime fault in Go",
                ),
                chain: vec![ChainHop {
                    func: callee_name.clone(),
                    pos: site.pos,
                }],
            });
        }
    }

    // Group rules over root-expanded accesses: every analysis root
    // contributes the accesses reachable from it, with chain context.
    let mut groups: BTreeMap<VarKey, Vec<(usize, &SummaryAccess)>> = BTreeMap::new();
    for &r in &cg.roots() {
        for a in &sums.funcs[r].accesses {
            groups.entry(a.var.clone()).or_default().push((r, a));
        }
    }

    for (var, accs) in &groups {
        if skip_vars.contains(var) {
            continue;
        }
        // Purely intraprocedural evidence was already judged by the
        // lockset pass; atomics belong to its atomic-mixing rule.
        if accs.iter().all(|(_, a)| a.chain.is_empty()) {
            continue;
        }
        if accs.iter().any(|(_, a)| a.atomic) {
            continue;
        }
        if !accs.iter().any(|(_, a)| a.write) {
            continue;
        }
        let display = accs[0].1.display.clone();

        let roots_set: BTreeSet<usize> = accs.iter().map(|(r, _)| *r).collect();
        let spawned_any = accs.iter().any(|(_, a)| a.spawned);
        let loop_spawn = accs.iter().any(|(_, a)| a.in_loop_spawn);
        let lock_signal = accs.iter().any(|(_, a)| !a.locks.is_empty());
        if roots_set.len() < 2 && !spawned_any && !loop_spawn && !lock_signal {
            continue;
        }

        let guarded: Vec<&(usize, &SummaryAccess)> = accs
            .iter()
            .filter(|(_, a)| !a.effective().is_empty())
            .collect();
        let mut unguarded: Vec<&(usize, &SummaryAccess)> = accs
            .iter()
            .filter(|(_, a)| a.effective().is_empty())
            .collect();
        unguarded.sort_by_key(|(_, a)| (a.pos, a.chain.len()));

        if !guarded.is_empty() && !unguarded.is_empty() {
            let guard_locks: BTreeSet<VarKey> =
                guarded.iter().flat_map(|(_, a)| a.effective()).collect();
            // GR016: the bare chain had one of the guarding locks, but it
            // was released before the call was made.
            if let Some((_, a)) = unguarded.iter().find(|(_, a)| {
                !a.chain.is_empty() && a.dropped.intersection(&guard_locks).next().is_some()
            }) {
                let lock = a
                    .dropped
                    .intersection(&guard_locks)
                    .next()
                    .cloned()
                    .expect("nonempty intersection");
                findings.push(InterFinding {
                    rule: InterRule::LockDroppedBeforeCall,
                    var: Some(var.clone()),
                    pos: a.chain[0].pos,
                    func: chain_root_func(cfgs, accs, a),
                    message: format!(
                        "'{}' is accessed in '{}' after {} was released — the \
                         call runs outside the critical section that guards \
                         '{}' elsewhere",
                        display,
                        a.func,
                        lockset::key_display(&lock),
                        display,
                    ),
                    chain: a.chain.clone(),
                });
            } else {
                // GR013: bare here, guarded along other chains.
                let (_, bare) = unguarded[0];
                let note_chain = if bare.chain.is_empty() {
                    guarded
                        .iter()
                        .filter(|(_, g)| !g.chain.is_empty())
                        .min_by_key(|(_, g)| g.chain.len())
                        .map(|(_, g)| g.chain.clone())
                        .unwrap_or_default()
                } else {
                    bare.chain.clone()
                };
                findings.push(InterFinding {
                    rule: InterRule::MissingLockInterproc,
                    var: Some(var.clone()),
                    pos: bare.pos,
                    func: bare.func.clone(),
                    message: format!(
                        "'{}' is {} without a lock here but guarded by {} on \
                         other call paths",
                        display,
                        if bare.write { "written" } else { "read" },
                        lockset::lock_names(&guard_locks),
                    ),
                    chain: note_chain,
                });
            }
        } else if unguarded.is_empty() && guarded.len() >= 2 {
            // GR014: every chain locks, but no lock is common to all.
            let mut common: Option<BTreeSet<VarKey>> = None;
            for (_, g) in &guarded {
                let eff = g.effective();
                common = Some(match common {
                    None => eff,
                    Some(c) => c.intersection(&eff).cloned().collect(),
                });
            }
            if common.as_ref().is_some_and(BTreeSet::is_empty) {
                let (_, a) = guarded
                    .iter()
                    .min_by_key(|(_, a)| (a.pos, a.chain.len(), a.chain.clone()))
                    .expect("nonempty guarded");
                findings.push(InterFinding {
                    rule: InterRule::InconsistentLockInterproc,
                    var: Some(var.clone()),
                    pos: a.pos,
                    func: a.func.clone(),
                    message: format!(
                        "every call path to '{display}' holds a lock, but no \
                         single lock is common to all of them — two chains can \
                         still run concurrently",
                    ),
                    chain: a.chain.clone(),
                });
            }
        } else if guarded.is_empty() && !lock_signal {
            // GR018: a spawned chain writes, the parent touches the same
            // variable afterward, and no join orders the two.
            'pairs: for (r, w) in accs.iter().filter(|(_, a)| {
                a.spawned && a.write && !a.chain.is_empty() && a.spawn_pos.is_some()
            }) {
                let sp = w.spawn_pos.expect("filtered on spawn_pos");
                for (_, b) in accs.iter().filter(|(r2, b)| r2 == r && !b.spawned) {
                    if mhp.may_parallel(*r, sp, b.pos) {
                        findings.push(InterFinding {
                            rule: InterRule::UnsyncedSpawnedCall,
                            var: Some(var.clone()),
                            pos: sp,
                            func: cfgs[*r].func.clone(),
                            message: format!(
                                "goroutine spawned here writes '{}' through \
                                 '{}' while '{}' also accesses it at line {} \
                                 with no synchronization in between",
                                display, w.chain[0].func, cfgs[*r].func, b.pos.line,
                            ),
                            chain: w.chain.clone(),
                        });
                        break 'pairs;
                    }
                }
            }
        }
    }

    dedup_findings(findings)
}

/// The root function a chained access was expanded from, for reporting.
fn chain_root_func(
    cfgs: &[FuncCfg],
    accs: &[(usize, &SummaryAccess)],
    target: &SummaryAccess,
) -> String {
    accs.iter()
        .find(|(_, a)| std::ptr::eq(*a, target))
        .map_or_else(|| target.func.clone(), |(r, _)| cfgs[*r].func.clone())
}

/// One finding per `(rule, var, line)`, keeping the shortest chain, in
/// deterministic (path-independent) order.
fn dedup_findings(findings: Vec<InterFinding>) -> Vec<InterFinding> {
    let mut best: BTreeMap<(u8, Option<VarKey>, u32), InterFinding> = BTreeMap::new();
    for f in findings {
        let key = (rule_rank(f.rule), f.var.clone(), f.pos.line);
        match best.get(&key) {
            Some(old) if old.chain.len() <= f.chain.len() => {}
            _ => {
                best.insert(key, f);
            }
        }
    }
    let mut out: Vec<InterFinding> = best.into_values().collect();
    out.sort_by_key(|f| (f.pos, rule_rank(f.rule)));
    out
}

fn rule_rank(r: InterRule) -> u8 {
    match r {
        InterRule::MissingLockInterproc => 0,
        InterRule::InconsistentLockInterproc => 1,
        InterRule::EscapingCapture => 2,
        InterRule::LockDroppedBeforeCall => 3,
        InterRule::SpawnInCalleeMapWrite => 4,
        InterRule::UnsyncedSpawnedCall => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_file;
    use crate::parser::parse_file;
    use crate::resolve::resolve_file;

    fn inter_rules(src: &str) -> Vec<InterRule> {
        let file = parse_file(src).expect("parses");
        let res = resolve_file(&file);
        let cfgs = build_file(&file, &res);
        let cg = CallGraph::build(&cfgs);
        let sums = Summaries::compute(&file, &res, &cfgs, &cg);
        let mhp = Mhp::build(&file);
        interproc_findings(&res, &cfgs, &cg, &sums, &mhp, &BTreeSet::new())
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn helper_hidden_lock_is_missing_lock_through_the_chain() {
        let racy = r"
package p
var mu sync.Mutex
var count int
func Incr() {
    mu.Lock()
    bump()
    mu.Unlock()
}
func bump() {
    count = count + 1
}
func Read() int {
    return count
}
";
        assert!(
            inter_rules(racy).contains(&InterRule::MissingLockInterproc),
            "{:?}",
            inter_rules(racy)
        );
        let fixed = r"
package p
var mu sync.Mutex
var count int
func Incr() {
    mu.Lock()
    bump()
    mu.Unlock()
}
func bump() {
    count = count + 1
}
func Read() int {
    mu.Lock()
    v := count
    mu.Unlock()
    return v
}
";
        assert!(inter_rules(fixed).is_empty(), "{:?}", inter_rules(fixed));
    }

    #[test]
    fn recursion_converges_and_summaries_keep_shortest_chain() {
        let src = r"
package p
var total int
func sum(n int) {
    if n > 0 {
        total = total + n
        sum(n - 1)
    }
}
func Run() {
    go sum(8)
    report(total)
}
";
        let file = parse_file(src).expect("parses");
        let res = resolve_file(&file);
        let cfgs = build_file(&file, &res);
        let cg = CallGraph::build(&cfgs);
        let sums = Summaries::compute(&file, &res, &cfgs, &cg);
        // sum's summary holds its own write plus the one-hop recursive
        // copy, never an unbounded chain.
        assert!(sums.funcs[0]
            .accesses
            .iter()
            .all(|a| a.chain.len() <= 2));
        let mhp = Mhp::build(&file);
        let rules: Vec<InterRule> =
            interproc_findings(&res, &cfgs, &cg, &sums, &mhp, &BTreeSet::new())
                .into_iter()
                .map(|f| f.rule)
                .collect();
        assert!(rules.contains(&InterRule::UnsyncedSpawnedCall), "{rules:?}");
    }

    #[test]
    fn wait_kill_point_suppresses_the_spawned_chain_report() {
        let fixed = r"
package p
var total int
func sum(n int) {
    if n > 0 {
        total = total + n
        sum(n - 1)
    }
}
func Run() {
    var wg sync.WaitGroup
    wg.Add(1)
    go func() {
        sum(8)
        wg.Done()
    }()
    wg.Wait()
    report(total)
}
";
        assert!(inter_rules(fixed).is_empty(), "{:?}", inter_rules(fixed));
    }

    #[test]
    fn spawning_helper_and_map_effects_propagate_through_params() {
        let src = r"
package p
func spawnWorker(fn func()) {
    go fn()
}
func relay(fn func()) {
    spawnWorker(fn)
}
func fill(m map[string]int, keys []string) {
    for _, k := range keys {
        go put(m, k)
    }
}
func put(m map[string]int, k string) {
    m[k] = 1
}
";
        let file = parse_file(src).expect("parses");
        let res = resolve_file(&file);
        let cfgs = build_file(&file, &res);
        let cg = CallGraph::build(&cfgs);
        let sums = Summaries::compute(&file, &res, &cfgs, &cg);
        assert!(sums.funcs[0].spawns_params.contains(&0), "direct spawn");
        assert!(sums.funcs[1].spawns_params.contains(&0), "transitive spawn");
        assert!(sums.funcs[3].map_write_params.contains(&0), "put writes m");
        assert!(
            sums.funcs[2].spawned_map_write_params.contains(&0),
            "fill spawns put over its parameter"
        );
    }
}
