//! Static race lints for the paper's §4 patterns plus the Table-3 lockset
//! rules.
//!
//! The paper closes with: "We believe the bug patterns in Go presented in
//! this paper can inspire further research in static race detection for
//! Go." This module is that idea taken seriously: the capture rules run on
//! real lexical resolution ([`resolve`](crate::resolve)) instead of a
//! free-variable approximation — a closure parameter or an earlier `:=`
//! shadow genuinely unbinds a name — and the locking rules come from an
//! Eraser-style lockset dataflow over the control-flow graph
//! ([`lockset`](crate::lockset)). Each rule fires on its paper listing and
//! stays quiet on the fixed variant (see the crate's listing tests).

use std::collections::{BTreeSet, HashSet};

use crate::ast::{Block, Decl, Expr, File, FuncDecl, Stmt};
use crate::callgraph::CallGraph;
use crate::cfg;
use crate::lockset::{self, LockRule};
use crate::mhp::Mhp;
use crate::resolve::{resolve_file, Resolution, SymbolId, SymbolKind};
use crate::summary::{self, InterRule, Summaries};
use crate::token::Pos;

/// Which lint fired. Ordered the way Tables 2 and 3 present the classes:
/// shared-memory misuse first (capture, maps, locking), message-order last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Listing 1: a goroutine closure captures a loop variable.
    LoopVarCapture,
    /// Listing 2: a goroutine closure captures an `err` variable also
    /// assigned outside.
    ErrCapture,
    /// Listings 3–4: a goroutine closure captures a named return variable.
    NamedReturnCapture,
    /// Listing 6: a map declared outside a goroutine written inside it.
    MapWriteInGoroutine,
    /// Listing 7: a `sync.Mutex`/`sync.RWMutex` parameter passed by value.
    MutexByValue,
    /// Listing 10: `WaitGroup.Add` inside the goroutine it accounts for.
    WaitGroupAddInGoroutine,
    /// A variable guarded by a lock at some sites and bare at others.
    MissingLock,
    /// Every access locks, but no single lock covers all of them.
    InconsistentLock,
    /// Listing 11: a write inside an `RLock`-protected section.
    WriteUnderRLock,
    /// `sync/atomic` operations mixed with plain accesses of the same
    /// variable.
    AtomicMixedWithPlain,
    /// An unsynchronized fast-path check before a locked re-check.
    DoubleCheckedLocking,
    /// Table 3's "incorrect order of statements": a goroutine is launched
    /// before a variable it reads is initialized in the same block.
    GoroutineBeforeInit,
    /// Interprocedural missing lock: bare on some call paths, guarded on
    /// others (the lock lives in a helper the bare path skips).
    InterprocMissingLock,
    /// Interprocedural inconsistent lock: every call path locks, but no
    /// lock is common to all of them.
    InterprocInconsistentLock,
    /// A closure capturing a loop variable or `err` handed to a helper
    /// function that launches it as a goroutine.
    EscapingCaptureToSpawner,
    /// A lock released before a call whose chain still touches the
    /// protected variable.
    LockDroppedBeforeCall,
    /// A map passed to a callee that writes it from spawned goroutines.
    SpawnInCalleeMapWrite,
    /// A spawned call chain's write unsynchronized with — and parallel
    /// to — the parent function's own access.
    UnsyncedSpawnedCall,
}

/// Diagnostic severity for a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious shape that needs human judgment.
    Warning,
    /// A shape the paper documents as a production race.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 18] = [
        Rule::LoopVarCapture,
        Rule::ErrCapture,
        Rule::NamedReturnCapture,
        Rule::MapWriteInGoroutine,
        Rule::MutexByValue,
        Rule::WaitGroupAddInGoroutine,
        Rule::MissingLock,
        Rule::InconsistentLock,
        Rule::WriteUnderRLock,
        Rule::AtomicMixedWithPlain,
        Rule::DoubleCheckedLocking,
        Rule::GoroutineBeforeInit,
        Rule::InterprocMissingLock,
        Rule::InterprocInconsistentLock,
        Rule::EscapingCaptureToSpawner,
        Rule::LockDroppedBeforeCall,
        Rule::SpawnInCalleeMapWrite,
        Rule::UnsyncedSpawnedCall,
    ];

    /// Stable machine-readable identifier (`GR001`…`GR018`).
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::LoopVarCapture => "GR001",
            Rule::ErrCapture => "GR002",
            Rule::NamedReturnCapture => "GR003",
            Rule::MapWriteInGoroutine => "GR004",
            Rule::MutexByValue => "GR005",
            Rule::WaitGroupAddInGoroutine => "GR006",
            Rule::MissingLock => "GR007",
            Rule::InconsistentLock => "GR008",
            Rule::WriteUnderRLock => "GR009",
            Rule::AtomicMixedWithPlain => "GR010",
            Rule::DoubleCheckedLocking => "GR011",
            Rule::GoroutineBeforeInit => "GR012",
            Rule::InterprocMissingLock => "GR013",
            Rule::InterprocInconsistentLock => "GR014",
            Rule::EscapingCaptureToSpawner => "GR015",
            Rule::LockDroppedBeforeCall => "GR016",
            Rule::SpawnInCalleeMapWrite => "GR017",
            Rule::UnsyncedSpawnedCall => "GR018",
        }
    }

    /// The rule for a `GR0xx` identifier.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    /// Severity: the heuristic order/initialization shapes warn — the
    /// spawned-chain rule joins them, since "parallel" there is a
    /// may-analysis — the rest are documented production races.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Rule::GoroutineBeforeInit
            | Rule::DoubleCheckedLocking
            | Rule::UnsyncedSpawnedCall => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Rule::LoopVarCapture => "loop-variable captured by goroutine",
            Rule::ErrCapture => "err variable captured by goroutine",
            Rule::NamedReturnCapture => "named return captured by goroutine",
            Rule::MapWriteInGoroutine => "map written inside goroutine",
            Rule::MutexByValue => "mutex passed by value",
            Rule::WaitGroupAddInGoroutine => "WaitGroup.Add inside goroutine",
            Rule::MissingLock => "lock missing at some access sites",
            Rule::InconsistentLock => "no common lock across access sites",
            Rule::WriteUnderRLock => "write under RLock",
            Rule::AtomicMixedWithPlain => "atomic mixed with plain access",
            Rule::DoubleCheckedLocking => "double-checked locking",
            Rule::GoroutineBeforeInit => "goroutine launched before initialization",
            Rule::InterprocMissingLock => "lock missing on some call paths",
            Rule::InterprocInconsistentLock => "no common lock across call paths",
            Rule::EscapingCaptureToSpawner => "capture escapes into spawning helper",
            Rule::LockDroppedBeforeCall => "lock released before racy call",
            Rule::SpawnInCalleeMapWrite => "map filled concurrently by callee",
            Rule::UnsyncedSpawnedCall => "spawned call chain unsynchronized",
        };
        f.write_str(s)
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Source position.
    pub pos: Pos,
    /// Enclosing function name.
    pub func: String,
    /// Explanation.
    pub message: String,
    /// Shortest call chain evidencing the finding, as `(callee, call
    /// position)` hops — empty for intraprocedural rules.
    pub chain: Vec<(String, Pos)>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: [{}] in {}: {}",
            self.pos, self.rule, self.func, self.message
        )?;
        if let Some((callee, pos)) = self.chain.first() {
            write!(f, " (via {callee} called at {pos})")?;
        }
        Ok(())
    }
}

/// Lints every function in the file: capture rules on the resolved scopes,
/// locking rules from the lockset dataflow, interprocedural rules from the
/// call graph and function summaries.
#[must_use]
pub fn lint_file(file: &File) -> Vec<Finding> {
    let res = resolve_file(file);
    let mut findings = Vec::new();
    for decl in &file.decls {
        if let Decl::Func(f) = decl {
            lint_func(f, &res, &mut findings);
        }
    }

    // One CFG build feeds the lockset pass, the call graph, and the
    // summaries. The lockset group rules are scoped to analysis roots:
    // accesses inside called functions are judged through their call
    // chains by the interprocedural rules instead of being double-counted
    // intraprocedurally.
    let cfgs = cfg::build_file(file, &res);
    let cg = CallGraph::build(&cfgs);
    let called = cg.called();
    let lock_findings = lockset::analyze_cfgs_scoped(&cfgs, &called);
    let mut seen_vars: BTreeSet<cfg::VarKey> = BTreeSet::new();
    for lf in lock_findings {
        seen_vars.insert(lf.var.clone());
        findings.push(Finding {
            rule: match lf.rule {
                LockRule::MissingLock => Rule::MissingLock,
                LockRule::InconsistentLock => Rule::InconsistentLock,
                LockRule::AtomicMixedWithPlain => Rule::AtomicMixedWithPlain,
                LockRule::DoubleCheckedLocking => Rule::DoubleCheckedLocking,
                LockRule::WriteUnderRlock => Rule::WriteUnderRLock,
            },
            pos: lf.pos,
            func: lf.func,
            message: lf.message,
            chain: Vec::new(),
        });
    }

    let sums = Summaries::compute(file, &res, &cfgs, &cg);
    let mhp = Mhp::build(file);
    for inf in summary::interproc_findings(&res, &cfgs, &cg, &sums, &mhp, &seen_vars) {
        findings.push(Finding {
            rule: match inf.rule {
                InterRule::MissingLockInterproc => Rule::InterprocMissingLock,
                InterRule::InconsistentLockInterproc => Rule::InterprocInconsistentLock,
                InterRule::EscapingCapture => Rule::EscapingCaptureToSpawner,
                InterRule::LockDroppedBeforeCall => Rule::LockDroppedBeforeCall,
                InterRule::SpawnInCalleeMapWrite => Rule::SpawnInCalleeMapWrite,
                InterRule::UnsyncedSpawnedCall => Rule::UnsyncedSpawnedCall,
            },
            pos: inf.pos,
            func: inf.func,
            message: inf.message,
            chain: inf.chain.into_iter().map(|h| (h.func, h.pos)).collect(),
        });
    }

    // Deterministic, path-independent order: position first, then the
    // stable rule ID; drop exact duplicates a rule pair may have produced.
    findings.sort_by(|a, b| (a.pos, a.rule.id()).cmp(&(b.pos, b.rule.id())));
    findings.dedup_by(|b, a| a.rule == b.rule && a.pos == b.pos && a.func == b.func);
    findings
}

/// A goroutine launched with an inline closure: `go func(...) {...}(args)`.
struct GoClosure<'a> {
    pos: Pos,
    body: &'a Block,
}

fn lint_func(f: &FuncDecl, res: &Resolution, findings: &mut Vec<Finding>) {
    let Some(body) = &f.body else { return };

    // Rule: MutexByValue — any by-value sync.Mutex/RWMutex parameter.
    for p in &f.sig.params {
        if matches!(p.ty.name(), Some("sync.Mutex" | "sync.RWMutex")) {
            findings.push(Finding {
                rule: Rule::MutexByValue,
                pos: f.pos,
                func: f.name.clone(),
                message: format!(
                    "parameter `{}` copies the mutex; critical sections using the \
                     copy exclude nothing (use *{})",
                    p.name,
                    p.ty.name().unwrap_or("sync.Mutex")
                ),
                chain: Vec::new(),
            });
        }
    }

    let mut closures: Vec<GoClosure<'_>> = Vec::new();
    collect_go_closures(body, &mut closures);
    let has_wait_call = calls_method(body, "Wait");

    for gc in &closures {
        // Real capture sets from resolution: a closure parameter or an
        // earlier same-name `:=` inside the closure means the name is NOT
        // captured — the old free-variable scan could not tell.
        let captured = res.captures_at(gc.pos);

        for &sym_id in captured {
            let sym = res.symbol(sym_id);
            match sym.kind {
                // Rule: LoopVarCapture — the goroutine reads a variable the
                // loop advances concurrently.
                SymbolKind::LoopVar => findings.push(Finding {
                    rule: Rule::LoopVarCapture,
                    pos: gc.pos,
                    func: f.name.clone(),
                    message: format!(
                        "goroutine captures loop variable `{}` by reference; the \
                         loop advances it concurrently",
                        sym.name
                    ),
                    chain: Vec::new(),
                }),
                // Rule: NamedReturnCapture — every `return` writes the
                // captured variable.
                SymbolKind::NamedResult => findings.push(Finding {
                    rule: Rule::NamedReturnCapture,
                    pos: gc.pos,
                    func: f.name.clone(),
                    message: format!(
                        "goroutine captures named return `{}`; every return \
                         statement writes it",
                        sym.name
                    ),
                    chain: Vec::new(),
                }),
                // Rule: ErrCapture — the enclosing function keeps assigning
                // the same `err` binding (`y, err := Baz()` reuses it).
                _ if sym.name == "err" => findings.push(Finding {
                    rule: Rule::ErrCapture,
                    pos: gc.pos,
                    func: f.name.clone(),
                    message: "goroutine captures `err` by reference while the \
                              enclosing function keeps assigning it"
                        .to_string(),
                    chain: Vec::new(),
                }),
                _ => {}
            }
        }

        // Rule: WaitGroupAddInGoroutine.
        if has_wait_call && calls_method(gc.body, "Add") {
            findings.push(Finding {
                rule: Rule::WaitGroupAddInGoroutine,
                pos: gc.pos,
                func: f.name.clone(),
                message: "wg.Add inside the goroutine may run after Wait() — move \
                          it before the `go` statement"
                    .to_string(),
                chain: Vec::new(),
            });
        }

        // Rule: MapWriteInGoroutine — an indexed write whose base is a
        // captured (outer) variable.
        for (base_pos, base_name, pos) in indexed_assign_bases(gc.body) {
            let captured_base = res
                .use_at(base_pos)
                .is_some_and(|id| res.captures_symbol(gc.pos, id));
            if captured_base {
                findings.push(Finding {
                    rule: Rule::MapWriteInGoroutine,
                    pos,
                    func: f.name.clone(),
                    message: format!(
                        "`{base_name}[...]` is written inside a goroutine while \
                         declared outside; Go maps are not thread-safe"
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }

    lint_goroutine_before_init(body, f, res, findings);
}

/// Scans each block for `go func(){ ... x ... }()` followed (later in the
/// same block) by an assignment to the same resolved symbol — the launch
/// raced ahead of the initialization it depends on.
fn lint_goroutine_before_init(
    block: &Block,
    f: &FuncDecl,
    res: &Resolution,
    findings: &mut Vec<Finding>,
) {
    for (i, stmt) in block.stmts.iter().enumerate() {
        if let Stmt::Go {
            pos,
            call: Expr::Call { func: callee, .. },
        } = stmt
        {
            if let Expr::FuncLit { pos: lit_pos, .. } = callee.as_ref() {
                let mut later: HashSet<SymbolId> = HashSet::new();
                for s in &block.stmts[i + 1..] {
                    collect_assign_symbols(s, res, &mut later);
                }
                for &sym_id in res.captures_at(*lit_pos) {
                    let sym = res.symbol(sym_id);
                    // ErrCapture owns the err idiom.
                    if sym.name == "err" || !later.contains(&sym_id) {
                        continue;
                    }
                    findings.push(Finding {
                        rule: Rule::GoroutineBeforeInit,
                        pos: *pos,
                        func: f.name.clone(),
                        message: format!(
                            "goroutine reads `{}`, which is assigned only \
                             after the `go` statement",
                            sym.name
                        ),
                        chain: Vec::new(),
                    });
                }
            }
        }
        // Recurse into nested blocks.
        match stmt {
            Stmt::If { then, els, .. } => {
                lint_goroutine_before_init(then, f, res, findings);
                if let Some(e) = els {
                    if let Stmt::Block(b) = e.as_ref() {
                        lint_goroutine_before_init(b, f, res, findings);
                    }
                }
            }
            Stmt::Block(b) => lint_goroutine_before_init(b, f, res, findings),
            Stmt::For { body, .. } => lint_goroutine_before_init(body, f, res, findings),
            _ => {}
        }
    }
}

/// Symbols assigned by one statement (identifier bases of selectors and
/// indexes included; closure bodies excluded).
fn collect_assign_symbols(stmt: &Stmt, res: &Resolution, out: &mut HashSet<SymbolId>) {
    fn base_symbol(e: &Expr, res: &Resolution, out: &mut HashSet<SymbolId>) {
        match e {
            Expr::Ident(pos, _) => {
                if let Some(id) = res.use_at(*pos) {
                    out.insert(id);
                }
            }
            Expr::Selector(b, _) | Expr::Index(b, _) | Expr::Paren(b) => base_symbol(b, res, out),
            Expr::Unary { op: "*", expr } => base_symbol(expr, res, out),
            _ => {}
        }
    }
    match stmt {
        Stmt::Assign { lhs, .. } => {
            for e in lhs {
                base_symbol(e, res, out);
            }
        }
        // `y, x := ...` assigns x when it reuses an existing binding; the
        // resolver records that reuse as a use at the statement position.
        Stmt::Define { pos, .. } => {
            if let Some(id) = res.use_at(*pos) {
                out.insert(id);
            }
        }
        Stmt::IncDec { expr, .. } => base_symbol(expr, res, out),
        _ => {}
    }
}

fn collect_go_closures<'a>(block: &'a Block, out: &mut Vec<GoClosure<'a>>) {
    for stmt in &block.stmts {
        collect_go_in_stmt(stmt, out);
    }
}

fn collect_go_in_stmt<'a>(stmt: &'a Stmt, out: &mut Vec<GoClosure<'a>>) {
    match stmt {
        Stmt::Go {
            call: Expr::Call { func, .. },
            ..
        } => {
            if let Expr::FuncLit { pos, body, .. } = func.as_ref() {
                out.push(GoClosure { pos: *pos, body });
                // Nested goroutines inside this closure still matter.
                collect_go_closures(body, out);
            }
        }
        Stmt::For { body, .. } => collect_go_closures(body, out),
        Stmt::If { then, els, .. } => {
            collect_go_closures(then, out);
            if let Some(e) = els {
                collect_go_in_stmt(e, out);
            }
        }
        Stmt::Block(b) => collect_go_closures(b, out),
        Stmt::Switch { cases, .. } => {
            for c in cases {
                for s in &c.body {
                    collect_go_in_stmt(s, out);
                }
            }
        }
        Stmt::Select { cases, .. } => {
            for c in cases {
                for s in &c.body {
                    collect_go_in_stmt(s, out);
                }
            }
        }
        _ => {}
    }
}

/// Does the block (at any depth) call a method with this name?
fn calls_method(block: &Block, method: &str) -> bool {
    let mut found = false;
    let mut check = |e: &Expr| {
        if let Expr::Call { func, .. } = e {
            if let Expr::Selector(_, m) = func.as_ref() {
                if m == method {
                    found = true;
                }
            }
        }
    };
    walk_exprs(block, &mut check);
    found
}

/// Base identifiers of indexed assignments `base[...] = ...` at any depth:
/// `(position of the base identifier, its name, statement position)`.
fn indexed_assign_bases(block: &Block) -> Vec<(Pos, String, Pos)> {
    let mut out = Vec::new();
    fn walk(b: &Block, out: &mut Vec<(Pos, String, Pos)>) {
        for s in &b.stmts {
            walk_stmt(s, out);
        }
    }
    fn walk_stmt(s: &Stmt, out: &mut Vec<(Pos, String, Pos)>) {
        match s {
            Stmt::Assign { pos, lhs, .. } => {
                for e in lhs {
                    if let Expr::Index(base, _) = e {
                        if let Expr::Ident(bp, n) = base.as_ref() {
                            out.push((*bp, n.clone(), *pos));
                        }
                    }
                }
            }
            Stmt::If { then, els, .. } => {
                walk(then, out);
                if let Some(e) = els {
                    walk_stmt(e, out);
                }
            }
            Stmt::Block(b) => walk(b, out),
            Stmt::For { body, .. } => walk(body, out),
            Stmt::Switch { cases, .. } => {
                for c in cases {
                    for s in &c.body {
                        walk_stmt(s, out);
                    }
                }
            }
            Stmt::Select { cases, .. } => {
                for c in cases {
                    for s in &c.body {
                        walk_stmt(s, out);
                    }
                }
            }
            _ => {}
        }
    }
    walk(block, &mut out);
    out
}

/// Applies `f` to every expression in the block, at any depth (closures
/// included).
fn walk_exprs(block: &Block, f: &mut (dyn FnMut(&Expr) + '_)) {
    for s in &block.stmts {
        walk_exprs_stmt(s, f);
    }
}

fn walk_exprs_stmt(s: &Stmt, f: &mut (dyn FnMut(&Expr) + '_)) {
    let on_expr = |e: &Expr, f: &mut dyn FnMut(&Expr)| walk_exprs_expr(e, f);
    match s {
        Stmt::Decl(v) => {
            for e in &v.values {
                on_expr(e, f);
            }
        }
        Stmt::Define { values, .. } => {
            for e in values {
                on_expr(e, f);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            for e in lhs.iter().chain(rhs.iter()) {
                on_expr(e, f);
            }
        }
        Stmt::IncDec { expr, .. } => on_expr(expr, f),
        Stmt::Expr(e) => on_expr(e, f),
        Stmt::Send { chan, value, .. } => {
            on_expr(chan, f);
            on_expr(value, f);
        }
        Stmt::Go { call, .. } | Stmt::Defer { call, .. } => on_expr(call, f),
        Stmt::Return { values, .. } => {
            for e in values {
                on_expr(e, f);
            }
        }
        Stmt::If {
            init,
            cond,
            then,
            els,
            ..
        } => {
            if let Some(i) = init {
                walk_exprs_stmt(i, f);
            }
            on_expr(cond, f);
            walk_exprs(then, f);
            if let Some(e) = els {
                walk_exprs_stmt(e, f);
            }
        }
        Stmt::Block(b) => walk_exprs(b, f),
        Stmt::For {
            init,
            cond,
            post,
            range,
            body,
            ..
        } => {
            if let Some(i) = init {
                walk_exprs_stmt(i, f);
            }
            if let Some(c) = cond {
                on_expr(c, f);
            }
            if let Some(p) = post {
                walk_exprs_stmt(p, f);
            }
            if let Some(r) = range {
                on_expr(&r.expr, f);
            }
            walk_exprs(body, f);
        }
        Stmt::Switch { tag, cases, .. } => {
            if let Some(t) = tag {
                on_expr(t, f);
            }
            for c in cases {
                for e in &c.exprs {
                    on_expr(e, f);
                }
                for s in &c.body {
                    walk_exprs_stmt(s, f);
                }
            }
        }
        Stmt::Select { cases, .. } => {
            for c in cases {
                if let Some(comm) = &c.comm {
                    walk_exprs_stmt(comm, f);
                }
                for s in &c.body {
                    walk_exprs_stmt(s, f);
                }
            }
        }
        Stmt::Branch { .. } | Stmt::Empty => {}
    }
}

fn walk_exprs_expr(e: &Expr, f: &mut (dyn FnMut(&Expr) + '_)) {
    f(e);
    match e {
        Expr::Selector(base, _) => walk_exprs_expr(base, f),
        Expr::Call { func, args, .. } => {
            walk_exprs_expr(func, f);
            for a in args {
                walk_exprs_expr(a, f);
            }
        }
        Expr::Index(b, i) => {
            walk_exprs_expr(b, f);
            walk_exprs_expr(i, f);
        }
        Expr::SliceExpr { expr, low, high } => {
            walk_exprs_expr(expr, f);
            if let Some(l) = low {
                walk_exprs_expr(l, f);
            }
            if let Some(h) = high {
                walk_exprs_expr(h, f);
            }
        }
        Expr::Unary { expr, .. } => walk_exprs_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } => {
            walk_exprs_expr(lhs, f);
            walk_exprs_expr(rhs, f);
        }
        Expr::FuncLit { body, .. } => {
            for st in &body.stmts {
                walk_exprs_stmt(st, f);
            }
        }
        Expr::CompositeLit { elems, .. } => {
            for (k, v) in elems {
                if let Some(k) = k {
                    walk_exprs_expr(k, f);
                }
                walk_exprs_expr(v, f);
            }
        }
        Expr::Paren(inner) => walk_exprs_expr(inner, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn rules(src: &str) -> Vec<Rule> {
        let file = parse_file(src).expect("parses");
        lint_file(&file).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn rule_ids_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_id(r.id()), Some(r));
        }
        assert_eq!(Rule::from_id("GR999"), None);
    }

    #[test]
    fn severities_are_assigned() {
        assert_eq!(Rule::MissingLock.severity(), Severity::Error);
        assert_eq!(Rule::GoroutineBeforeInit.severity(), Severity::Warning);
        assert_eq!(Rule::DoubleCheckedLocking.severity(), Severity::Warning);
    }

    #[test]
    fn closure_param_shadow_suppresses_capture() {
        let src = r"
package p
func f(jobs []int) {
    for _, job := range jobs {
        go func(job int) {
            use(job)
        }(job)
    }
}
";
        assert!(!rules(src).contains(&Rule::LoopVarCapture));
    }

    #[test]
    fn inner_define_shadow_suppresses_capture() {
        // The pre-Go-1.22 fix idiom: a per-iteration copy inside the loop.
        let src = r"
package p
func f(jobs []int) {
    for _, job := range jobs {
        job := job
        go func() {
            use(job)
        }()
    }
}
";
        assert!(!rules(src).contains(&Rule::LoopVarCapture));
    }

    #[test]
    fn late_shadow_does_not_protect_earlier_use() {
        // The use precedes the shadowing `:=`, so it still resolves to the
        // loop variable: racy.
        let src = r"
package p
func f(jobs []int) {
    for _, job := range jobs {
        go func() {
            use(job)
            job := fresh()
            use(job)
        }()
    }
}
";
        assert!(rules(src).contains(&Rule::LoopVarCapture));
    }

    #[test]
    fn lockset_rules_surface_through_lint_file() {
        let src = r"
package p
var version int
func Set(v int) {
    mu.Lock()
    version = v
    mu.Unlock()
}
func Get() int {
    return version
}
";
        let rs = rules(src);
        assert!(rs.contains(&Rule::MissingLock), "{rs:?}");
    }
}
