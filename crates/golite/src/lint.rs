//! Static race lints for the §4 patterns.
//!
//! The paper closes with: "We believe the bug patterns in Go presented in
//! this paper can inspire further research in static race detection for
//! Go." These lints are that idea in miniature: syntactic detectors, one
//! per pattern, over the Go-lite AST. They are heuristics — a free-variable
//! approximation stands in for full scope resolution — but each fires on
//! its paper listing and stays quiet on the fixed variants (see the crate's
//! listing tests).

#![allow(clippy::collapsible_match)]

use std::collections::HashSet;

use crate::ast::*;
use crate::token::Pos;

/// Which lint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Listing 1: a goroutine closure captures a loop variable.
    LoopVarCapture,
    /// Listing 2: a goroutine closure captures an `err` variable also
    /// assigned outside.
    ErrCapture,
    /// Listings 3–4: a goroutine closure captures a named return variable.
    NamedReturnCapture,
    /// Listing 10: `WaitGroup.Add` inside the goroutine it accounts for.
    WaitGroupAddInGoroutine,
    /// Listing 7: a `sync.Mutex`/`sync.RWMutex` parameter passed by value.
    MutexByValue,
    /// Listing 6: a map declared outside a goroutine written inside it.
    MapWriteInGoroutine,
    /// Listing 11: an assignment inside an `RLock`-protected section.
    WriteUnderRLock,
    /// Table 3's "incorrect order of statements": a goroutine is launched
    /// before a variable it reads is initialized in the same block.
    GoroutineBeforeInit,
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Rule::LoopVarCapture => "loop-variable captured by goroutine",
            Rule::ErrCapture => "err variable captured by goroutine",
            Rule::NamedReturnCapture => "named return captured by goroutine",
            Rule::WaitGroupAddInGoroutine => "WaitGroup.Add inside goroutine",
            Rule::MutexByValue => "mutex passed by value",
            Rule::MapWriteInGoroutine => "map written inside goroutine",
            Rule::WriteUnderRLock => "write under RLock",
            Rule::GoroutineBeforeInit => "goroutine launched before initialization",
        };
        f.write_str(s)
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Source position.
    pub pos: Pos,
    /// Enclosing function name.
    pub func: String,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: [{}] in {}: {}", self.pos, self.rule, self.func, self.message)
    }
}

/// Lints every function in the file.
#[must_use]
pub fn lint_file(file: &File) -> Vec<Finding> {
    let mut findings = Vec::new();
    for decl in &file.decls {
        if let Decl::Func(f) = decl {
            lint_func(f, &mut findings);
        }
    }
    findings
}

/// A goroutine launched with an inline closure: `go func(...) {...}(args)`.
struct GoClosure<'a> {
    pos: Pos,
    sig: &'a Signature,
    body: &'a Block,
    args: &'a [Expr],
}

fn lint_func(f: &FuncDecl, findings: &mut Vec<Finding>) {
    let Some(body) = &f.body else { return };

    // Rule: MutexByValue — any by-value sync.Mutex/RWMutex parameter.
    for p in &f.sig.params {
        if matches!(
            p.ty.name(),
            Some("sync.Mutex" | "sync.RWMutex")
        ) {
            findings.push(Finding {
                rule: Rule::MutexByValue,
                pos: f.pos,
                func: f.name.clone(),
                message: format!(
                    "parameter `{}` copies the mutex; critical sections using the \
                     copy exclude nothing (use *{})",
                    p.name,
                    p.ty.name().unwrap_or("sync.Mutex")
                ),
            });
        }
    }

    let named_returns: Vec<&str> = f
        .sig
        .results
        .iter()
        .filter(|r| !r.name.is_empty() && r.name != "_")
        .map(|r| r.name.as_str())
        .collect();

    // Collect all goroutine closures (with their surrounding loop vars) and
    // the set of assignment targets in the function outside closures.
    let mut closures: Vec<(GoClosure<'_>, Vec<String>)> = Vec::new();
    collect_go_closures(body, &mut Vec::new(), &mut closures);
    let outer_assigned = assigned_names_outside_closures(body);
    let has_wait_call = calls_method(body, "Wait");

    for (gc, loop_vars) in &closures {
        let free = free_idents(gc.sig, gc.body);
        // Loop variable capture — unless the variable is re-passed as a
        // call argument with the same name (the privatizing idiom).
        for lv in loop_vars {
            if free.contains(lv.as_str()) && !arg_shadows(gc, lv) {
                findings.push(Finding {
                    rule: Rule::LoopVarCapture,
                    pos: gc.pos,
                    func: f.name.clone(),
                    message: format!(
                        "goroutine captures loop variable `{lv}` by reference; the \
                         loop advances it concurrently"
                    ),
                });
            }
        }
        // err capture: `err` free in the closure AND assigned outside too.
        if free.contains("err")
            && outer_assigned.contains("err")
            && !arg_shadows(gc, "err")
        {
            findings.push(Finding {
                rule: Rule::ErrCapture,
                pos: gc.pos,
                func: f.name.clone(),
                message: "goroutine captures `err` by reference while the enclosing \
                          function keeps assigning it"
                    .to_string(),
            });
        }
        // Named return capture.
        for nr in &named_returns {
            if free.contains(*nr) && !arg_shadows(gc, nr) {
                findings.push(Finding {
                    rule: Rule::NamedReturnCapture,
                    pos: gc.pos,
                    func: f.name.clone(),
                    message: format!(
                        "goroutine captures named return `{nr}`; every return \
                         statement writes it"
                    ),
                });
            }
        }
        // WaitGroup.Add inside the goroutine body.
        if has_wait_call && calls_method(gc.body, "Add") {
            findings.push(Finding {
                rule: Rule::WaitGroupAddInGoroutine,
                pos: gc.pos,
                func: f.name.clone(),
                message: "wg.Add inside the goroutine may run after Wait() — move \
                          it before the `go` statement"
                    .to_string(),
            });
        }
        // Map write in goroutine: indexed assignment to a free base.
        for (base, pos) in indexed_assign_bases(gc.body) {
            if free.contains(base.as_str()) {
                findings.push(Finding {
                    rule: Rule::MapWriteInGoroutine,
                    pos,
                    func: f.name.clone(),
                    message: format!(
                        "`{base}[...]` is written inside a goroutine while declared \
                         outside; Go maps are not thread-safe"
                    ),
                });
            }
        }
    }

    // WriteUnderRLock: statement-ordered scan of each block.
    lint_rlock_writes(body, &f.name, findings);

    // GoroutineBeforeInit: a `go` closure reading a variable the SAME block
    // assigns afterwards.
    lint_goroutine_before_init(body, &f.name, findings);
}

/// Scans each block for `go func(){ ... x ... }()` followed (later in the
/// same block) by an assignment to `x` — the launch raced ahead of the
/// initialization it depends on.
fn lint_goroutine_before_init(block: &Block, func: &str, findings: &mut Vec<Finding>) {
    for (i, stmt) in block.stmts.iter().enumerate() {
        if let Stmt::Go { pos, call } = stmt {
            if let Expr::Call { func: callee, args, .. } = call {
                if let Expr::FuncLit { sig, body, .. } = callee.as_ref() {
                    let gc = GoClosure {
                        pos: *pos,
                        sig,
                        body,
                        args,
                    };
                    let free = free_idents(sig, body);
                    // Names assigned by LATER statements of this block
                    // (top level only; nested goroutines have their own
                    // ordering).
                    let mut later = HashSet::new();
                    for s in &block.stmts[i + 1..] {
                        collect_assign_targets(s, &mut later);
                    }
                    for name in free.intersection(&later) {
                        if name == "err" || arg_shadows(&gc, name) {
                            continue; // ErrCapture owns the err idiom
                        }
                        findings.push(Finding {
                            rule: Rule::GoroutineBeforeInit,
                            pos: *pos,
                            func: func.to_string(),
                            message: format!(
                                "goroutine reads `{name}`, which is assigned only                                  after the `go` statement"
                            ),
                        });
                    }
                }
            }
        }
        // Recurse into nested blocks.
        match stmt {
            Stmt::If { then, els, .. } => {
                lint_goroutine_before_init(then, func, findings);
                if let Some(e) = els {
                    if let Stmt::Block(b) = e.as_ref() {
                        lint_goroutine_before_init(b, func, findings);
                    }
                }
            }
            Stmt::Block(b) => lint_goroutine_before_init(b, func, findings),
            Stmt::For { body, .. } => lint_goroutine_before_init(body, func, findings),
            _ => {}
        }
    }
}

/// Top-level assignment/define targets of one statement (identifier bases
/// of selectors and indexes included; closure bodies excluded).
fn collect_assign_targets(stmt: &Stmt, out: &mut HashSet<String>) {
    fn base_ident(e: &Expr, out: &mut HashSet<String>) {
        match e {
            Expr::Ident(_, n) => {
                out.insert(n.clone());
            }
            Expr::Selector(b, _) | Expr::Index(b, _) | Expr::Paren(b) => base_ident(b, out),
            Expr::Unary { op: "*", expr } => base_ident(expr, out),
            _ => {}
        }
    }
    match stmt {
        Stmt::Assign { lhs, .. } => {
            for e in lhs {
                base_ident(e, out);
            }
        }
        Stmt::Define { names, .. } => out.extend(names.iter().cloned()),
        Stmt::IncDec { expr, .. } => base_ident(expr, out),
        _ => {}
    }
}

/// Is `name` passed as an argument whose parameter has the same name (the
/// `}(job)` privatizing idiom)?
fn arg_shadows(gc: &GoClosure<'_>, name: &str) -> bool {
    gc.sig.params.iter().any(|p| p.name == name)
        || gc
            .args
            .iter()
            .any(|a| a.as_ident() == Some(name))
}

fn collect_go_closures<'a>(
    block: &'a Block,
    loop_vars: &mut Vec<String>,
    out: &mut Vec<(GoClosure<'a>, Vec<String>)>,
) {
    for stmt in &block.stmts {
        collect_go_in_stmt(stmt, loop_vars, out);
    }
}

fn collect_go_in_stmt<'a>(
    stmt: &'a Stmt,
    loop_vars: &mut Vec<String>,
    out: &mut Vec<(GoClosure<'a>, Vec<String>)>,
) {
    match stmt {
        Stmt::Go { pos, call } => {
            if let Expr::Call { func, args, .. } = call {
                if let Expr::FuncLit { sig, body, .. } = func.as_ref() {
                    out.push((
                        GoClosure {
                            pos: *pos,
                            sig,
                            body,
                            args,
                        },
                        loop_vars.clone(),
                    ));
                    // Nested goroutines inside this closure still matter.
                    collect_go_closures(body, loop_vars, out);
                }
            }
        }

        Stmt::For { range, init, body, .. } => {
            let mut added = 0;
            if let Some(r) = range {
                if r.define {
                    for v in [&r.key, &r.value] {
                        if !v.is_empty() && v != "_" {
                            loop_vars.push(v.clone());
                            added += 1;
                        }
                    }
                }
            }
            if let Some(i) = init {
                if let Stmt::Define { names, .. } = i.as_ref() {
                    for n in names {
                        if n != "_" {
                            loop_vars.push(n.clone());
                            added += 1;
                        }
                    }
                }
            }
            collect_go_closures(body, loop_vars, out);
            loop_vars.truncate(loop_vars.len() - added);
        }
        Stmt::If { then, els, .. } => {
            collect_go_closures(then, loop_vars, out);
            if let Some(e) = els {
                collect_go_in_stmt(e, loop_vars, out);
            }
        }
        Stmt::Block(b) => collect_go_closures(b, loop_vars, out),
        Stmt::Switch { cases, .. } => {
            for c in cases {
                for s in &c.body {
                    collect_go_in_stmt(s, loop_vars, out);
                }
            }
        }
        Stmt::Select { cases, .. } => {
            for c in cases {
                for s in &c.body {
                    collect_go_in_stmt(s, loop_vars, out);
                }
            }
        }
        _ => {}
    }
}

/// Names bound inside a closure: parameters, `:=` defines, `var` decls,
/// and range variables (an approximation that ignores block scoping).
fn bound_names(sig: &Signature, block: &Block) -> HashSet<String> {
    let mut bound: HashSet<String> = sig
        .params
        .iter()
        .map(|p| p.name.clone())
        .filter(|n| !n.is_empty())
        .collect();
    fn walk(b: &Block, bound: &mut HashSet<String>) {
        for s in &b.stmts {
            walk_stmt(s, bound);
        }
    }
    fn walk_stmt(s: &Stmt, bound: &mut HashSet<String>) {
        match s {
            Stmt::Decl(v) => bound.extend(v.names.iter().cloned()),
            Stmt::Define { names, .. } => bound.extend(names.iter().cloned()),
            Stmt::If { init, then, els, .. } => {
                if let Some(i) = init {
                    walk_stmt(i, bound);
                }
                walk(then, bound);
                if let Some(e) = els {
                    walk_stmt(e, bound);
                }
            }
            Stmt::Block(b) => walk(b, bound),
            Stmt::For {
                init, range, body, ..
            } => {
                if let Some(i) = init {
                    walk_stmt(i, bound);
                }
                if let Some(r) = range {
                    if r.define {
                        bound.insert(r.key.clone());
                        bound.insert(r.value.clone());
                    }
                }
                walk(body, bound);
            }
            Stmt::Switch { cases, .. } => {
                for c in cases {
                    for s in &c.body {
                        walk_stmt(s, bound);
                    }
                }
            }
            Stmt::Select { cases, .. } => {
                for c in cases {
                    if let Some(comm) = &c.comm {
                        walk_stmt(comm, bound);
                    }
                    for s in &c.body {
                        walk_stmt(s, bound);
                    }
                }
            }
            _ => {}
        }
    }
    walk(block, &mut bound);
    bound
}

/// Identifiers referenced inside the closure body (selector field names and
/// nested closure parameters excluded).
fn free_idents(sig: &Signature, body: &Block) -> HashSet<String> {
    let bound = bound_names(sig, body);
    let mut used = HashSet::new();
    collect_used_block(body, &mut used);
    used.retain(|u| !bound.contains(u));
    used
}

fn collect_used_block(b: &Block, used: &mut HashSet<String>) {
    for s in &b.stmts {
        collect_used_stmt(s, used);
    }
}

fn collect_used_stmt(s: &Stmt, used: &mut HashSet<String>) {
    match s {
        Stmt::Decl(v) => {
            for e in &v.values {
                collect_used_expr(e, used);
            }
        }
        Stmt::Define { values, .. } => {
            for e in values {
                collect_used_expr(e, used);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            for e in lhs.iter().chain(rhs.iter()) {
                collect_used_expr(e, used);
            }
        }
        Stmt::IncDec { expr, .. } => collect_used_expr(expr, used),
        Stmt::Expr(e) => collect_used_expr(e, used),
        Stmt::Send { chan, value, .. } => {
            collect_used_expr(chan, used);
            collect_used_expr(value, used);
        }
        Stmt::Go { call, .. } | Stmt::Defer { call, .. } => collect_used_expr(call, used),
        Stmt::Return { values, .. } => {
            for e in values {
                collect_used_expr(e, used);
            }
        }
        Stmt::If {
            init,
            cond,
            then,
            els,
            ..
        } => {
            if let Some(i) = init {
                collect_used_stmt(i, used);
            }
            collect_used_expr(cond, used);
            collect_used_block(then, used);
            if let Some(e) = els {
                collect_used_stmt(e, used);
            }
        }
        Stmt::Block(b) => collect_used_block(b, used),
        Stmt::For {
            init,
            cond,
            post,
            range,
            body,
            ..
        } => {
            if let Some(i) = init {
                collect_used_stmt(i, used);
            }
            if let Some(c) = cond {
                collect_used_expr(c, used);
            }
            if let Some(p) = post {
                collect_used_stmt(p, used);
            }
            if let Some(r) = range {
                collect_used_expr(&r.expr, used);
            }
            collect_used_block(body, used);
        }
        Stmt::Switch { tag, cases, .. } => {
            if let Some(t) = tag {
                collect_used_expr(t, used);
            }
            for c in cases {
                for e in &c.exprs {
                    collect_used_expr(e, used);
                }
                for s in &c.body {
                    collect_used_stmt(s, used);
                }
            }
        }
        Stmt::Select { cases, .. } => {
            for c in cases {
                if let Some(comm) = &c.comm {
                    collect_used_stmt(comm, used);
                }
                for s in &c.body {
                    collect_used_stmt(s, used);
                }
            }
        }
        Stmt::Branch { .. } | Stmt::Empty => {}
    }
}

fn collect_used_expr(e: &Expr, used: &mut HashSet<String>) {
    match e {
        Expr::Ident(_, n) => {
            used.insert(n.clone());
        }
        Expr::Int(..) | Expr::Float(..) | Expr::Str(..) | Expr::Rune(..) => {}
        Expr::Selector(base, _) => collect_used_expr(base, used),
        Expr::Call { func, args, .. } => {
            collect_used_expr(func, used);
            for a in args {
                collect_used_expr(a, used);
            }
        }
        Expr::Index(b, i) => {
            collect_used_expr(b, used);
            collect_used_expr(i, used);
        }
        Expr::SliceExpr { expr, low, high } => {
            collect_used_expr(expr, used);
            if let Some(l) = low {
                collect_used_expr(l, used);
            }
            if let Some(h) = high {
                collect_used_expr(h, used);
            }
        }
        Expr::Unary { expr, .. } => collect_used_expr(expr, used),
        Expr::Binary { lhs, rhs, .. } => {
            collect_used_expr(lhs, used);
            collect_used_expr(rhs, used);
        }
        Expr::FuncLit { sig, body, .. } => {
            // Nested closure: only its own free variables escape to us.
            for f in free_idents(sig, body) {
                used.insert(f);
            }
        }
        Expr::CompositeLit { elems, .. } => {
            for (k, v) in elems {
                if let Some(k) = k {
                    collect_used_expr(k, used);
                }
                collect_used_expr(v, used);
            }
        }
        Expr::Paren(inner) => collect_used_expr(inner, used),
        Expr::TypeExpr(_) => {}
    }
}

/// Names assigned (`=`, `:=`) at any depth outside goroutine closures.
fn assigned_names_outside_closures(block: &Block) -> HashSet<String> {
    let mut names = HashSet::new();
    fn walk(b: &Block, names: &mut HashSet<String>) {
        for s in &b.stmts {
            walk_stmt(s, names);
        }
    }
    fn walk_stmt(s: &Stmt, names: &mut HashSet<String>) {
        match s {
            Stmt::Define { names: ns, .. } => names.extend(ns.iter().cloned()),
            Stmt::Assign { lhs, .. } => {
                for e in lhs {
                    if let Some(n) = e.as_ident() {
                        names.insert(n.to_string());
                    }
                }
            }
            Stmt::If { init, then, els, .. } => {
                if let Some(i) = init {
                    walk_stmt(i, names);
                }
                walk(then, names);
                if let Some(e) = els {
                    walk_stmt(e, names);
                }
            }
            Stmt::Block(b) => walk(b, names),
            Stmt::For { init, body, .. } => {
                if let Some(i) = init {
                    walk_stmt(i, names);
                }
                walk(body, names);
            }
            Stmt::Go { .. } => {} // closures excluded
            Stmt::Defer { .. } => {}
            Stmt::Switch { cases, .. } => {
                for c in cases {
                    for s in &c.body {
                        walk_stmt(s, names);
                    }
                }
            }
            Stmt::Select { cases, .. } => {
                for c in cases {
                    if let Some(comm) = &c.comm {
                        walk_stmt(comm, names);
                    }
                    for s in &c.body {
                        walk_stmt(s, names);
                    }
                }
            }
            _ => {}
        }
    }
    walk(block, &mut names);
    names
}

/// Does the block (at any depth) call a method with this name?
fn calls_method(block: &Block, method: &str) -> bool {
    let mut found = false;
    let mut check = |e: &Expr| {
        if let Expr::Call { func, .. } = e {
            if let Expr::Selector(_, m) = func.as_ref() {
                if m == method {
                    found = true;
                }
            }
        }
    };
    walk_exprs(block, &mut check);
    found
}

/// Base identifiers of indexed assignments `base[...] = ...` at any depth.
fn indexed_assign_bases(block: &Block) -> Vec<(String, Pos)> {
    let mut out = Vec::new();
    fn walk(b: &Block, out: &mut Vec<(String, Pos)>) {
        for s in &b.stmts {
            walk_stmt(s, out);
        }
    }
    fn walk_stmt(s: &Stmt, out: &mut Vec<(String, Pos)>) {
        match s {
            Stmt::Assign { pos, lhs, .. } => {
                for e in lhs {
                    if let Expr::Index(base, _) = e {
                        if let Some(n) = base.as_ident() {
                            out.push((n.to_string(), *pos));
                        }
                    }
                }
            }
            Stmt::If { then, els, .. } => {
                walk(then, out);
                if let Some(e) = els {
                    walk_stmt(e, out);
                }
            }
            Stmt::Block(b) => walk(b, out),
            Stmt::For { body, .. } => walk(body, out),
            Stmt::Switch { cases, .. } => {
                for c in cases {
                    for s in &c.body {
                        walk_stmt(s, out);
                    }
                }
            }
            Stmt::Select { cases, .. } => {
                for c in cases {
                    for s in &c.body {
                        walk_stmt(s, out);
                    }
                }
            }
            _ => {}
        }
    }
    walk(block, &mut out);
    out
}

/// Applies `f` to every expression in the block, at any depth (closures
/// included).
fn walk_exprs(block: &Block, f: &mut (dyn FnMut(&Expr) + '_)) {
    for s in &block.stmts {
        walk_exprs_stmt(s, f);
    }
}

fn walk_exprs_stmt_dyn(s: &Stmt, f: &mut (dyn FnMut(&Expr) + '_)) {
    walk_exprs_stmt(s, f);
}

fn walk_exprs_stmt(s: &Stmt, f: &mut (dyn FnMut(&Expr) + '_)) {
    let on_expr = |e: &Expr, f: &mut dyn FnMut(&Expr)| walk_exprs_expr(e, f);
    match s {
        Stmt::Decl(v) => {
            for e in &v.values {
                on_expr(e, f);
            }
        }
        Stmt::Define { values, .. } => {
            for e in values {
                on_expr(e, f);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            for e in lhs.iter().chain(rhs.iter()) {
                on_expr(e, f);
            }
        }
        Stmt::IncDec { expr, .. } => on_expr(expr, f),
        Stmt::Expr(e) => on_expr(e, f),
        Stmt::Send { chan, value, .. } => {
            on_expr(chan, f);
            on_expr(value, f);
        }
        Stmt::Go { call, .. } | Stmt::Defer { call, .. } => on_expr(call, f),
        Stmt::Return { values, .. } => {
            for e in values {
                on_expr(e, f);
            }
        }
        Stmt::If {
            init,
            cond,
            then,
            els,
            ..
        } => {
            if let Some(i) = init {
                walk_exprs_stmt(i, f);
            }
            on_expr(cond, f);
            walk_exprs(then, f);
            if let Some(e) = els {
                walk_exprs_stmt(e, f);
            }
        }
        Stmt::Block(b) => walk_exprs(b, f),
        Stmt::For {
            init,
            cond,
            post,
            range,
            body,
            ..
        } => {
            if let Some(i) = init {
                walk_exprs_stmt(i, f);
            }
            if let Some(c) = cond {
                on_expr(c, f);
            }
            if let Some(p) = post {
                walk_exprs_stmt(p, f);
            }
            if let Some(r) = range {
                on_expr(&r.expr, f);
            }
            walk_exprs(body, f);
        }
        Stmt::Switch { tag, cases, .. } => {
            if let Some(t) = tag {
                on_expr(t, f);
            }
            for c in cases {
                for e in &c.exprs {
                    on_expr(e, f);
                }
                for s in &c.body {
                    walk_exprs_stmt(s, f);
                }
            }
        }
        Stmt::Select { cases, .. } => {
            for c in cases {
                if let Some(comm) = &c.comm {
                    walk_exprs_stmt(comm, f);
                }
                for s in &c.body {
                    walk_exprs_stmt(s, f);
                }
            }
        }
        Stmt::Branch { .. } | Stmt::Empty => {}
    }
}

fn walk_exprs_expr(e: &Expr, f: &mut (dyn FnMut(&Expr) + '_)) {
    f(e);
    match e {
        Expr::Selector(base, _) => walk_exprs_expr(base, f),
        Expr::Call { func, args, .. } => {
            walk_exprs_expr(func, f);
            for a in args {
                walk_exprs_expr(a, f);
            }
        }
        Expr::Index(b, i) => {
            walk_exprs_expr(b, f);
            walk_exprs_expr(i, f);
        }
        Expr::SliceExpr { expr, low, high } => {
            walk_exprs_expr(expr, f);
            if let Some(l) = low {
                walk_exprs_expr(l, f);
            }
            if let Some(h) = high {
                walk_exprs_expr(h, f);
            }
        }
        Expr::Unary { expr, .. } => walk_exprs_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } => {
            walk_exprs_expr(lhs, f);
            walk_exprs_expr(rhs, f);
        }
        Expr::FuncLit { body, .. } => {
            for st in &body.stmts {
                walk_exprs_stmt_dyn(st, f);
            }
        }
        Expr::CompositeLit { elems, .. } => {
            for (k, v) in elems {
                if let Some(k) = k {
                    walk_exprs_expr(k, f);
                }
                walk_exprs_expr(v, f);
            }
        }
        Expr::Paren(inner) => walk_exprs_expr(inner, f),
        _ => {}
    }
}

/// Scans each block for writes between `x.RLock()` and `x.RUnlock()`.
/// Handles both the sequential form and the `defer x.RUnlock()` form (where
/// the rest of the block is the critical section).
fn lint_rlock_writes(block: &Block, func: &str, findings: &mut Vec<Finding>) {
    scan_block_rlock(block, func, findings);
}

fn scan_block_rlock(block: &Block, func: &str, findings: &mut Vec<Finding>) {
    let mut rlocked: Option<String> = None;
    for stmt in &block.stmts {
        match stmt {
            Stmt::Expr(Expr::Call { func: callee, .. }) => {
                if let Expr::Selector(base, m) = callee.as_ref() {
                    if m == "RLock" {
                        rlocked = base.dotted();
                    } else if m == "RUnlock" {
                        rlocked = None;
                    }
                }
            }
            Stmt::Defer { call, .. } => {
                if let Expr::Call { func: callee, .. } = call {
                    if let Expr::Selector(_, m) = callee.as_ref() {
                        if m == "RUnlock" {
                            // defer RUnlock: the section stays read-locked to
                            // the end of the block; keep `rlocked` as-is.
                        }
                    }
                }
            }
            Stmt::Assign { pos, lhs, .. } if rlocked.is_some() => {
                for e in lhs {
                    if matches!(e, Expr::Selector(..) | Expr::Index(..) | Expr::Ident(..)) {
                        findings.push(Finding {
                            rule: Rule::WriteUnderRLock,
                            pos: *pos,
                            func: func.to_string(),
                            message: format!(
                                "assignment inside a section protected only by \
                                 {}.RLock(); concurrent readers may also write",
                                rlocked.as_deref().unwrap_or("?")
                            ),
                        });
                    }
                }
            }
            Stmt::If { then, els, .. } => {
                if rlocked.is_some() {
                    // Writes inside a conditional within the critical
                    // section (exactly Listing 11's shape).
                    scan_nested_rlock(then, rlocked.as_deref(), func, findings);
                    if let Some(e) = els {
                        if let Stmt::Block(b) = e.as_ref() {
                            scan_nested_rlock(b, rlocked.as_deref(), func, findings);
                        }
                    }
                } else {
                    scan_block_rlock(then, func, findings);
                    if let Some(e) = els {
                        if let Stmt::Block(b) = e.as_ref() {
                            scan_block_rlock(b, func, findings);
                        }
                    }
                }
            }
            Stmt::Block(b) => scan_block_rlock(b, func, findings),
            Stmt::For { body, .. } => scan_block_rlock(body, func, findings),
            _ => {}
        }
    }
}

fn scan_nested_rlock(
    block: &Block,
    rlocked: Option<&str>,
    func: &str,
    findings: &mut Vec<Finding>,
) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Assign { pos, lhs, .. } => {
                for e in lhs {
                    if matches!(e, Expr::Selector(..) | Expr::Index(..) | Expr::Ident(..)) {
                        findings.push(Finding {
                            rule: Rule::WriteUnderRLock,
                            pos: *pos,
                            func: func.to_string(),
                            message: format!(
                                "assignment inside a section protected only by \
                                 {}.RLock(); concurrent readers may also write",
                                rlocked.unwrap_or("?")
                            ),
                        });
                    }
                }
            }
            Stmt::If { then, els, .. } => {
                scan_nested_rlock(then, rlocked, func, findings);
                if let Some(e) = els {
                    if let Stmt::Block(b) = e.as_ref() {
                        scan_nested_rlock(b, rlocked, func, findings);
                    }
                }
            }
            Stmt::Block(b) => scan_nested_rlock(b, rlocked, func, findings),
            _ => {}
        }
    }
}
