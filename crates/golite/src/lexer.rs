//! The Go-lite lexer, including Go's automatic semicolon insertion (ASI).
//!
//! Go's grammar is semicolon-terminated, but programmers rarely write
//! semicolons: the lexer inserts one at each newline that follows a token
//! from a fixed trigger set (identifiers, literals, `return`-like keywords,
//! `++`/`--`, and closing delimiters). Implementing ASI in the lexer — as
//! gc does — keeps the parser a plain semicolon-driven recursive descent.

use crate::error::ParseError;
use crate::token::{Keyword, Pos, Tok, Token};

/// Tokenizes `src` completely (the final token is [`Tok::Eof`]).
///
/// # Errors
///
/// Returns the first lexical error (unterminated string, stray character).
pub fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src).collect_all()
}

/// A streaming lexer over source text.
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    offset: usize,
    pos: Pos,
    last_significant: Option<Tok>,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    #[must_use]
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            offset: 0,
            pos: Pos::START,
            last_significant: None,
        }
    }

    /// Runs the lexer to completion.
    ///
    /// # Errors
    ///
    /// Propagates the first lexical error.
    pub fn collect_all(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.tok == Tok::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.offset).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.offset + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.offset += 1;
        if b == b'\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(b)
    }

    /// Skips whitespace and comments; returns `true` when a newline (or a
    /// comment containing one) was crossed, which may trigger ASI.
    fn skip_trivia(&mut self) -> Result<bool, ParseError> {
        let mut newline = false;
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r') => {
                    self.bump();
                }
                Some(b'\n') => {
                    newline = true;
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            newline = true;
                        }
                        if b == b'*' && self.peek() == Some(b'/') {
                            self.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(ParseError::new(start, "unterminated block comment"));
                    }
                }
                _ => return Ok(newline),
            }
        }
    }

    /// Produces the next token, applying ASI at newlines.
    ///
    /// # Errors
    ///
    /// Returns lexical errors with their positions.
    pub fn next_token(&mut self) -> Result<Token, ParseError> {
        let newline = self.skip_trivia()?;
        if newline
            && self
                .last_significant
                .as_ref()
                .is_some_and(Tok::triggers_asi)
        {
            self.last_significant = Some(Tok::Semi);
            return Ok(Token {
                tok: Tok::Semi,
                pos: self.pos,
            });
        }
        let pos = self.pos;
        let Some(b) = self.peek() else {
            // ASI also applies at EOF after a trigger token.
            if self
                .last_significant
                .as_ref()
                .is_some_and(Tok::triggers_asi)
            {
                self.last_significant = Some(Tok::Semi);
                return Ok(Token {
                    tok: Tok::Semi,
                    pos,
                });
            }
            return Ok(Token {
                tok: Tok::Eof,
                pos,
            });
        };
        let tok = match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
            b'0'..=b'9' => self.number(),
            b'"' => self.string(b'"')?,
            b'`' => self.raw_string()?,
            b'\'' => self.rune()?,
            _ => self.operator()?,
        };
        self.last_significant = Some(tok.clone());
        Ok(Token { tok, pos })
    }

    fn ident(&mut self) -> Tok {
        let start = self.offset;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.offset])
            .expect("ASCII identifier bytes");
        match Keyword::lookup(text) {
            Some(kw) => Tok::Kw(kw),
            None => Tok::Ident(text.to_string()),
        }
    }

    fn number(&mut self) -> Tok {
        let start = self.offset;
        let mut is_float = false;
        // Hex/octal/binary prefixes.
        if self.peek() == Some(b'0')
            && matches!(self.peek2(), Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O'))
        {
            self.bump();
            self.bump();
            while let Some(b) = self.peek() {
                if b.is_ascii_hexdigit() || b == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while let Some(b) = self.peek() {
                match b {
                    b'0'..=b'9' | b'_' => {
                        self.bump();
                    }
                    b'.' if !is_float
                        && self.peek2().is_some_and(|c| c.is_ascii_digit()) =>
                    {
                        is_float = true;
                        self.bump();
                    }
                    b'e' | b'E' => {
                        is_float = true;
                        self.bump();
                        if matches!(self.peek(), Some(b'+' | b'-')) {
                            self.bump();
                        }
                    }
                    _ => break,
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.offset])
            .expect("ASCII number bytes")
            .to_string();
        if is_float {
            Tok::Float(text)
        } else {
            Tok::Int(text)
        }
    }

    fn string(&mut self, quote: u8) -> Result<Tok, ParseError> {
        let start_pos = self.pos;
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => {
                    return Err(ParseError::new(start_pos, "unterminated string literal"))
                }
                Some(b'\\') => {
                    // Keep escapes unprocessed; values are irrelevant here.
                    if let Some(e) = self.bump() {
                        out.push('\\');
                        out.push(e as char);
                    }
                }
                Some(b) if b == quote => break,
                Some(b) => out.push(b as char),
            }
        }
        Ok(Tok::Str(out))
    }

    fn raw_string(&mut self) -> Result<Tok, ParseError> {
        let start_pos = self.pos;
        self.bump(); // opening backquote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(ParseError::new(start_pos, "unterminated raw string")),
                Some(b'`') => break,
                Some(b) => out.push(b as char),
            }
        }
        Ok(Tok::Str(out))
    }

    fn rune(&mut self) -> Result<Tok, ParseError> {
        let start_pos = self.pos;
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => {
                    return Err(ParseError::new(start_pos, "unterminated rune literal"))
                }
                Some(b'\\') => {
                    if let Some(e) = self.bump() {
                        out.push('\\');
                        out.push(e as char);
                    }
                }
                Some(b'\'') => break,
                Some(b) => out.push(b as char),
            }
        }
        Ok(Tok::Rune(out))
    }

    fn operator(&mut self) -> Result<Tok, ParseError> {
        let pos = self.pos;
        let b = self.bump().expect("caller checked non-empty");
        let two = |l: &mut Lexer<'a>, next: u8, yes: Tok, no: Tok| {
            if l.peek() == Some(next) {
                l.bump();
                yes
            } else {
                no
            }
        };
        let tok = match b {
            b'+' => match self.peek() {
                Some(b'+') => {
                    self.bump();
                    Tok::Inc
                }
                Some(b'=') => {
                    self.bump();
                    Tok::OpAssign("+=")
                }
                _ => Tok::Plus,
            },
            b'-' => match self.peek() {
                Some(b'-') => {
                    self.bump();
                    Tok::Dec
                }
                Some(b'=') => {
                    self.bump();
                    Tok::OpAssign("-=")
                }
                _ => Tok::Minus,
            },
            b'*' => two(self, b'=', Tok::OpAssign("*="), Tok::Star),
            b'/' => two(self, b'=', Tok::OpAssign("/="), Tok::Slash),
            b'%' => two(self, b'=', Tok::OpAssign("%="), Tok::Percent),
            b'&' => match self.peek() {
                Some(b'&') => {
                    self.bump();
                    Tok::AndAnd
                }
                Some(b'^') => {
                    self.bump();
                    Tok::AmpCaret
                }
                Some(b'=') => {
                    self.bump();
                    Tok::OpAssign("&=")
                }
                _ => Tok::Amp,
            },
            b'|' => match self.peek() {
                Some(b'|') => {
                    self.bump();
                    Tok::OrOr
                }
                Some(b'=') => {
                    self.bump();
                    Tok::OpAssign("|=")
                }
                _ => Tok::Pipe,
            },
            b'^' => two(self, b'=', Tok::OpAssign("^="), Tok::Caret),
            b'<' => match self.peek() {
                Some(b'-') => {
                    self.bump();
                    Tok::Arrow
                }
                Some(b'<') => {
                    self.bump();
                    two(self, b'=', Tok::OpAssign("<<="), Tok::Shl)
                }
                Some(b'=') => {
                    self.bump();
                    Tok::Le
                }
                _ => Tok::Lt,
            },
            b'>' => match self.peek() {
                Some(b'>') => {
                    self.bump();
                    two(self, b'=', Tok::OpAssign(">>="), Tok::Shr)
                }
                Some(b'=') => {
                    self.bump();
                    Tok::Ge
                }
                _ => Tok::Gt,
            },
            b'=' => two(self, b'=', Tok::EqEq, Tok::Assign),
            b'!' => two(self, b'=', Tok::NotEq, Tok::Not),
            b':' => two(self, b'=', Tok::Define, Tok::Colon),
            b'.' => {
                if self.peek() == Some(b'.') && self.peek2() == Some(b'.') {
                    self.bump();
                    self.bump();
                    Tok::Ellipsis
                } else {
                    Tok::Dot
                }
            }
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b',' => Tok::Comma,
            b';' => Tok::Semi,
            _ => {
                return Err(ParseError::new(
                    pos,
                    format!("unexpected character {:?}", b as char),
                ))
            }
        };
        Ok(tok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            toks("var a int"),
            vec![
                Tok::Kw(Keyword::Var),
                Tok::Ident("a".into()),
                Tok::Ident("int".into()),
                Tok::Semi, // ASI at EOF
                Tok::Eof
            ]
        );
    }

    #[test]
    fn asi_inserts_semicolons_at_newlines() {
        let t = toks("x := 1\ny := 2\n");
        let semis = t.iter().filter(|t| **t == Tok::Semi).count();
        assert_eq!(semis, 2);
    }

    #[test]
    fn asi_does_not_fire_mid_expression() {
        // After a binary operator no semicolon is inserted.
        let t = toks("x := 1 +\n2\n");
        let idx_plus = t.iter().position(|t| *t == Tok::Plus).expect("plus");
        assert_ne!(t[idx_plus + 1], Tok::Semi);
    }

    #[test]
    fn channel_arrow_and_define() {
        assert_eq!(
            toks("ch <- v"),
            vec![
                Tok::Ident("ch".into()),
                Tok::Arrow,
                Tok::Ident("v".into()),
                Tok::Semi,
                Tok::Eof
            ]
        );
        assert!(toks("x := <-ch").contains(&Tok::Arrow));
    }

    #[test]
    fn comments_are_skipped_and_count_as_newlines() {
        let t = toks("x := 1 // trailing\ny := 2");
        assert_eq!(t.iter().filter(|t| **t == Tok::Semi).count(), 2);
        let t = toks("a /* block\ncomment */ b");
        // Block comment containing a newline triggers ASI after `a`.
        assert_eq!(t[1], Tok::Semi);
    }

    #[test]
    fn string_literals() {
        assert_eq!(toks(r#"s := "hi \"there\"""#)[2], Tok::Str(r#"hi \"there\""#.into()));
        assert_eq!(toks("s := `raw\nstring`")[2], Tok::Str("raw\nstring".into()));
        assert_eq!(toks("c := 'x'")[2], Tok::Rune("x".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42")[0], Tok::Int("42".into()));
        assert_eq!(toks("0xFF")[0], Tok::Int("0xFF".into()));
        assert_eq!(toks("3.25")[0], Tok::Float("3.25".into()));
        assert_eq!(toks("1e9")[0], Tok::Float("1e9".into()));
    }

    #[test]
    fn multi_char_operators() {
        let t = toks("a &^= b; c <<= d; e != f; g <= h; i >= j; k && l || m");
        assert!(t.contains(&Tok::NotEq));
        assert!(t.contains(&Tok::Le));
        assert!(t.contains(&Tok::Ge));
        assert!(t.contains(&Tok::AndAnd));
        assert!(t.contains(&Tok::OrOr));
        // &^= lexes as AmpCaret + Assign in Go-lite (we do not need the
        // three-char compound).
        assert!(t.contains(&Tok::OpAssign("<<=")));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("s := \"oops").is_err());
        assert!(tokenize("s := `oops").is_err());
        assert!(tokenize("/* oops").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let tokens = tokenize("a\nbb\n  c").expect("lexes");
        let c = tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("c".into()))
            .expect("c");
        assert_eq!(c.pos.line, 3);
        assert_eq!(c.pos.col, 3);
    }
}
