//! Machine-readable diagnostics for the lint engine.
//!
//! Editors and CI pipelines want structure, not prose: every finding
//! serializes to a JSON object with a stable rule identifier (`GR001`…),
//! a severity, and a source location. The JSON is hand-rolled — the
//! offline build sanctions no serialization dependency — but the escape
//! rules follow RFC 8259 for the characters that can actually appear in
//! rule messages and file paths.

use crate::lint::Finding;

/// Escapes `s` as a JSON string body (quotes not included).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One finding as a JSON object.
#[must_use]
pub fn finding_json(path: &str, f: &Finding) -> String {
    format!(
        r#"{{"rule_id":"{}","rule":"{}","severity":"{}","file":"{}","line":{},"col":{},"func":"{}","message":"{}"}}"#,
        f.rule.id(),
        escape(&f.rule.to_string()),
        f.rule.severity(),
        escape(path),
        f.pos.line,
        f.pos.col,
        escape(&f.func),
        escape(&f.message),
    )
}

/// A whole report (one file's findings) as a JSON array.
#[must_use]
pub fn report_json(path: &str, findings: &[Finding]) -> String {
    let items: Vec<String> = findings.iter().map(|f| finding_json(path, f)).collect();
    format!("[{}]", items.join(","))
}

/// A report over many files as one JSON array.
#[must_use]
pub fn corpus_json<'a, I>(per_file: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a [Finding])>,
{
    let mut items = Vec::new();
    for (path, findings) in per_file {
        for f in findings {
            items.push(finding_json(path, f));
        }
    }
    format!("[{}]", items.join(","))
}

/// The compiler-style one-line rendering:
/// `path:line:col: error[GR007]: message (in Func)`.
#[must_use]
pub fn render_line(path: &str, f: &Finding) -> String {
    format!(
        "{}:{}:{}: {}[{}]: {} (in {})",
        path,
        f.pos.line,
        f.pos.col,
        f.rule.severity(),
        f.rule.id(),
        f.message,
        f.func,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Rule;
    use crate::token::Pos;

    fn sample() -> Finding {
        Finding {
            rule: Rule::MissingLock,
            pos: Pos { line: 7, col: 3 },
            func: "Get".to_string(),
            message: "unguarded \"version\"\there".to_string(),
        }
    }

    #[test]
    fn json_escapes_quotes_and_tabs() {
        let j = finding_json("svc/store.go", &sample());
        assert!(j.contains(r#""rule_id":"GR007""#));
        assert!(j.contains(r#""severity":"error""#));
        assert!(j.contains(r#"unguarded \"version\"\there"#));
        assert!(j.contains(r#""line":7"#));
    }

    #[test]
    fn report_is_a_json_array() {
        let fs = [sample(), sample()];
        let j = report_json("a.go", &fs);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert_eq!(j.matches("\"rule_id\"").count(), 2);
    }

    #[test]
    fn render_line_is_compiler_style() {
        let line = render_line("svc/store.go", &sample());
        assert!(line.starts_with("svc/store.go:7:3: error[GR007]:"));
        assert!(line.ends_with("(in Get)"));
    }
}
