//! Machine-readable diagnostics for the lint engine.
//!
//! Editors and CI pipelines want structure, not prose: every finding
//! serializes to a JSON object with a stable rule identifier (`GR001`…),
//! a severity, and a source location. The JSON is hand-rolled — the
//! offline build sanctions no serialization dependency — but the escape
//! rules follow RFC 8259 for the characters that can actually appear in
//! rule messages and file paths.

use crate::lint::Finding;

/// Escapes `s` as a JSON string body (quotes not included).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One finding as a JSON object. The `chain` array carries the call hops
/// of interprocedural findings (empty for the intraprocedural rules).
#[must_use]
pub fn finding_json(path: &str, f: &Finding) -> String {
    let chain: Vec<String> = f
        .chain
        .iter()
        .map(|(callee, pos)| {
            format!(
                r#"{{"callee":"{}","line":{},"col":{}}}"#,
                escape(callee),
                pos.line,
                pos.col,
            )
        })
        .collect();
    format!(
        r#"{{"rule_id":"{}","rule":"{}","severity":"{}","file":"{}","line":{},"col":{},"func":"{}","message":"{}","chain":[{}]}}"#,
        f.rule.id(),
        escape(&f.rule.to_string()),
        f.rule.severity(),
        escape(path),
        f.pos.line,
        f.pos.col,
        escape(&f.func),
        escape(&f.message),
        chain.join(","),
    )
}

/// A whole report (one file's findings) as a JSON array.
#[must_use]
pub fn report_json(path: &str, findings: &[Finding]) -> String {
    let items: Vec<String> = findings.iter().map(|f| finding_json(path, f)).collect();
    format!("[{}]", items.join(","))
}

/// A report over many files as one JSON array.
#[must_use]
pub fn corpus_json<'a, I>(per_file: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a [Finding])>,
{
    let mut items = Vec::new();
    for (path, findings) in per_file {
        for f in findings {
            items.push(finding_json(path, f));
        }
    }
    format!("[{}]", items.join(","))
}

/// The compiler-style one-line rendering:
/// `path:line:col: error[GR007]: message (in Func)`, with a `via` note
/// listing the call chain when the finding crossed function boundaries.
#[must_use]
pub fn render_line(path: &str, f: &Finding) -> String {
    let mut line = format!(
        "{}:{}:{}: {}[{}]: {} (in {})",
        path,
        f.pos.line,
        f.pos.col,
        f.rule.severity(),
        f.rule.id(),
        f.message,
        f.func,
    );
    if !f.chain.is_empty() {
        let hops: Vec<String> = f
            .chain
            .iter()
            .map(|(callee, pos)| format!("{callee} at {}:{}", pos.line, pos.col))
            .collect();
        line.push_str(&format!("\n  note: via {}", hops.join(" -> ")));
    }
    line
}

/// A full report as a minimal SARIF 2.1.0 log: one run, one driver, the
/// fired rules in the `rules` table, one `result` per finding with its
/// location and — for interprocedural findings — the call chain as
/// `relatedLocations`.
#[must_use]
pub fn sarif_json<'a, I>(per_file: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a [Finding])>,
{
    use crate::lint::{Rule, Severity};
    use std::collections::BTreeSet;

    let files: Vec<(&str, &[Finding])> = per_file.into_iter().collect();

    let mut fired: BTreeSet<&'static str> = BTreeSet::new();
    for (_, findings) in &files {
        for f in *findings {
            fired.insert(f.rule.id());
        }
    }
    let rules: Vec<String> = Rule::ALL
        .into_iter()
        .filter(|r| fired.contains(r.id()))
        .map(|r| {
            format!(
                r#"{{"id":"{}","shortDescription":{{"text":"{}"}},"defaultConfiguration":{{"level":"{}"}}}}"#,
                r.id(),
                escape(&r.to_string()),
                sarif_level(r.severity()),
            )
        })
        .collect();

    let mut results = Vec::new();
    for (path, findings) in &files {
        for f in *findings {
            let related: Vec<String> = f
                .chain
                .iter()
                .map(|(callee, pos)| {
                    format!(
                        r#"{{"message":{{"text":"call to {}"}},"physicalLocation":{{"artifactLocation":{{"uri":"{}"}},"region":{{"startLine":{},"startColumn":{}}}}}}}"#,
                        escape(callee),
                        escape(path),
                        pos.line,
                        pos.col,
                    )
                })
                .collect();
            let related_part = if related.is_empty() {
                String::new()
            } else {
                format!(r#","relatedLocations":[{}]"#, related.join(","))
            };
            results.push(format!(
                r#"{{"ruleId":"{}","level":"{}","message":{{"text":"{}"}},"locations":[{{"physicalLocation":{{"artifactLocation":{{"uri":"{}"}},"region":{{"startLine":{},"startColumn":{}}}}}}}]{}}}"#,
                f.rule.id(),
                sarif_level(f.rule.severity()),
                escape(&f.message),
                escape(path),
                f.pos.line,
                f.pos.col,
                related_part,
            ));
        }
    }

    fn sarif_level(s: Severity) -> &'static str {
        match s {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    format!(
        concat!(
            r#"{{"version":"2.1.0","#,
            r#""$schema":"https://json.schemastore.org/sarif-2.1.0.json","#,
            r#""runs":[{{"tool":{{"driver":{{"name":"golint","#,
            r#""informationUri":"https://example.invalid/golite","#,
            r#""rules":[{}]}}}},"results":[{}]}}]}}"#,
        ),
        rules.join(","),
        results.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Rule;
    use crate::token::Pos;

    fn sample() -> Finding {
        Finding {
            rule: Rule::MissingLock,
            pos: Pos { line: 7, col: 3 },
            func: "Get".to_string(),
            message: "unguarded \"version\"\there".to_string(),
            chain: Vec::new(),
        }
    }

    fn chained() -> Finding {
        Finding {
            rule: Rule::InterprocMissingLock,
            pos: Pos { line: 12, col: 5 },
            func: "Read".to_string(),
            message: "bare here, guarded elsewhere".to_string(),
            chain: vec![("bump".to_string(), Pos { line: 6, col: 5 })],
        }
    }

    #[test]
    fn json_escapes_quotes_and_tabs() {
        let j = finding_json("svc/store.go", &sample());
        assert!(j.contains(r#""rule_id":"GR007""#));
        assert!(j.contains(r#""severity":"error""#));
        assert!(j.contains(r#"unguarded \"version\"\there"#));
        assert!(j.contains(r#""line":7"#));
    }

    #[test]
    fn report_is_a_json_array() {
        let fs = [sample(), sample()];
        let j = report_json("a.go", &fs);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert_eq!(j.matches("\"rule_id\"").count(), 2);
    }

    #[test]
    fn render_line_is_compiler_style() {
        let line = render_line("svc/store.go", &sample());
        assert!(line.starts_with("svc/store.go:7:3: error[GR007]:"));
        assert!(line.ends_with("(in Get)"));
    }

    #[test]
    fn chains_appear_in_json_and_notes() {
        let f = chained();
        let j = finding_json("a.go", &f);
        assert!(j.contains(r#""chain":[{"callee":"bump","line":6,"col":5}]"#));
        let line = render_line("a.go", &f);
        assert!(line.contains("note: via bump at 6:5"), "{line}");
    }

    #[test]
    fn sarif_has_rules_results_and_related_locations() {
        let fs = [sample(), chained()];
        let s = sarif_json([("a.go", fs.as_slice())]);
        assert!(s.contains(r#""version":"2.1.0""#));
        assert!(s.contains(r#""id":"GR007""#));
        assert!(s.contains(r#""id":"GR013""#));
        assert!(s.contains(r#""ruleId":"GR013""#));
        assert!(s.contains(r#""relatedLocations""#));
        assert!(s.contains(r#""startLine":12"#));
        // Rules that never fired stay out of the table.
        assert!(!s.contains(r#""id":"GR001""#));
    }
}
