//! Symbol and scope resolution for Go-lite.
//!
//! The original lints approximated "what does this closure capture?" with a
//! free-variable scan that ignored block scoping and declaration order.
//! This module replaces that with real lexical resolution:
//!
//! * every identifier *use* is mapped to a [`Symbol`] (side table keyed by
//!   the identifier's source [`Pos`], which is unique per token),
//! * `:=` follows Go's redeclaration rule — a name already declared **in
//!   the same scope** is assigned, anything else is a fresh (shadowing)
//!   declaration,
//! * declaration order matters: a use *before* a `:=`/`var` in the same
//!   block resolves to the outer symbol (so a late shadow does not protect
//!   earlier uses),
//! * every `func` literal is a capture boundary; resolving a name across
//!   one or more boundaries records the symbol in each crossed closure's
//!   capture set.
//!
//! Names that resolve to nothing in the file (imported packages, builtins,
//! helper functions from other files) become [`SymbolKind::Universe`]
//! symbols so that downstream passes always get an answer.

use std::collections::HashMap;

use crate::ast::*;
use crate::token::Pos;

/// Index into [`Resolution::symbols`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub u32);

/// What kind of binding a symbol is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// Package-level `var`.
    GlobalVar,
    /// Package-level `const`.
    GlobalConst,
    /// Package-level `func`.
    Func,
    /// Package-level `type`.
    TypeName,
    /// Function/closure parameter.
    Param,
    /// Method receiver.
    Receiver,
    /// Named result parameter.
    NamedResult,
    /// A variable introduced by a `for` init `:=` or a `range` clause.
    LoopVar,
    /// Any other function-local binding (`var`, `:=`, `const`).
    Local,
    /// Unresolved: builtin, imported package, or cross-file name.
    Universe,
}

impl SymbolKind {
    /// Can this symbol be captured by reference by a closure?
    #[must_use]
    pub fn capturable(self) -> bool {
        matches!(
            self,
            SymbolKind::Param
                | SymbolKind::Receiver
                | SymbolKind::NamedResult
                | SymbolKind::LoopVar
                | SymbolKind::Local
        )
    }

    /// Is this a package-level variable (file-wide identity)?
    #[must_use]
    pub fn is_global_var(self) -> bool {
        matches!(self, SymbolKind::GlobalVar)
    }
}

/// One resolved binding.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Its id (index into [`Resolution::symbols`]).
    pub id: SymbolId,
    /// Source name.
    pub name: String,
    /// Binding kind.
    pub kind: SymbolKind,
    /// Declaration site, when the declaration is in this file.
    pub decl_pos: Option<Pos>,
    /// Closure nesting depth at the declaration: 0 for package scope, 1
    /// inside a top-level function, +1 per enclosing `func` literal.
    pub func_depth: u32,
}

/// The result of resolving one file.
#[derive(Debug, Default)]
pub struct Resolution {
    symbols: Vec<Symbol>,
    /// Identifier use site → symbol.
    uses: HashMap<Pos, SymbolId>,
    /// `func` literal position → symbols captured from enclosing functions.
    captures: HashMap<Pos, Vec<SymbolId>>,
}

impl Resolution {
    /// The symbol table entry for `id`.
    #[must_use]
    pub fn symbol(&self, id: SymbolId) -> &Symbol {
        &self.symbols[id.0 as usize]
    }

    /// All symbols, in declaration order.
    #[must_use]
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Resolves the identifier whose token starts at `pos`.
    #[must_use]
    pub fn use_at(&self, pos: Pos) -> Option<SymbolId> {
        self.uses.get(&pos).copied()
    }

    /// The symbol for the identifier at `pos`, when resolved.
    #[must_use]
    pub fn symbol_at(&self, pos: Pos) -> Option<&Symbol> {
        self.use_at(pos).map(|id| self.symbol(id))
    }

    /// Symbols the closure declared at `funclit_pos` captures from its
    /// enclosing function(s). Empty for closures that capture nothing.
    #[must_use]
    pub fn captures_at(&self, funclit_pos: Pos) -> &[SymbolId] {
        self.captures
            .get(&funclit_pos)
            .map_or(&[], Vec::as_slice)
    }

    /// Does the closure at `funclit_pos` capture `sym`?
    #[must_use]
    pub fn captures_symbol(&self, funclit_pos: Pos, sym: SymbolId) -> bool {
        self.captures_at(funclit_pos).contains(&sym)
    }
}

/// Resolves every identifier in `file`.
#[must_use]
pub fn resolve_file(file: &File) -> Resolution {
    let mut r = Resolver::new();
    // Package scope is order-independent: pre-declare all top-level names.
    for decl in &file.decls {
        match decl {
            Decl::Func(f) => {
                if f.receiver.is_none() {
                    r.declare(&f.name, SymbolKind::Func, Some(f.pos));
                }
            }
            Decl::Var(v) => {
                for n in &v.names {
                    r.declare(n, SymbolKind::GlobalVar, Some(v.pos));
                }
            }
            Decl::Const(v) => {
                for n in &v.names {
                    r.declare(n, SymbolKind::GlobalConst, Some(v.pos));
                }
            }
            Decl::Type(t) => {
                r.declare(&t.name, SymbolKind::TypeName, Some(t.pos));
            }
        }
    }
    // Package-level initializers may reference other globals.
    for decl in &file.decls {
        if let Decl::Var(v) | Decl::Const(v) = decl {
            for e in &v.values {
                r.resolve_expr(e);
            }
        }
    }
    for decl in &file.decls {
        if let Decl::Func(f) = decl {
            r.resolve_func(f);
        }
    }
    r.out
}

/// One lexical scope. `boundary` is set on the scope a `func` literal
/// pushes: resolving through it records a capture.
struct Scope {
    bindings: HashMap<String, SymbolId>,
    /// `Some(pos of the func literal)` when this scope is a closure body.
    boundary: Option<Pos>,
}

struct Resolver {
    out: Resolution,
    scopes: Vec<Scope>,
    func_depth: u32,
}

impl Resolver {
    fn new() -> Self {
        Resolver {
            out: Resolution::default(),
            scopes: vec![Scope {
                bindings: HashMap::new(),
                boundary: None,
            }],
            func_depth: 0,
        }
    }

    fn push(&mut self, boundary: Option<Pos>) {
        self.scopes.push(Scope {
            bindings: HashMap::new(),
            boundary,
        });
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, kind: SymbolKind, pos: Option<Pos>) -> SymbolId {
        let id = SymbolId(self.out.symbols.len() as u32);
        self.out.symbols.push(Symbol {
            id,
            name: name.to_string(),
            kind,
            decl_pos: pos,
            func_depth: self.func_depth,
        });
        if name != "_" && !name.is_empty() {
            self.scopes
                .last_mut()
                .expect("scope stack never empty")
                .bindings
                .insert(name.to_string(), id);
        }
        id
    }

    /// Resolves `name` used at `pos`, recording captures for every closure
    /// boundary between the use and the declaration.
    fn resolve_name(&mut self, name: &str, pos: Pos) {
        if name == "_" || name.is_empty() {
            return;
        }
        let mut crossed: Vec<Pos> = Vec::new();
        let mut found: Option<SymbolId> = None;
        for scope in self.scopes.iter().rev() {
            if let Some(&id) = scope.bindings.get(name) {
                found = Some(id);
                break;
            }
            if let Some(b) = scope.boundary {
                crossed.push(b);
            }
        }
        let id = match found {
            Some(id) => id,
            None => {
                // Unknown: builtin / imported package / other file. Declare
                // once at package scope so repeated uses share a symbol.
                let id = SymbolId(self.out.symbols.len() as u32);
                self.out.symbols.push(Symbol {
                    id,
                    name: name.to_string(),
                    kind: SymbolKind::Universe,
                    decl_pos: None,
                    func_depth: 0,
                });
                self.scopes[0].bindings.insert(name.to_string(), id);
                id
            }
        };
        self.out.uses.insert(pos, id);
        let sym = &self.out.symbols[id.0 as usize];
        if sym.kind.capturable() {
            for b in crossed {
                let set = self.out.captures.entry(b).or_default();
                if !set.contains(&id) {
                    set.push(id);
                }
            }
        }
    }

    fn resolve_func(&mut self, f: &FuncDecl) {
        let Some(body) = &f.body else { return };
        self.func_depth += 1;
        self.push(None);
        if let Some(recv) = &f.receiver {
            self.declare(&recv.name, SymbolKind::Receiver, Some(f.pos));
        }
        for p in &f.sig.params {
            self.declare(&p.name, SymbolKind::Param, Some(f.pos));
        }
        for rp in &f.sig.results {
            if !rp.name.is_empty() {
                self.declare(&rp.name, SymbolKind::NamedResult, Some(f.pos));
            }
        }
        self.resolve_block_scoped(body);
        self.pop();
        self.func_depth -= 1;
    }

    /// Resolves a block in its own fresh scope.
    fn resolve_block_scoped(&mut self, b: &Block) {
        self.push(None);
        for s in &b.stmts {
            self.resolve_stmt(s);
        }
        self.pop();
    }

    fn resolve_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl(v) => {
                // Initializers see the outer binding (`var x = x` refers to
                // the outer x), so resolve values first.
                for e in &v.values {
                    self.resolve_expr(e);
                }
                for n in &v.names {
                    self.declare(n, SymbolKind::Local, Some(v.pos));
                }
            }
            Stmt::Define { pos, names, values } => {
                for e in values {
                    self.resolve_expr(e);
                }
                for n in names {
                    // Go redeclaration rule: reuse a binding already in the
                    // CURRENT scope; shadow anything further out.
                    let current = self
                        .scopes
                        .last()
                        .expect("scope stack never empty")
                        .bindings
                        .get(n)
                        .copied();
                    match current {
                        Some(existing) => {
                            // `x, err := ...` with err already here: this is
                            // an assignment to the existing symbol. Record
                            // the name token as a use of it.
                            self.out.uses.insert(*pos, existing);
                        }
                        None => {
                            self.declare(n, SymbolKind::Local, Some(*pos));
                        }
                    }
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                for e in lhs.iter().chain(rhs.iter()) {
                    self.resolve_expr(e);
                }
            }
            Stmt::IncDec { expr, .. } => self.resolve_expr(expr),
            Stmt::Expr(e) => self.resolve_expr(e),
            Stmt::Send { chan, value, .. } => {
                self.resolve_expr(chan);
                self.resolve_expr(value);
            }
            Stmt::Go { call, .. } | Stmt::Defer { call, .. } => self.resolve_expr(call),
            Stmt::Return { values, .. } => {
                for e in values {
                    self.resolve_expr(e);
                }
            }
            Stmt::If {
                init,
                cond,
                then,
                els,
                ..
            } => {
                // The init statement's bindings scope over cond/then/else.
                self.push(None);
                if let Some(i) = init {
                    self.resolve_stmt(i);
                }
                self.resolve_expr(cond);
                self.resolve_block_scoped(then);
                if let Some(e) = els {
                    self.resolve_stmt(e);
                }
                self.pop();
            }
            Stmt::Block(b) => self.resolve_block_scoped(b),
            Stmt::For {
                init,
                cond,
                post,
                range,
                body,
                ..
            } => {
                self.push(None);
                if let Some(i) = init {
                    // `for i := 0; ...` — i is a loop variable.
                    if let Stmt::Define { pos, names, values } = i.as_ref() {
                        for e in values {
                            self.resolve_expr(e);
                        }
                        for n in names {
                            self.declare(n, SymbolKind::LoopVar, Some(*pos));
                        }
                    } else {
                        self.resolve_stmt(i);
                    }
                }
                if let Some(c) = cond {
                    self.resolve_expr(c);
                }
                if let Some(r) = range {
                    self.resolve_expr(&r.expr);
                    if r.define {
                        for v in [&r.key, &r.value] {
                            if !v.is_empty() && v != "_" {
                                self.declare(v, SymbolKind::LoopVar, None);
                            }
                        }
                    } else {
                        // `for k, v = range x` assigns existing names; the
                        // AST keeps only the names, with no token position,
                        // so there is no use site to record.
                    }
                }
                self.resolve_block_scoped(body);
                if let Some(p) = post {
                    self.resolve_stmt(p);
                }
                self.pop();
            }
            Stmt::Switch { tag, cases, .. } => {
                self.push(None);
                if let Some(t) = tag {
                    self.resolve_expr(t);
                }
                for c in cases {
                    for e in &c.exprs {
                        self.resolve_expr(e);
                    }
                    self.push(None);
                    for s in &c.body {
                        self.resolve_stmt(s);
                    }
                    self.pop();
                }
                self.pop();
            }
            Stmt::Select { cases, .. } => {
                for c in cases {
                    self.push(None);
                    if let Some(comm) = &c.comm {
                        self.resolve_stmt(comm);
                    }
                    for s in &c.body {
                        self.resolve_stmt(s);
                    }
                    self.pop();
                }
            }
            Stmt::Branch { .. } | Stmt::Empty => {}
        }
    }

    fn resolve_expr(&mut self, e: &Expr) {
        match e {
            Expr::Ident(pos, name) => self.resolve_name(name, *pos),
            Expr::Int(..) | Expr::Float(..) | Expr::Str(..) | Expr::Rune(..) => {}
            Expr::Selector(base, _) => self.resolve_expr(base),
            Expr::Call { func, args, .. } => {
                self.resolve_expr(func);
                for a in args {
                    self.resolve_expr(a);
                }
            }
            Expr::Index(b, i) => {
                self.resolve_expr(b);
                self.resolve_expr(i);
            }
            Expr::SliceExpr { expr, low, high } => {
                self.resolve_expr(expr);
                if let Some(l) = low {
                    self.resolve_expr(l);
                }
                if let Some(h) = high {
                    self.resolve_expr(h);
                }
            }
            Expr::Unary { expr, .. } => self.resolve_expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.resolve_expr(lhs);
                self.resolve_expr(rhs);
            }
            Expr::FuncLit { pos, sig, body } => {
                self.func_depth += 1;
                self.push(Some(*pos));
                // Ensure the closure appears in the capture table even when
                // it captures nothing.
                self.out.captures.entry(*pos).or_default();
                for p in &sig.params {
                    self.declare(&p.name, SymbolKind::Param, Some(*pos));
                }
                for rp in &sig.results {
                    if !rp.name.is_empty() {
                        self.declare(&rp.name, SymbolKind::NamedResult, Some(*pos));
                    }
                }
                for s in &body.stmts {
                    self.resolve_stmt(s);
                }
                self.pop();
                self.func_depth -= 1;
            }
            Expr::CompositeLit { elems, .. } => {
                for (k, v) in elems {
                    if let Some(k) = k {
                        self.resolve_expr(k);
                    }
                    self.resolve_expr(v);
                }
            }
            Expr::Paren(inner) => self.resolve_expr(inner),
            Expr::TypeExpr(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn resolve(src: &str) -> (File, Resolution) {
        let file = parse_file(src).expect("parses");
        let res = resolve_file(&file);
        (file, res)
    }

    /// Finds the position of the `idx`-th func literal in the file.
    fn funclit_positions(file: &File) -> Vec<Pos> {
        let mut out = Vec::new();
        fn walk_expr(e: &Expr, out: &mut Vec<Pos>) {
            if let Expr::FuncLit { pos, body, .. } = e {
                out.push(*pos);
                for s in &body.stmts {
                    walk_stmt(s, out);
                }
                return;
            }
            match e {
                Expr::Selector(b, _) | Expr::Paren(b) => walk_expr(b, out),
                Expr::Call { func, args, .. } => {
                    walk_expr(func, out);
                    for a in args {
                        walk_expr(a, out);
                    }
                }
                Expr::Index(b, i) => {
                    walk_expr(b, out);
                    walk_expr(i, out);
                }
                Expr::Unary { expr, .. } => walk_expr(expr, out),
                Expr::Binary { lhs, rhs, .. } => {
                    walk_expr(lhs, out);
                    walk_expr(rhs, out);
                }
                _ => {}
            }
        }
        fn walk_stmt(s: &Stmt, out: &mut Vec<Pos>) {
            match s {
                Stmt::Expr(e) => walk_expr(e, out),
                Stmt::Go { call, .. } | Stmt::Defer { call, .. } => walk_expr(call, out),
                Stmt::Define { values, .. } => {
                    for e in values {
                        walk_expr(e, out);
                    }
                }
                Stmt::Assign { lhs, rhs, .. } => {
                    for e in lhs.iter().chain(rhs.iter()) {
                        walk_expr(e, out);
                    }
                }
                Stmt::If { then, els, .. } => {
                    for s in &then.stmts {
                        walk_stmt(s, out);
                    }
                    if let Some(e) = els {
                        walk_stmt(e, out);
                    }
                }
                Stmt::Block(b) => {
                    for s in &b.stmts {
                        walk_stmt(s, out);
                    }
                }
                Stmt::For { body, .. } => {
                    for s in &body.stmts {
                        walk_stmt(s, out);
                    }
                }
                _ => {}
            }
        }
        for d in &file.decls {
            if let Decl::Func(f) = d {
                if let Some(b) = &f.body {
                    for s in &b.stmts {
                        walk_stmt(s, &mut out);
                    }
                }
            }
        }
        out
    }

    fn captured_names(res: &Resolution, pos: Pos) -> Vec<String> {
        let mut names: Vec<String> = res
            .captures_at(pos)
            .iter()
            .map(|&id| res.symbol(id).name.clone())
            .collect();
        names.sort();
        names
    }

    #[test]
    fn loop_var_is_captured() {
        let (file, res) = resolve(
            r#"
package p
func f(jobs []int) {
    for _, job := range jobs {
        go func() { process(job) }()
    }
}
"#,
        );
        let lits = funclit_positions(&file);
        assert_eq!(lits.len(), 1);
        assert_eq!(captured_names(&res, lits[0]), vec!["job"]);
        let cap = res.captures_at(lits[0])[0];
        assert_eq!(res.symbol(cap).kind, SymbolKind::LoopVar);
    }

    #[test]
    fn parameter_shadow_suppresses_capture() {
        let (file, res) = resolve(
            r#"
package p
func f(jobs []int) {
    for _, job := range jobs {
        go func(job int) { process(job) }(job)
    }
}
"#,
        );
        let lits = funclit_positions(&file);
        assert!(captured_names(&res, lits[0]).is_empty());
    }

    #[test]
    fn early_shadow_suppresses_but_late_shadow_does_not() {
        // Inner `job := ...` BEFORE the use: the use resolves to the inner
        // symbol — nothing captured.
        let (file, res) = resolve(
            r#"
package p
func f(jobs []int) {
    for _, job := range jobs {
        go func() {
            job := next()
            process(job)
        }()
    }
}
"#,
        );
        let lits = funclit_positions(&file);
        assert!(captured_names(&res, lits[0]).is_empty());

        // Use BEFORE the inner define: the use resolves to the loop
        // variable — captured despite the later shadow.
        let (file, res) = resolve(
            r#"
package p
func f(jobs []int) {
    for _, job := range jobs {
        go func() {
            process(job)
            job := next()
            use(job)
        }()
    }
}
"#,
        );
        let lits = funclit_positions(&file);
        assert_eq!(captured_names(&res, lits[0]), vec!["job"]);
    }

    #[test]
    fn nested_block_shadow_does_not_leak() {
        // A shadow inside a nested block ends with the block; the later use
        // sees the loop variable again.
        let (file, res) = resolve(
            r#"
package p
func f(jobs []int) {
    for _, job := range jobs {
        go func() {
            if ok() {
                job := local()
                use(job)
            }
            process(job)
        }()
    }
}
"#,
        );
        let lits = funclit_positions(&file);
        assert_eq!(captured_names(&res, lits[0]), vec!["job"]);
    }

    #[test]
    fn define_reuses_same_scope_symbol() {
        // `y, err := Baz()` reuses the err declared by `x, err := Foo()` in
        // the same scope — one symbol, not two.
        let (_file, res) = resolve(
            r#"
package p
func f() {
    x, err := Foo()
    y, err := Baz()
    use(x, y, err)
}
"#,
        );
        let errs: Vec<_> = res
            .symbols()
            .iter()
            .filter(|s| s.name == "err" && s.kind != SymbolKind::Universe)
            .collect();
        assert_eq!(errs.len(), 1, "err must resolve to a single symbol");
    }

    #[test]
    fn named_results_and_receiver_resolve() {
        let (file, res) = resolve(
            r#"
package p
func (s *Server) Get() (result int) {
    go func() { use(result, s) }()
    return
}
"#,
        );
        let lits = funclit_positions(&file);
        let caps = captured_names(&res, lits[0]);
        assert_eq!(caps, vec!["result", "s"]);
        let kinds: Vec<_> = res
            .captures_at(lits[0])
            .iter()
            .map(|&id| res.symbol(id).kind)
            .collect();
        assert!(kinds.contains(&SymbolKind::NamedResult));
        assert!(kinds.contains(&SymbolKind::Receiver));
    }

    #[test]
    fn globals_are_not_captures() {
        let (file, res) = resolve(
            r#"
package p
var counter int
func f() {
    go func() { counter = counter + 1 }()
}
"#,
        );
        let lits = funclit_positions(&file);
        assert!(captured_names(&res, lits[0]).is_empty());
        // But uses of `counter` resolve to the global symbol.
        let global = res
            .symbols()
            .iter()
            .find(|s| s.name == "counter")
            .expect("counter resolved");
        assert_eq!(global.kind, SymbolKind::GlobalVar);
    }

    #[test]
    fn nested_closures_capture_transitively() {
        let (file, res) = resolve(
            r#"
package p
func f() {
    x := 0
    go func() {
        go func() { use(x) }()
    }()
}
"#,
        );
        let lits = funclit_positions(&file);
        assert_eq!(lits.len(), 2);
        // Both the outer and the inner closure capture x.
        assert_eq!(captured_names(&res, lits[0]), vec!["x"]);
        assert_eq!(captured_names(&res, lits[1]), vec!["x"]);
    }

    #[test]
    fn local_shadow_of_global_is_a_distinct_symbol() {
        let (_file, res) = resolve(
            r#"
package p
var version int
func f() {
    version := 2
    use(version)
}
"#,
        );
        let versions: Vec<_> = res
            .symbols()
            .iter()
            .filter(|s| s.name == "version")
            .collect();
        assert_eq!(versions.len(), 2);
        assert!(versions.iter().any(|s| s.kind == SymbolKind::GlobalVar));
        assert!(versions.iter().any(|s| s.kind == SymbolKind::Local));
    }
}
